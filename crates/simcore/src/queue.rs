//! Time-ordered event queue.

use mps_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// that simultaneous events fire in FIFO order (determinism).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events are popped in non-decreasing time order,
/// with FIFO ordering among events scheduled for the same instant.
///
/// The queue does not itself hold a clock; the caller's simulation time is
/// simply the time of the last popped event. Pushing an event in the past
/// is allowed (the queue is a priority queue, not a clock), so simulations
/// that need monotonicity should assert it at pop time.
///
/// # Examples
///
/// ```
/// use mps_simcore::EventQueue;
/// use mps_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(5), 'b');
/// q.push(SimTime::from_millis(5), 'c'); // same instant: FIFO
/// q.push(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all scheduled events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    #[test]
    fn large_random_order_sorts() {
        // Pseudo-random insertion order (fixed LCG) must come out sorted.
        let mut q = EventQueue::new();
        let mut x: u64 = 12345;
        let mut times = Vec::new();
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ms = (x >> 33) as i64;
            times.push(ms);
            q.push(t(ms), ms);
        }
        times.sort_unstable();
        let popped: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, times);
    }
}
