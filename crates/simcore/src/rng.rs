//! Seeded, splittable random-number generation.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator for simulations.
///
/// `SimRng` wraps a seeded [`StdRng`] and adds two things the models need:
///
/// * **Splitting** — [`SimRng::split`] derives an independent child stream
///   from a label, so each simulated entity (device, user, sensor) gets its
///   own deterministic stream regardless of the order in which other
///   entities consume randomness. This is what makes the deployment replay
///   reproducible under refactoring.
/// * **Distribution samplers** — normal, log-normal, exponential, bounded
///   Pareto and weighted choice, implemented directly (inverse-CDF /
///   Box-Muller) so their behaviour is pinned by this crate's tests rather
///   than by an external distribution library.
///
/// # Examples
///
/// ```
/// use mps_simcore::SimRng;
/// use rand::RngCore;
///
/// let mut root = SimRng::new(42);
/// let mut device_7 = root.split("device", 7);
/// let spl = 30.0 + device_7.normal(0.0, 2.0);
/// assert!(spl.is_finite());
///
/// // Splitting is deterministic: same label, same stream.
/// let mut again = SimRng::new(42).split("device", 7);
/// assert_eq!(again.next_u64(), SimRng::new(42).split("device", 7).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

/// SplitMix64 finaliser — used to derive child seeds with good avalanche
/// behaviour from (seed, label, index) triples.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a label string, for seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: StdRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator for entity `index` of the
    /// stream named `label`.
    ///
    /// The child depends only on `(self.seed, label, index)` — not on how
    /// much randomness has been consumed from `self` — so per-entity streams
    /// stay stable when unrelated code draws more or fewer samples.
    pub fn split(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label)).wrapping_add(splitmix64(index));
        SimRng::new(child_seed)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Multiplicative jitter factor, uniform in `[1 - spread, 1 + spread]`
    /// — used to de-synchronise retry schedules across a fleet of clients
    /// so reconnections do not stampede the server in lockstep.
    ///
    /// # Panics
    ///
    /// Panics unless `spread` is in `[0, 1]`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&spread),
            "jitter spread must be in [0, 1], got {spread}"
        );
        self.uniform_in(1.0 - spread, 1.0 + spread)
    }

    /// Normal sample with the given mean and standard deviation
    /// (Box-Muller transform).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev {std_dev}");
        // Box-Muller; avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal sample: `exp(N(mu, sigma))`, i.e. `mu`/`sigma` are the
    /// mean/std-dev of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential sample with the given mean (inverse-CDF).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Bounded Pareto sample on `[lo, hi]` with tail exponent `alpha` —
    /// used for heavy-tailed disconnection periods (Figure 17).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn pareto_bounded(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "bad pareto params");
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks an index with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .map(|w| {
                assert!(w.is_finite() && *w >= 0.0, "bad weight {w}");
                *w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // floating-point slack: last positive weight wins
    }

    /// Picks a reference from `items` uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_independent_of_consumption() {
        let mut root = SimRng::new(99);
        let _ = root.next_u64(); // consume some randomness
        let mut child_after = root.split("dev", 3);
        let mut child_fresh = SimRng::new(99).split("dev", 3);
        assert_eq!(child_after.next_u64(), child_fresh.next_u64());
    }

    #[test]
    fn split_streams_differ_by_label_and_index() {
        let root = SimRng::new(1);
        let a = root.split("device", 0).next_u64();
        let b = root.split("device", 1).next_u64();
        let c = root.split("user", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::new(17);
        for _ in 0..10_000 {
            assert!(rng.log_normal(1.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = SimRng::new(19);
        for _ in 0..10_000 {
            let x = rng.pareto_bounded(1.0, 100.0, 1.2);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // Median far below mean for small alpha.
        let mut rng = SimRng::new(23);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| rng.pareto_bounded(1.0, 1000.0, 0.8))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean > 3.0 * median, "mean {mean}, median {median}");
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut rng = SimRng::new(29);
        let weights = [0.7, 0.2, 0.1];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[rng.weighted_index(&weights)] += 1;
        }
        for (i, w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "weight {i}: {freq} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_index_rejects_zero_total() {
        let _ = SimRng::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_rejects_empty_range() {
        let _ = SimRng::new(1).index(0);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::new(43);
        for _ in 0..10_000 {
            let j = rng.jitter(0.2);
            assert!((0.8..1.2).contains(&j), "{j}");
        }
    }

    #[test]
    fn jitter_zero_spread_is_identity() {
        let mut rng = SimRng::new(47);
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "jitter spread")]
    fn jitter_rejects_bad_spread() {
        let _ = SimRng::new(1).jitter(1.5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(31);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left input sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::new(41);
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
