//! # mps-simcore — deterministic discrete-event simulation kernel
//!
//! Everything stochastic in the SoundCity reproduction (the crowd, sensors,
//! connectivity, mobility) runs on this kernel so experiments are
//! bit-reproducible from a single seed:
//!
//! * [`EventQueue`] — a time-ordered event queue with stable FIFO
//!   tie-breaking for simultaneous events.
//! * [`SimRng`] — a seeded random-number generator that can be *split* into
//!   independent, deterministic per-entity streams, with the distribution
//!   samplers the models need (normal, log-normal, exponential, Pareto,
//!   weighted choice).
//! * [`MarkovChain`] — a finite-state Markov chain (drives the activity
//!   model of Figure 21).
//! * [`stats`] — online moments and quantile helpers used by the analyses.
//!
//! # Examples
//!
//! ```
//! use mps_simcore::EventQueue;
//! use mps_types::SimTime;
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.push(SimTime::from_millis(20), "second");
//! queue.push(SimTime::from_millis(10), "first");
//! let (t, event) = queue.pop().unwrap();
//! assert_eq!((t.as_millis(), event), (10, "first"));
//! ```

mod markov;
#[cfg(test)]
mod proptests;
mod queue;
mod rng;
pub mod stats;

pub use markov::MarkovChain;
pub use queue::EventQueue;
pub use rng::SimRng;
