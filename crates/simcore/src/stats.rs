//! Online statistics and quantile helpers.
//!
//! The empirical analyses aggregate millions of simulated observations;
//! [`Running`] accumulates moments in O(1) memory (Welford's algorithm),
//! and [`percentile`] computes quantiles from sorted samples for the CDF
//! analyses (Figure 17).

/// Online accumulator of count, mean, variance, min and max.
///
/// # Examples
///
/// ```
/// use mps_simcore::stats::Running;
///
/// let mut acc = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 8);
/// assert_eq!(acc.mean(), 5.0);
/// assert_eq!(acc.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`), or 0 for fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or 0 for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Running {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Running::new();
        acc.extend(iter);
        acc
    }
}

/// Linear-interpolation percentile of a **sorted** slice; `q` in `[0, 1]`.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mps_simcore::stats::percentile;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&sorted, 0.0), Some(1.0));
/// assert_eq!(percentile(&sorted, 0.5), Some(2.5));
/// assert_eq!(percentile(&sorted, 1.0), Some(4.0));
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if sorted.is_empty() {
        return None;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Fraction of a **sorted** slice at or below `threshold` — one point of an
/// empirical CDF. Returns 0 for an empty slice.
///
/// # Examples
///
/// ```
/// use mps_simcore::stats::cdf_at;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(cdf_at(&sorted, 2.5), 0.5);
/// ```
pub fn cdf_at(sorted: &[f64], threshold: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let count = sorted.partition_point(|x| *x <= threshold);
    count as f64 / sorted.len() as f64
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// points, or either has zero variance.
///
/// # Examples
///
/// ```
/// use mps_simcore::stats::pearson;
///
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_moments() {
        let acc: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.population_variance(), 4.0);
        assert_eq!(acc.std_dev(), 2.0);
        assert!((acc.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn running_empty() {
        let acc = Running::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn running_single_sample() {
        let mut acc = Running::new();
        acc.push(3.5);
        assert_eq!(acc.mean(), 3.5);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.min(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Running = data.iter().copied().collect();
        let mut left: Running = data[..37].iter().copied().collect();
        let right: Running = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc: Running = [1.0, 2.0].into_iter().collect();
        let before = acc.clone();
        acc.merge(&Running::new());
        assert_eq!(acc, before);

        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&sorted, 0.25), Some(20.0));
        assert_eq!(percentile(&sorted, 0.5), Some(30.0));
        assert_eq!(percentile(&sorted, 0.9), Some(46.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn cdf_at_boundaries() {
        let sorted = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(cdf_at(&sorted, 0.5), 0.0);
        assert_eq!(cdf_at(&sorted, 2.0), 0.75);
        assert_eq!(cdf_at(&sorted, 10.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // zero variance
    }
}
