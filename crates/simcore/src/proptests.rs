//! In-crate property tests over the kernel's invariants.

use crate::stats::{cdf_at, percentile, Running};
use crate::{EventQueue, MarkovChain, SimRng};
use mps_types::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(-1_000i64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for t in &times {
            q.push(SimTime::from_millis(*t), ());
        }
        let mut last = i64::MIN;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t.as_millis() >= last);
            last = t.as_millis();
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn running_merge_is_associative_enough(
        a in prop::collection::vec(-100.0f64..100.0, 0..30),
        b in prop::collection::vec(-100.0f64..100.0, 0..30),
        c in prop::collection::vec(-100.0f64..100.0, 0..30),
    ) {
        let mut left: Running = a.iter().copied().collect();
        let mid: Running = b.iter().copied().collect();
        let right: Running = c.iter().copied().collect();
        left.merge(&mid);
        left.merge(&right);

        let all: Running = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.population_variance() - all.population_variance()).abs() < 1e-7);
    }

    #[test]
    fn percentile_returns_member_range(mut values in prop::collection::vec(-1e5f64..1e5, 1..50)) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = percentile(&values, q).unwrap();
            prop_assert!(p >= values[0] - 1e-9 && p <= values[values.len() - 1] + 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone(mut values in prop::collection::vec(-100.0f64..100.0, 1..50),
                       t1 in -120.0f64..120.0, t2 in -120.0f64..120.0) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(cdf_at(&values, lo) <= cdf_at(&values, hi));
    }

    #[test]
    fn rng_samplers_stay_in_domain(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!(rng.exponential(2.0) >= 0.0);
            prop_assert!(rng.log_normal(0.0, 1.0) > 0.0);
            let x = rng.pareto_bounded(1.0, 50.0, 1.1);
            prop_assert!((1.0..=50.0).contains(&x));
            let i = rng.weighted_index(&[1.0, 2.0, 3.0]);
            prop_assert!(i < 3);
        }
    }

    #[test]
    fn lazy_chain_stationary_is_target(s0 in 0.05f64..0.9, s1 in 0.05f64..0.9) {
        // Normalise two weights into a target distribution.
        let total = s0 + s1;
        let pi = [s0 / total, s1 / total];
        let stickiness = 0.6;
        let rows = vec![
            vec![stickiness + (1.0 - stickiness) * pi[0], (1.0 - stickiness) * pi[1]],
            vec![(1.0 - stickiness) * pi[0], stickiness + (1.0 - stickiness) * pi[1]],
        ];
        let chain = MarkovChain::new(vec!['a', 'b'], rows).unwrap();
        let stationary = chain.stationary(300);
        prop_assert!((stationary[0] - pi[0]).abs() < 1e-9);
    }
}
