//! Finite-state Markov chains.

use crate::SimRng;
use std::fmt;

/// A finite-state discrete-time Markov chain over states of type `T`.
///
/// Drives the user-activity model (Figure 21 of the paper): states are
/// activity classes, and the stationary distribution of the chain is tuned
/// to the published shares (still ≈ 70 %, moving < 10 %, …).
///
/// # Examples
///
/// ```
/// use mps_simcore::{MarkovChain, SimRng};
///
/// let chain = MarkovChain::new(
///     vec!["sunny", "rainy"],
///     vec![vec![0.9, 0.1], vec![0.5, 0.5]],
/// ).unwrap();
/// let mut rng = SimRng::new(1);
/// let mut state = 0;
/// for _ in 0..10 {
///     state = chain.step(state, &mut rng);
/// }
/// assert!(state < 2);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain<T> {
    states: Vec<T>,
    /// Row-stochastic transition matrix.
    transitions: Vec<Vec<f64>>,
}

/// Error constructing a [`MarkovChain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkovChainError {
    /// The state list was empty.
    NoStates,
    /// The transition matrix is not `n x n`.
    BadShape,
    /// A row's probabilities do not sum to 1 (within 1e-6) or contain a
    /// negative/non-finite entry; carries the row index.
    BadRow(usize),
}

impl fmt::Display for MarkovChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovChainError::NoStates => write!(f, "markov chain needs at least one state"),
            MarkovChainError::BadShape => write!(f, "transition matrix is not square"),
            MarkovChainError::BadRow(i) => {
                write!(f, "transition row {i} is not a probability distribution")
            }
        }
    }
}

impl std::error::Error for MarkovChainError {}

impl<T> MarkovChain<T> {
    /// Creates a chain from states and a row-stochastic transition matrix
    /// (`transitions[i][j]` is the probability of moving from state `i` to
    /// state `j`).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square, a row does not sum to
    /// one, or any entry is negative or non-finite.
    pub fn new(states: Vec<T>, transitions: Vec<Vec<f64>>) -> Result<Self, MarkovChainError> {
        let n = states.len();
        if n == 0 {
            return Err(MarkovChainError::NoStates);
        }
        if transitions.len() != n {
            return Err(MarkovChainError::BadShape);
        }
        for (i, row) in transitions.iter().enumerate() {
            if row.len() != n {
                return Err(MarkovChainError::BadShape);
            }
            let mut total = 0.0;
            for p in row {
                if !p.is_finite() || *p < 0.0 {
                    return Err(MarkovChainError::BadRow(i));
                }
                total += p;
            }
            if (total - 1.0).abs() > 1e-6 {
                return Err(MarkovChainError::BadRow(i));
            }
        }
        Ok(Self {
            states,
            transitions,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the chain has no states (never true for a constructed chain).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, in index order.
    pub fn states(&self) -> &[T] {
        &self.states
    }

    /// The state at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn state(&self, index: usize) -> &T {
        &self.states[index]
    }

    /// Samples the successor of state `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= self.len()`.
    pub fn step(&self, from: usize, rng: &mut SimRng) -> usize {
        rng.weighted_index(&self.transitions[from])
    }

    /// Estimates the stationary distribution by power iteration from the
    /// uniform distribution (`iters` matrix-vector products).
    pub fn stationary(&self, iters: usize) -> Vec<f64> {
        let n = self.len();
        let mut dist = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![0.0; n];
            for (i, p) in dist.iter().enumerate() {
                for (j, q) in self.transitions[i].iter().enumerate() {
                    next[j] += p * q;
                }
            }
            dist = next;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> MarkovChain<&'static str> {
        MarkovChain::new(vec!["a", "b"], vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            MarkovChain::<u8>::new(vec![], vec![]).unwrap_err(),
            MarkovChainError::NoStates
        );
    }

    #[test]
    fn rejects_non_square() {
        let err = MarkovChain::new(vec!["a", "b"], vec![vec![1.0, 0.0]]).unwrap_err();
        assert_eq!(err, MarkovChainError::BadShape);
        let err = MarkovChain::new(vec!["a"], vec![vec![0.5, 0.5]]).unwrap_err();
        assert_eq!(err, MarkovChainError::BadShape);
    }

    #[test]
    fn rejects_bad_rows() {
        let err =
            MarkovChain::new(vec!["a", "b"], vec![vec![0.6, 0.6], vec![0.5, 0.5]]).unwrap_err();
        assert_eq!(err, MarkovChainError::BadRow(0));
        let err =
            MarkovChain::new(vec!["a", "b"], vec![vec![0.5, 0.5], vec![1.5, -0.5]]).unwrap_err();
        assert_eq!(err, MarkovChainError::BadRow(1));
    }

    #[test]
    fn step_stays_in_range() {
        let chain = two_state();
        let mut rng = SimRng::new(3);
        let mut s = 0;
        for _ in 0..1000 {
            s = chain.step(s, &mut rng);
            assert!(s < 2);
        }
    }

    #[test]
    fn empirical_distribution_matches_stationary() {
        let chain = two_state();
        // Stationary: pi_a * 0.1 = pi_b * 0.3 => pi_a = 0.75, pi_b = 0.25.
        let pi = chain.stationary(200);
        assert!((pi[0] - 0.75).abs() < 1e-9, "{pi:?}");

        let mut rng = SimRng::new(9);
        let mut s = 0;
        let n = 200_000;
        let mut count_a = 0;
        for _ in 0..n {
            s = chain.step(s, &mut rng);
            if s == 0 {
                count_a += 1;
            }
        }
        let freq = count_a as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn accessors() {
        let chain = two_state();
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
        assert_eq!(chain.states(), &["a", "b"]);
        assert_eq!(*chain.state(1), "b");
    }

    #[test]
    fn error_display() {
        assert!(MarkovChainError::BadRow(3).to_string().contains('3'));
        assert!(!MarkovChainError::NoStates.to_string().is_empty());
        assert!(!MarkovChainError::BadShape.to_string().is_empty());
    }
}
