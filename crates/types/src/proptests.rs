//! In-crate property tests over the domain types' invariants.

use crate::{GeoBounds, GeoPoint, SimDuration, SimTime, SoundLevel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bounds_lerp_always_inside(u in 0.0f64..=1.0, v in 0.0f64..=1.0) {
        let b = GeoBounds::paris();
        prop_assert!(b.contains(b.lerp(u, v)));
    }

    #[test]
    fn distance_is_nonnegative_and_symmetric(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d = a.distance_m(b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - b.distance_m(a)).abs() < 1e-6);
        prop_assert!(d < 2.1e7, "no distance exceeds half the circumference: {}", d);
    }

    #[test]
    fn sound_combine_is_permutation_invariant(levels in prop::collection::vec(0.0f64..110.0, 1..8)) {
        let forward = SoundLevel::combine(levels.iter().map(|l| SoundLevel::new(*l)));
        let backward = SoundLevel::combine(levels.iter().rev().map(|l| SoundLevel::new(*l)));
        prop_assert!((forward.db() - backward.db()).abs() < 1e-9);
    }

    #[test]
    fn sound_combine_is_monotone_in_each_source(base in 30.0f64..90.0, extra in 0.0f64..90.0) {
        let one = SoundLevel::combine([SoundLevel::new(base)]);
        let two = SoundLevel::combine([SoundLevel::new(base), SoundLevel::new(extra)]);
        prop_assert!(two.db() >= one.db() - 1e-9);
    }

    #[test]
    fn leq_of_duplicated_samples_is_unchanged(db in 0.0f64..100.0, n in 1usize..20) {
        let samples = vec![SoundLevel::new(db); n];
        prop_assert!((SoundLevel::leq(&samples).db() - db).abs() < 1e-9);
    }

    #[test]
    fn time_day_hour_decomposition(day in -500i64..500, hour in 0u32..24, min in 0u32..60) {
        let t = SimTime::from_hms(day, hour, min, 0);
        prop_assert_eq!(t.day(), day);
        prop_assert_eq!(t.hour_of_day(), hour);
        prop_assert_eq!(t.minute_of_hour(), min);
    }

    #[test]
    fn duration_scaling_distributes(ms in -1_000_000i64..1_000_000, k in 1i64..50) {
        let d = SimDuration::from_millis(ms);
        prop_assert_eq!((d * k).as_millis(), ms * k);
        prop_assert_eq!(((d * k) / k).as_millis(), ms);
    }

    #[test]
    fn local_xy_magnitude_matches_haversine(dx in -10_000.0f64..10_000.0, dy in -10_000.0f64..10_000.0) {
        let origin = GeoPoint::PARIS;
        let p = GeoPoint::from_local_xy(origin, dx, dy);
        let planar = (dx * dx + dy * dy).sqrt();
        let sphere = origin.distance_m(p);
        // At city scale the equirectangular projection is metre-accurate.
        prop_assert!((planar - sphere).abs() < 0.5 + planar * 1e-3);
    }
}
