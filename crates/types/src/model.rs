//! The catalog of phone models analysed by the paper.
//!
//! The paper's empirical study (Section 4.3, Figure 9) concentrates on the
//! 20 most popular phone models of the SoundCity user base. [`DeviceModel`]
//! enumerates them, ordered as in Figure 9 (by localized-measurement count),
//! and exposes the published per-model statistics, which downstream crates
//! use both to size the simulated crowd and as the reference column in the
//! reproduced Table (Fig 9).

use crate::error::ParseEnumError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Published per-model statistics from Figure 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelPaperStats {
    /// Number of distinct devices of this model in the study.
    pub devices: u64,
    /// Total measurements contributed by the model.
    pub measurements: u64,
    /// Measurements carrying a location fix.
    pub localized: u64,
}

impl ModelPaperStats {
    /// Fraction of this model's measurements that are localized.
    pub fn localized_fraction(&self) -> f64 {
        if self.measurements == 0 {
            0.0
        } else {
            self.localized as f64 / self.measurements as f64
        }
    }
}

macro_rules! device_models {
    ($(($variant:ident, $label:literal, $maker:literal,
        $devices:literal, $measurements:literal, $localized:literal)),+ $(,)?) => {
        /// One of the 20 most popular phone models of the SoundCity user
        /// base (Figure 9 of the paper), in the paper's row order.
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[allow(missing_docs)] // variant names mirror the paper's table rows
        pub enum DeviceModel {
            $($variant),+
        }

        impl DeviceModel {
            /// All 20 models, in the paper's row order (Figure 9).
            pub const ALL: [DeviceModel; 20] = [$(DeviceModel::$variant),+];

            /// The model label exactly as printed in Figure 9
            /// (e.g. `"SAMSUNG GT-I9505"`).
            pub fn label(self) -> &'static str {
                match self {
                    $(DeviceModel::$variant => $label),+
                }
            }

            /// The device manufacturer (the first word of the label).
            pub fn manufacturer(self) -> &'static str {
                match self {
                    $(DeviceModel::$variant => $maker),+
                }
            }

            /// The per-model statistics published in Figure 9.
            pub fn paper_stats(self) -> ModelPaperStats {
                match self {
                    $(DeviceModel::$variant => ModelPaperStats {
                        devices: $devices,
                        measurements: $measurements,
                        localized: $localized,
                    }),+
                }
            }
        }

        impl FromStr for DeviceModel {
            type Err = ParseEnumError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($label => Ok(DeviceModel::$variant),)+
                    _ => Err(ParseEnumError::new("DeviceModel", s)),
                }
            }
        }
    };
}

device_models![
    (
        SamsungGtI9505,
        "SAMSUNG GT-I9505",
        "SAMSUNG",
        253,
        2_346_755,
        1_014_261
    ),
    (
        SamsungSmG900f,
        "SAMSUNG SM-G900F",
        "SAMSUNG",
        211,
        2_048_523,
        847_591
    ),
    (SonyD5803, "SONY D5803", "SONY", 112, 1_097_018, 778_732),
    (LgeLgD855, "LGE LG-D855", "LGE", 87, 1_098_479, 669_446),
    (
        OneplusA0001,
        "ONEPLUS A0001",
        "ONEPLUS",
        84,
        1_177_343,
        657_992
    ),
    (LgeNexus5, "LGE NEXUS 5", "LGE", 129, 843_472, 530_597),
    (
        SamsungGtI9300,
        "SAMSUNG GT-I9300",
        "SAMSUNG",
        185,
        1_432_594,
        528_950
    ),
    (
        SamsungSmG901f,
        "SAMSUNG SM-G901F",
        "SAMSUNG",
        73,
        1_113_082,
        524_761
    ),
    (SonyD6603, "SONY D6603", "SONY", 51, 815_239, 524_287),
    (
        SamsungSmN9005,
        "SAMSUNG SM-N9005",
        "SAMSUNG",
        134,
        1_448_701,
        503_379
    ),
    (
        SamsungGtI9195,
        "SAMSUNG GT-I9195",
        "SAMSUNG",
        174,
        2_192_925,
        464_916
    ),
    (
        SamsungSmG800f,
        "SAMSUNG SM-G800F",
        "SAMSUNG",
        66,
        989_210,
        393_045
    ),
    (HtcOneM8, "HTC HTCONE_M8", "HTC", 76, 854_593, 177_342),
    (LgeNexus4, "LGE NEXUS 4", "LGE", 67, 702_895, 380_751),
    (SonyD6503, "SONY D6503", "SONY", 52, 716_627, 200_360),
    (
        SamsungSmN910f,
        "SAMSUNG SM-N910F",
        "SAMSUNG",
        116,
        812_207,
        344_337
    ),
    (
        SamsungGtI9305,
        "SAMSUNG GT-I9305",
        "SAMSUNG",
        39,
        692_420,
        209_917
    ),
    (LgeLgD802, "LGE LG-D802", "LGE", 46, 728_469, 278_089),
    (SonyD2303, "SONY D2303", "SONY", 40, 585_396, 221_686),
    (
        SamsungGtP5210,
        "SAMSUNG GT-P5210",
        "SAMSUNG",
        96,
        1_412_188,
        305_735
    ),
];

impl DeviceModel {
    /// Total devices across the top-20 models (Figure 9 bottom row: 2 091).
    pub fn total_devices() -> u64 {
        Self::ALL.iter().map(|m| m.paper_stats().devices).sum()
    }

    /// Total measurements across the top-20 models (23 108 136).
    pub fn total_measurements() -> u64 {
        Self::ALL.iter().map(|m| m.paper_stats().measurements).sum()
    }

    /// Total localized measurements across the top-20 models (9 556 174).
    pub fn total_localized() -> u64 {
        Self::ALL.iter().map(|m| m.paper_stats().localized).sum()
    }

    /// Stable index of the model in the paper's row order, `0..20`.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&m| m == self)
            .expect("model in ALL")
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_twenty_models() {
        assert_eq!(DeviceModel::ALL.len(), 20);
    }

    #[test]
    fn totals_match_figure_9() {
        assert_eq!(DeviceModel::total_devices(), 2_091);
        assert_eq!(DeviceModel::total_measurements(), 23_108_136);
        assert_eq!(DeviceModel::total_localized(), 9_556_174);
    }

    #[test]
    fn about_40_percent_localized_overall() {
        let frac = DeviceModel::total_localized() as f64 / DeviceModel::total_measurements() as f64;
        assert!((0.40..0.43).contains(&frac), "localized fraction {frac}");
    }

    #[test]
    fn labels_parse_back() {
        for model in DeviceModel::ALL {
            let parsed: DeviceModel = model.label().parse().unwrap();
            assert_eq!(parsed, model);
        }
    }

    #[test]
    fn unknown_label_fails_to_parse() {
        let err = "APPLE IPHONE6".parse::<DeviceModel>().unwrap_err();
        assert_eq!(err.type_name(), "DeviceModel");
    }

    #[test]
    fn manufacturer_is_label_prefix() {
        for model in DeviceModel::ALL {
            assert!(
                model.label().starts_with(model.manufacturer()),
                "{model}: manufacturer not a prefix"
            );
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, model) in DeviceModel::ALL.iter().enumerate() {
            assert_eq!(model.index(), i);
        }
    }

    #[test]
    fn localized_fraction_bounds() {
        for model in DeviceModel::ALL {
            let f = model.paper_stats().localized_fraction();
            assert!((0.0..=1.0).contains(&f), "{model}: {f}");
        }
        let zero = ModelPaperStats {
            devices: 0,
            measurements: 0,
            localized: 0,
        };
        assert_eq!(zero.localized_fraction(), 0.0);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(DeviceModel::OneplusA0001.to_string(), "ONEPLUS A0001");
    }

    #[test]
    fn serde_round_trip() {
        let m = DeviceModel::SonyD5803;
        let json = serde_json::to_string(&m).unwrap();
        let back: DeviceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
