//! Strongly-typed identifiers.
//!
//! Newtypes keep device, user and client identifiers from being confused
//! with one another (C-NEWTYPE): a [`DeviceId`] can never be passed where a
//! [`UserId`] is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

numeric_id!(
    /// Identifier of a physical device (a phone) contributing observations.
    DeviceId,
    "dev-"
);

numeric_id!(
    /// Identifier of a participating user. A user owns exactly one device in
    /// the simulated deployment, mirroring the paper's per-device accounting.
    UserId,
    "user-"
);

/// Identifier of a mobile client session as known to the GoFlow server.
///
/// In the real system this is a shared secret between client and server,
/// used as a filtering parameter on the client exchange binding (Section
/// 3.2 of the paper). We model it as an opaque string token.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClientId(String);

impl ClientId {
    /// Creates a client identifier from a token string.
    pub fn new(token: impl Into<String>) -> Self {
        Self(token.into())
    }

    /// Returns the token as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClientId {
    fn from(token: &str) -> Self {
        Self(token.to_owned())
    }
}

impl From<String> for ClientId {
    fn from(token: String) -> Self {
        Self(token)
    }
}

impl AsRef<str> for ClientId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Identifier of an application registered with the GoFlow server.
///
/// The GoFlow server may host contributions from multiple MPS applications;
/// each gets its own exchange and storage collection. The paper's instance
/// is the `SC` (SoundCity) application.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AppId(String);

impl AppId {
    /// Creates an application identifier.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The application id used throughout the paper's experiment.
    pub fn soundcity() -> Self {
        Self("SC".to_owned())
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AppId {
    fn from(name: &str) -> Self {
        Self(name.to_owned())
    }
}

impl From<String> for AppId {
    fn from(name: String) -> Self {
        Self(name)
    }
}

impl AsRef<str> for AppId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_ids_round_trip_raw() {
        let id = DeviceId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(DeviceId::from(42u64), id);
    }

    #[test]
    fn numeric_ids_display_with_prefix() {
        assert_eq!(DeviceId::new(7).to_string(), "dev-7");
        assert_eq!(UserId::new(7).to_string(), "user-7");
    }

    #[test]
    fn numeric_ids_are_distinct_types() {
        // This is a compile-time property; here we only check values.
        assert_eq!(DeviceId::new(1).raw(), UserId::new(1).raw());
    }

    #[test]
    fn client_id_conversions() {
        let id = ClientId::from("secret-token");
        assert_eq!(id.as_str(), "secret-token");
        assert_eq!(id.as_ref(), "secret-token");
        assert_eq!(id.to_string(), "secret-token");
        assert_eq!(ClientId::new(String::from("secret-token")), id);
    }

    #[test]
    fn app_id_soundcity_is_sc() {
        assert_eq!(AppId::soundcity().as_str(), "SC");
    }

    #[test]
    fn serde_transparent() {
        let id = DeviceId::new(9);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "9");
        let back: DeviceId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);

        let app = AppId::soundcity();
        assert_eq!(serde_json::to_string(&app).unwrap(), "\"SC\"");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
        assert!(ClientId::from("a") < ClientId::from("b"));
    }
}
