//! The observation record.
//!
//! [`Observation`] is the unit of crowd-sensed data: one SPL measurement
//! captured on a phone, optionally localized, tagged with the user's
//! activity and the sensing mode, and carrying both the capture time and
//! (once delivered) the server arrival time — the difference is the
//! transmission delay analysed in Figure 17.

use crate::{
    Activity, AppVersion, DeviceId, DeviceModel, LocationFix, ParseEnumError, SimDuration, SimTime,
    SoundLevel, UserId,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How an observation was initiated (Section 6.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SensingMode {
    /// Periodic background measurement (default: every 5 minutes).
    Opportunistic,
    /// The user pressed "sense now" on the home page.
    Manual,
    /// The user engaged in a Journey: participatory sensing along a path
    /// with a user-chosen frequency.
    Journey,
}

impl SensingMode {
    /// All modes, in the paper's reporting order (Figure 20).
    pub const ALL: [SensingMode; 3] = [
        SensingMode::Opportunistic,
        SensingMode::Manual,
        SensingMode::Journey,
    ];

    /// Lower-case mode name.
    pub fn name(self) -> &'static str {
        match self {
            SensingMode::Opportunistic => "opportunistic",
            SensingMode::Manual => "manual",
            SensingMode::Journey => "journey",
        }
    }

    /// Whether the user is consciously participating (manual or journey).
    pub fn is_participatory(self) -> bool {
        !matches!(self, SensingMode::Opportunistic)
    }
}

impl fmt::Display for SensingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SensingMode {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SensingMode::ALL
            .iter()
            .find(|m| m.name() == s)
            .copied()
            .ok_or_else(|| ParseEnumError::new("SensingMode", s))
    }
}

/// One crowd-sensed measurement.
///
/// Build observations with [`Observation::builder`]; the builder enforces
/// the record's invariants (finite SPL, valid fix) while leaving optional
/// context absent by default.
///
/// # Examples
///
/// ```
/// use mps_types::{Activity, DeviceModel, Observation, SensingMode, SimTime, SoundLevel};
///
/// let obs = Observation::builder()
///     .device(1.into())
///     .user(1.into())
///     .model(DeviceModel::LgeNexus5)
///     .captured_at(SimTime::from_hms(10, 18, 0, 0))
///     .spl(SoundLevel::new(62.5))
///     .activity(Activity::Foot)
///     .mode(SensingMode::Journey)
///     .build();
/// assert!(obs.mode.is_participatory());
/// assert!(obs.delay().is_none()); // not delivered yet
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Contributing device.
    pub device: DeviceId,
    /// Contributing user.
    pub user: UserId,
    /// The device's model (one of the top-20).
    pub model: DeviceModel,
    /// Instant the measurement was captured on the phone.
    pub captured_at: SimTime,
    /// Instant the measurement reached the GoFlow server, if delivered.
    pub arrived_at: Option<SimTime>,
    /// The measured A-weighted sound pressure level.
    pub spl: SoundLevel,
    /// Location fix, when one was available (~40 % of observations).
    pub location: Option<LocationFix>,
    /// Recognised user activity at capture time.
    pub activity: Activity,
    /// How the measurement was initiated.
    pub mode: SensingMode,
    /// App version that captured the measurement.
    pub app_version: AppVersion,
}

impl Observation {
    /// Starts building an observation.
    pub fn builder() -> ObservationBuilder {
        ObservationBuilder::default()
    }

    /// Whether the observation carries a location fix.
    pub fn is_localized(&self) -> bool {
        self.location.is_some()
    }

    /// Transmission delay (arrival − capture), if the observation has been
    /// delivered to the server.
    pub fn delay(&self) -> Option<SimDuration> {
        self.arrived_at.map(|a| a.since(self.captured_at))
    }

    /// Marks the observation as arrived at the server.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the capture time — arrival cannot predate
    /// capture.
    pub fn mark_arrived(&mut self, at: SimTime) {
        assert!(
            at >= self.captured_at,
            "arrival {at} precedes capture {}",
            self.captured_at
        );
        self.arrived_at = Some(at);
    }
}

/// Builder for [`Observation`] (see [`Observation::builder`]).
#[derive(Debug, Clone, Default)]
pub struct ObservationBuilder {
    device: Option<DeviceId>,
    user: Option<UserId>,
    model: Option<DeviceModel>,
    captured_at: Option<SimTime>,
    arrived_at: Option<SimTime>,
    spl: Option<SoundLevel>,
    location: Option<LocationFix>,
    activity: Option<Activity>,
    mode: Option<SensingMode>,
    app_version: Option<AppVersion>,
}

impl ObservationBuilder {
    /// Sets the contributing device (required).
    pub fn device(mut self, device: DeviceId) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the contributing user (required).
    pub fn user(mut self, user: UserId) -> Self {
        self.user = Some(user);
        self
    }

    /// Sets the device model (required).
    pub fn model(mut self, model: DeviceModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the capture instant (required).
    pub fn captured_at(mut self, at: SimTime) -> Self {
        self.captured_at = Some(at);
        self
    }

    /// Sets the server arrival instant (optional; normally stamped by the
    /// server via [`Observation::mark_arrived`]).
    pub fn arrived_at(mut self, at: SimTime) -> Self {
        self.arrived_at = Some(at);
        self
    }

    /// Sets the measured sound level (required).
    pub fn spl(mut self, spl: SoundLevel) -> Self {
        self.spl = Some(spl);
        self
    }

    /// Attaches a location fix (optional).
    pub fn location(mut self, fix: LocationFix) -> Self {
        self.location = Some(fix);
        self
    }

    /// Sets the recognised activity (defaults to [`Activity::Undefined`]).
    pub fn activity(mut self, activity: Activity) -> Self {
        self.activity = Some(activity);
        self
    }

    /// Sets the sensing mode (defaults to [`SensingMode::Opportunistic`]).
    pub fn mode(mut self, mode: SensingMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the capturing app version (defaults to [`AppVersion::V1_1`]).
    pub fn app_version(mut self, version: AppVersion) -> Self {
        self.app_version = Some(version);
        self
    }

    /// Builds the observation.
    ///
    /// # Panics
    ///
    /// Panics if a required field (device, user, model, capture time, SPL)
    /// is missing, or if an arrival time precedes the capture time.
    pub fn build(self) -> Observation {
        let captured_at = self.captured_at.expect("captured_at is required");
        if let Some(arrived) = self.arrived_at {
            assert!(
                arrived >= captured_at,
                "arrival {arrived} precedes capture {captured_at}"
            );
        }
        Observation {
            device: self.device.expect("device is required"),
            user: self.user.expect("user is required"),
            model: self.model.expect("model is required"),
            captured_at,
            arrived_at: self.arrived_at,
            spl: self.spl.expect("spl is required"),
            location: self.location,
            activity: self.activity.unwrap_or(Activity::Undefined),
            mode: self.mode.unwrap_or(SensingMode::Opportunistic),
            app_version: self.app_version.unwrap_or(AppVersion::V1_1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeoPoint, LocationProvider};

    fn base() -> ObservationBuilder {
        Observation::builder()
            .device(1.into())
            .user(2.into())
            .model(DeviceModel::SamsungGtI9505)
            .captured_at(SimTime::from_hms(0, 12, 0, 0))
            .spl(SoundLevel::new(58.0))
    }

    #[test]
    fn builder_defaults() {
        let obs = base().build();
        assert_eq!(obs.activity, Activity::Undefined);
        assert_eq!(obs.mode, SensingMode::Opportunistic);
        assert_eq!(obs.app_version, AppVersion::V1_1);
        assert!(!obs.is_localized());
        assert!(obs.delay().is_none());
    }

    #[test]
    fn builder_sets_all_fields() {
        let fix = LocationFix::new(GeoPoint::PARIS, 20.0, LocationProvider::Gps);
        let obs = base()
            .location(fix)
            .activity(Activity::Vehicle)
            .mode(SensingMode::Manual)
            .app_version(AppVersion::V1_3)
            .build();
        assert!(obs.is_localized());
        assert_eq!(obs.location.unwrap().provider, LocationProvider::Gps);
        assert_eq!(obs.activity, Activity::Vehicle);
        assert_eq!(obs.mode, SensingMode::Manual);
        assert_eq!(obs.app_version, AppVersion::V1_3);
    }

    #[test]
    #[should_panic(expected = "spl is required")]
    fn builder_requires_spl() {
        let _ = Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::LgeNexus4)
            .captured_at(SimTime::EPOCH)
            .build();
    }

    #[test]
    fn delay_is_arrival_minus_capture() {
        let mut obs = base().build();
        obs.mark_arrived(obs.captured_at + SimDuration::from_secs(8));
        assert_eq!(obs.delay().unwrap(), SimDuration::from_secs(8));
    }

    #[test]
    #[should_panic(expected = "precedes capture")]
    fn arrival_cannot_predate_capture() {
        let mut obs = base().build();
        obs.mark_arrived(obs.captured_at - SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "precedes capture")]
    fn builder_rejects_arrival_before_capture() {
        let _ = base().arrived_at(SimTime::EPOCH).build();
    }

    #[test]
    fn sensing_mode_participatory() {
        assert!(!SensingMode::Opportunistic.is_participatory());
        assert!(SensingMode::Manual.is_participatory());
        assert!(SensingMode::Journey.is_participatory());
    }

    #[test]
    fn sensing_mode_parse_round_trip() {
        for m in SensingMode::ALL {
            assert_eq!(m.name().parse::<SensingMode>().unwrap(), m);
        }
        assert!("passive".parse::<SensingMode>().is_err());
    }

    #[test]
    fn observation_serde_round_trip() {
        let fix = LocationFix::new(GeoPoint::PARIS, 35.0, LocationProvider::Network);
        let mut obs = base().location(fix).mode(SensingMode::Journey).build();
        obs.mark_arrived(obs.captured_at + SimDuration::from_mins(50));
        let json = serde_json::to_string(&obs).unwrap();
        let back: Observation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, obs);
        assert_eq!(back.delay(), Some(SimDuration::from_mins(50)));
    }
}
