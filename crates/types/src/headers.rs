//! Canonical message-header keys.
//!
//! Extension headers ride on broker messages and must match
//! byte-for-byte on both sides of the wire: a typo'd key silently drops
//! trace propagation instead of failing loudly. This module is the one
//! place in the workspace allowed to spell the `x-…` literals
//! (enforced by mps-lint L005, `headers_home` in `mps-lint.toml`);
//! every other crate imports the constants.
//!
//! `mps-telemetry` is intentionally dependency-free and therefore keeps
//! its own (waived) copies of these values; a cross-check test in
//! `mps-broker` pins the two definitions together.

/// Header carrying encoded trace contexts across the broker boundary.
pub const TRACE_HEADER: &str = "x-trace";

/// Header carrying the sim-clock publish time (milliseconds since the
/// epoch, decimal) so the consuming hop can measure queue wait.
pub const SENT_MS_HEADER: &str = "x-trace-sent-ms";
