//! Geographic positions and bounding boxes.
//!
//! Observations are localized with WGS-84 coordinates. The city-scale
//! analyses also need metric distances and a local planar projection; at
//! city scale an equirectangular approximation is accurate to well under a
//! metre, which is far below phone location accuracy (tens of metres).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in metres (IUGG).
const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 position (latitude/longitude in degrees).
///
/// # Examples
///
/// ```
/// use mps_types::GeoPoint;
///
/// let notre_dame = GeoPoint::new(48.8530, 2.3499);
/// let louvre = GeoPoint::new(48.8606, 2.3376);
/// let d = notre_dame.distance_m(louvre);
/// assert!(d > 1_100.0 && d < 1_400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// City-hall reference point for the Paris deployment.
    pub const PARIS: GeoPoint = GeoPoint {
        lat: 48.8566,
        lon: 2.3522,
    };

    /// Creates a point from latitude and longitude in degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn distance_m(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Projects this point to planar metres east/north of `origin`
    /// (equirectangular local projection).
    pub fn to_local_xy(self, origin: GeoPoint) -> (f64, f64) {
        let lat0 = origin.lat.to_radians();
        let x = (self.lon - origin.lon).to_radians() * lat0.cos() * EARTH_RADIUS_M;
        let y = (self.lat - origin.lat).to_radians() * EARTH_RADIUS_M;
        (x, y)
    }

    /// Inverse of [`GeoPoint::to_local_xy`]: the point `x` metres east and
    /// `y` metres north of `origin`.
    pub fn from_local_xy(origin: GeoPoint, x: f64, y: f64) -> Self {
        let lat0 = origin.lat.to_radians();
        GeoPoint {
            lat: origin.lat + (y / EARTH_RADIUS_M).to_degrees(),
            lon: origin.lon + (x / (EARTH_RADIUS_M * lat0.cos())).to_degrees(),
        }
    }

    /// Whether the coordinates are finite and within WGS-84 ranges.
    pub fn is_valid(self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

/// An axis-aligned latitude/longitude bounding box.
///
/// Used by GoFlow's filtered data retrieval ("bbox" filters) and by the
/// assimilation grid.
///
/// # Examples
///
/// ```
/// use mps_types::{GeoBounds, GeoPoint};
///
/// let bounds = GeoBounds::new(48.80, 48.92, 2.25, 2.45);
/// assert!(bounds.contains(GeoPoint::PARIS));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoBounds {
    /// Southern edge latitude, degrees.
    pub lat_min: f64,
    /// Northern edge latitude, degrees.
    pub lat_max: f64,
    /// Western edge longitude, degrees.
    pub lon_min: f64,
    /// Eastern edge longitude, degrees.
    pub lon_max: f64,
}

impl GeoBounds {
    /// Creates a bounding box.
    ///
    /// # Panics
    ///
    /// Panics if `lat_min > lat_max` or `lon_min > lon_max`.
    pub fn new(lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64) -> Self {
        assert!(lat_min <= lat_max, "lat_min > lat_max");
        assert!(lon_min <= lon_max, "lon_min > lon_max");
        Self {
            lat_min,
            lat_max,
            lon_min,
            lon_max,
        }
    }

    /// A bounding box roughly covering intra-muros Paris.
    pub fn paris() -> Self {
        Self::new(48.815, 48.902, 2.224, 2.470)
    }

    /// Whether `point` falls inside (inclusive) this box.
    pub fn contains(&self, point: GeoPoint) -> bool {
        (self.lat_min..=self.lat_max).contains(&point.lat)
            && (self.lon_min..=self.lon_max).contains(&point.lon)
    }

    /// Centre point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.lat_min + self.lat_max) / 2.0,
            (self.lon_min + self.lon_max) / 2.0,
        )
    }

    /// Width (east-west) and height (north-south) of the box in metres,
    /// measured through the centre.
    pub fn size_m(&self) -> (f64, f64) {
        let c = self.center();
        let w = GeoPoint::new(c.lat, self.lon_min).distance_m(GeoPoint::new(c.lat, self.lon_max));
        let h = GeoPoint::new(self.lat_min, c.lon).distance_m(GeoPoint::new(self.lat_max, c.lon));
        (w, h)
    }

    /// Linearly interpolates a point inside the box; `(0,0)` is the
    /// south-west corner, `(1,1)` the north-east corner.
    pub fn lerp(&self, u: f64, v: f64) -> GeoPoint {
        GeoPoint::new(
            self.lat_min + (self.lat_max - self.lat_min) * v,
            self.lon_min + (self.lon_max - self.lon_min) * u,
        )
    }
}

impl fmt::Display for GeoBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4},{:.4}]x[{:.4},{:.4}]",
            self.lat_min, self.lat_max, self.lon_min, self.lon_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_zero_to_self() {
        let p = GeoPoint::PARIS;
        assert_eq!(p.distance_m(p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(48.85, 2.35);
        let b = GeoPoint::new(48.86, 2.37);
        assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(48.0, 2.0);
        let b = GeoPoint::new(49.0, 2.0);
        let d = a.distance_m(b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn local_projection_round_trips() {
        let origin = GeoPoint::PARIS;
        let p = GeoPoint::new(48.87, 2.30);
        let (x, y) = p.to_local_xy(origin);
        let back = GeoPoint::from_local_xy(origin, x, y);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn local_projection_matches_haversine_at_city_scale() {
        let origin = GeoPoint::PARIS;
        let p = GeoPoint::new(48.87, 2.39);
        let (x, y) = p.to_local_xy(origin);
        let planar = (x * x + y * y).sqrt();
        let great_circle = origin.distance_m(p);
        assert!((planar - great_circle).abs() < 5.0);
    }

    #[test]
    fn validity_checks() {
        assert!(GeoPoint::new(48.0, 2.0).is_valid());
        assert!(!GeoPoint::new(91.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 181.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn bounds_contains_and_center() {
        let b = GeoBounds::paris();
        assert!(b.contains(GeoPoint::PARIS));
        assert!(!b.contains(GeoPoint::new(0.0, 0.0)));
        assert!(b.contains(b.center()));
    }

    #[test]
    #[should_panic(expected = "lat_min > lat_max")]
    fn bounds_rejects_inverted_latitudes() {
        let _ = GeoBounds::new(49.0, 48.0, 2.0, 3.0);
    }

    #[test]
    fn bounds_lerp_hits_corners() {
        let b = GeoBounds::new(48.0, 49.0, 2.0, 3.0);
        let sw = b.lerp(0.0, 0.0);
        let ne = b.lerp(1.0, 1.0);
        assert_eq!((sw.lat, sw.lon), (48.0, 2.0));
        assert_eq!((ne.lat, ne.lon), (49.0, 3.0));
    }

    #[test]
    fn paris_bounds_size_is_city_scale() {
        let (w, h) = GeoBounds::paris().size_m();
        assert!(w > 10_000.0 && w < 25_000.0, "width {w}");
        assert!(h > 5_000.0 && h < 15_000.0, "height {h}");
    }
}
