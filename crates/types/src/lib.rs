//! # mps-types — shared domain types
//!
//! Foundation crate of the SoundCity/GoFlow workspace. It defines the
//! vocabulary shared by every other crate: identifiers, simulated time,
//! geographic positions, the catalog of phone models analysed by the paper,
//! location fixes, user activities, sound levels, sensing modes, application
//! versions, and the [`Observation`] record that flows from phones through
//! the middleware into storage.
//!
//! All data types implement [`serde::Serialize`]/[`serde::Deserialize`] so
//! they can cross the (simulated) wire as JSON, exactly as the real
//! deployment shipped JSON payloads over AMQP.
//!
//! # Examples
//!
//! ```
//! use mps_types::{DeviceModel, Observation, SimTime, SoundLevel};
//!
//! let obs = Observation::builder()
//!     .device(7.into())
//!     .user(3.into())
//!     .model(DeviceModel::SamsungGtI9505)
//!     .captured_at(SimTime::from_hms(0, 9, 30, 0))
//!     .spl(SoundLevel::new(55.0))
//!     .build();
//! assert!(obs.location.is_none());
//! assert_eq!(obs.spl.db(), 55.0);
//! ```

mod activity;
mod error;
mod geo;
pub mod headers;
mod id;
mod location;
mod model;
mod observation;
#[cfg(test)]
mod proptests;
mod sound;
mod time;
mod version;

pub use activity::Activity;
pub use error::ParseEnumError;
pub use geo::{GeoBounds, GeoPoint};
pub use id::{AppId, ClientId, DeviceId, UserId};
pub use location::{LocationFix, LocationProvider};
pub use model::DeviceModel;
pub use observation::{Observation, ObservationBuilder, SensingMode};
pub use sound::SoundLevel;
pub use time::{SimDuration, SimTime};
pub use version::AppVersion;
