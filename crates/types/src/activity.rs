//! User activity classes.
//!
//! SoundCity records the Android activity-recognition class alongside each
//! measurement. The paper's Figure 21 analyses the distribution of these
//! classes: the crowd is *still* about 70 % of the time, moving less than
//! 10 %, and unqualified (confidence below 80 %) about 20 % of the time.

use crate::error::ParseEnumError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Activity class attached to an observation, mirroring the categories in
/// Figure 21 of the paper (`undefined`, `unknown`, `tilting`, `still`,
/// `foot`, `bicycle`, `vehicle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Activity {
    /// No recognition result was available at capture time.
    Undefined,
    /// The recogniser ran but its confidence was below the 80 % threshold.
    Unknown,
    /// The device orientation changed significantly (picked up, rotated).
    Tilting,
    /// The device is at rest.
    Still,
    /// The user is walking or running.
    Foot,
    /// The user is riding a bicycle.
    Bicycle,
    /// The user is in a road vehicle.
    Vehicle,
}

impl Activity {
    /// All classes, in the paper's reporting order (Figure 21).
    pub const ALL: [Activity; 7] = [
        Activity::Undefined,
        Activity::Unknown,
        Activity::Tilting,
        Activity::Still,
        Activity::Foot,
        Activity::Bicycle,
        Activity::Vehicle,
    ];

    /// Lower-case class name.
    pub fn name(self) -> &'static str {
        match self {
            Activity::Undefined => "undefined",
            Activity::Unknown => "unknown",
            Activity::Tilting => "tilting",
            Activity::Still => "still",
            Activity::Foot => "foot",
            Activity::Bicycle => "bicycle",
            Activity::Vehicle => "vehicle",
        }
    }

    /// Whether the class indicates the user is in motion (`foot`, `bicycle`
    /// or `vehicle`).
    pub fn is_moving(self) -> bool {
        matches!(self, Activity::Foot | Activity::Bicycle | Activity::Vehicle)
    }

    /// Whether the class could not be qualified (`undefined` or `unknown`) —
    /// the paper groups these as "the activity cannot be characterized".
    pub fn is_unqualified(self) -> bool {
        matches!(self, Activity::Undefined | Activity::Unknown)
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Activity {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Activity::ALL
            .iter()
            .find(|a| a.name() == s)
            .copied()
            .ok_or_else(|| ParseEnumError::new("Activity", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_seven_classes() {
        assert_eq!(Activity::ALL.len(), 7);
    }

    #[test]
    fn names_round_trip() {
        for a in Activity::ALL {
            assert_eq!(a.name().parse::<Activity>().unwrap(), a);
        }
    }

    #[test]
    fn parse_rejects_unknown_name() {
        assert!("swimming".parse::<Activity>().is_err());
    }

    #[test]
    fn moving_classes() {
        let moving: Vec<_> = Activity::ALL.iter().filter(|a| a.is_moving()).collect();
        assert_eq!(
            moving,
            vec![&Activity::Foot, &Activity::Bicycle, &Activity::Vehicle]
        );
    }

    #[test]
    fn unqualified_classes() {
        assert!(Activity::Undefined.is_unqualified());
        assert!(Activity::Unknown.is_unqualified());
        assert!(!Activity::Still.is_unqualified());
        assert!(!Activity::Tilting.is_unqualified());
    }

    #[test]
    fn moving_and_unqualified_are_disjoint() {
        for a in Activity::ALL {
            assert!(!(a.is_moving() && a.is_unqualified()), "{a}");
        }
    }

    #[test]
    fn serde_uses_lowercase() {
        assert_eq!(
            serde_json::to_string(&Activity::Still).unwrap(),
            "\"still\""
        );
        let back: Activity = serde_json::from_str("\"vehicle\"").unwrap();
        assert_eq!(back, Activity::Vehicle);
    }
}
