//! Error types for parsing the crate's enumerations from strings.

use std::error::Error;
use std::fmt;

/// Error returned when parsing one of this crate's enumerations from a
/// string fails.
///
/// Carries the name of the target type and the rejected input so error
/// messages are actionable.
///
/// # Examples
///
/// ```
/// use mps_types::LocationProvider;
///
/// let err = "teleport".parse::<LocationProvider>().unwrap_err();
/// assert!(err.to_string().contains("teleport"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnumError {
    type_name: &'static str,
    input: String,
}

impl ParseEnumError {
    pub(crate) fn new(type_name: &'static str, input: &str) -> Self {
        Self {
            type_name,
            input: input.to_owned(),
        }
    }

    /// Name of the enumeration that failed to parse.
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// The input string that was rejected.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} value: {:?}", self.type_name, self.input)
    }
}

impl Error for ParseEnumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_type_and_input() {
        let err = ParseEnumError::new("Activity", "warp");
        let msg = err.to_string();
        assert!(msg.contains("Activity"));
        assert!(msg.contains("warp"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = ParseEnumError::new("DeviceModel", "IPHONE");
        assert_eq!(err.type_name(), "DeviceModel");
        assert_eq!(err.input(), "IPHONE");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseEnumError>();
    }
}
