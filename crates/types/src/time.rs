//! Simulated time.
//!
//! The deployment replay runs on a virtual clock. [`SimTime`] is an instant
//! measured in milliseconds since the experiment epoch (the launch of the
//! app, July 2015 in the paper); [`SimDuration`] is a span between instants.
//!
//! Calendar arithmetic intentionally uses idealised 24-hour days and 30-day
//! months: the paper's analyses (daily distributions, monthly growth) only
//! need day/hour bucketing, not a civil calendar.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

const MILLIS_PER_SECOND: i64 = 1_000;
const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;
/// Days per idealised reporting month.
pub(crate) const DAYS_PER_MONTH: i64 = 30;

/// An instant on the simulation clock, in milliseconds since the experiment
/// epoch.
///
/// # Examples
///
/// ```
/// use mps_types::{SimDuration, SimTime};
///
/// let t = SimTime::from_hms(2, 10, 30, 0); // day 2, 10:30:00
/// assert_eq!(t.day(), 2);
/// assert_eq!(t.hour_of_day(), 10);
/// let later = t + SimDuration::from_mins(45);
/// assert_eq!(later.hour_of_day(), 11);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(i64);

impl SimTime {
    /// The experiment epoch (instant zero).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(millis: i64) -> Self {
        Self(millis)
    }

    /// Creates an instant from a day index and an hour/minute/second of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`, `min >= 60` or `sec >= 60`.
    pub fn from_hms(day: i64, hour: u32, min: u32, sec: u32) -> Self {
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(min < 60, "minute out of range: {min}");
        assert!(sec < 60, "second out of range: {sec}");
        Self(
            day * MILLIS_PER_DAY
                + i64::from(hour) * MILLIS_PER_HOUR
                + i64::from(min) * MILLIS_PER_MINUTE
                + i64::from(sec) * MILLIS_PER_SECOND,
        )
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> i64 {
        self.0 / MILLIS_PER_SECOND
    }

    /// Day index since the epoch (day 0 is the launch day).
    pub const fn day(self) -> i64 {
        self.0.div_euclid(MILLIS_PER_DAY)
    }

    /// Idealised month index since the epoch (30-day months).
    pub const fn month(self) -> i64 {
        self.day().div_euclid(DAYS_PER_MONTH)
    }

    /// Hour of the day, `0..24`.
    pub const fn hour_of_day(self) -> u32 {
        (self.0.rem_euclid(MILLIS_PER_DAY) / MILLIS_PER_HOUR) as u32
    }

    /// Minute of the hour, `0..60`.
    pub const fn minute_of_hour(self) -> u32 {
        (self.0.rem_euclid(MILLIS_PER_HOUR) / MILLIS_PER_MINUTE) as u32
    }

    /// Fractional hour of day, `0.0..24.0` — convenient for diurnal models.
    pub fn fractional_hour(self) -> f64 {
        self.0.rem_euclid(MILLIS_PER_DAY) as f64 / MILLIS_PER_HOUR as f64
    }

    /// Duration elapsed since `earlier`; negative if `earlier` is later.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier`, clamped at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            self.minute_of_hour(),
            (self.0.rem_euclid(MILLIS_PER_MINUTE) / MILLIS_PER_SECOND)
        )
    }
}

/// A span of simulated time, in milliseconds. May be negative when produced
/// by [`SimTime::since`].
///
/// # Examples
///
/// ```
/// use mps_types::SimDuration;
///
/// let d = SimDuration::from_mins(5);
/// assert_eq!(d.as_secs(), 300);
/// assert_eq!((d * 10).as_mins(), 50);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(i64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: i64) -> Self {
        Self(millis)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs * MILLIS_PER_SECOND)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: i64) -> Self {
        Self(mins * MILLIS_PER_MINUTE)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * MILLIS_PER_HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: i64) -> Self {
        Self(days * MILLIS_PER_DAY)
    }

    /// Creates a duration from fractional seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self((secs * MILLIS_PER_SECOND as f64).round() as i64)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// The duration in whole seconds (truncated toward zero).
    pub const fn as_secs(self) -> i64 {
        self.0 / MILLIS_PER_SECOND
    }

    /// The duration in whole minutes (truncated toward zero).
    pub const fn as_mins(self) -> i64 {
        self.0 / MILLIS_PER_MINUTE
    }

    /// The duration in whole hours (truncated toward zero).
    pub const fn as_hours(self) -> i64 {
        self.0 / MILLIS_PER_HOUR
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SECOND as f64
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Whether the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.abs();
        if abs >= MILLIS_PER_HOUR {
            write!(f, "{sign}{:.2}h", abs as f64 / MILLIS_PER_HOUR as f64)
        } else if abs >= MILLIS_PER_MINUTE {
            write!(f, "{sign}{:.1}min", abs as f64 / MILLIS_PER_MINUTE as f64)
        } else {
            write!(f, "{sign}{:.1}s", abs as f64 / MILLIS_PER_SECOND as f64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::ops::Div<i64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hms_buckets() {
        let t = SimTime::from_hms(3, 14, 45, 30);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.minute_of_hour(), 45);
        assert_eq!(t.as_secs() % 60, 30);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn from_hms_rejects_bad_hour() {
        let _ = SimTime::from_hms(0, 24, 0, 0);
    }

    #[test]
    fn month_index_uses_30_day_months() {
        assert_eq!(SimTime::from_hms(29, 23, 59, 59).month(), 0);
        assert_eq!(SimTime::from_hms(30, 0, 0, 0).month(), 1);
        assert_eq!(SimTime::from_hms(299, 0, 0, 0).month(), 9);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_hms(1, 0, 0, 0);
        let d = SimDuration::from_mins(90);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        u -= d;
        assert_eq!(u, t);
    }

    #[test]
    fn since_is_signed() {
        let a = SimTime::from_millis(1_000);
        let b = SimTime::from_millis(4_000);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert!(a.since(b).is_negative());
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        let d = SimDuration::from_hours(2);
        assert_eq!(d.as_mins(), 120);
        assert_eq!(d.as_hours(), 2);
        assert_eq!(d.as_hours_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_days(2).as_hours(), 48);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_mins(5);
        assert_eq!((d * 10).as_mins(), 50);
        assert_eq!((d / 5).as_secs(), 60);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_hms(2, 9, 5, 7).to_string(), "d2+09:05:07");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.0s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5.0min");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
        assert_eq!(
            (SimDuration::ZERO - SimDuration::from_secs(1)).to_string(),
            "-1.0s"
        );
    }

    #[test]
    fn fractional_hour_in_range() {
        let t = SimTime::from_hms(0, 10, 30, 0);
        assert!((t.fractional_hour() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn negative_times_bucket_correctly() {
        let t = SimTime::from_millis(-1);
        assert_eq!(t.day(), -1);
        assert_eq!(t.hour_of_day(), 23);
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_hms(5, 12, 0, 0);
        let json = serde_json::to_string(&t).unwrap();
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
