//! Location fixes and providers.
//!
//! Android offers three location sources (Section 5.1 of the paper): GPS,
//! network (cell/Wi-Fi), and *fused*, which blends both while optimising
//! energy. Each fix comes with an accuracy estimate in metres; the paper's
//! Figures 10–13 analyse the distribution of those estimates per provider.

use crate::error::ParseEnumError;
use crate::geo::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The Android location source that produced a fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum LocationProvider {
    /// Satellite positioning: highest accuracy (most fixes in 6–20 m), but
    /// energy-hungry and only ~7 % of the paper's localized observations.
    Gps,
    /// Cell-tower / Wi-Fi positioning: 86 % of localized observations,
    /// typically 20–50 m accuracy.
    Network,
    /// Android fused provider: blends GPS and network; ~7 % of localized
    /// observations with rather low accuracy in the paper's data.
    Fused,
}

impl LocationProvider {
    /// All providers, in the paper's reporting order.
    pub const ALL: [LocationProvider; 3] = [
        LocationProvider::Gps,
        LocationProvider::Network,
        LocationProvider::Fused,
    ];

    /// Lower-case name as reported by Android (`"gps"`, `"network"`,
    /// `"fused"`).
    pub fn name(self) -> &'static str {
        match self {
            LocationProvider::Gps => "gps",
            LocationProvider::Network => "network",
            LocationProvider::Fused => "fused",
        }
    }
}

impl fmt::Display for LocationProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LocationProvider {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gps" => Ok(LocationProvider::Gps),
            "network" => Ok(LocationProvider::Network),
            "fused" => Ok(LocationProvider::Fused),
            _ => Err(ParseEnumError::new("LocationProvider", s)),
        }
    }
}

/// A location fix attached to an observation: a position, the provider that
/// produced it, and Android's accuracy estimate (the radius, in metres,
/// within which the true position lies with 68 % confidence).
///
/// # Examples
///
/// ```
/// use mps_types::{GeoPoint, LocationFix, LocationProvider};
///
/// let fix = LocationFix::new(GeoPoint::PARIS, 35.0, LocationProvider::Network);
/// assert!(fix.accuracy_m < 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationFix {
    /// Estimated position.
    pub point: GeoPoint,
    /// Accuracy estimate in metres.
    pub accuracy_m: f64,
    /// Source that produced the fix.
    pub provider: LocationProvider,
}

impl LocationFix {
    /// Creates a fix.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy_m` is negative or not finite.
    pub fn new(point: GeoPoint, accuracy_m: f64, provider: LocationProvider) -> Self {
        assert!(
            accuracy_m.is_finite() && accuracy_m >= 0.0,
            "accuracy must be finite and non-negative, got {accuracy_m}"
        );
        Self {
            point,
            accuracy_m,
            provider,
        }
    }

    /// Whether the fix meets a minimum accuracy requirement (i.e. its
    /// accuracy radius is at most `max_radius_m`).
    pub fn is_at_least_as_accurate_as(&self, max_radius_m: f64) -> bool {
        self.accuracy_m <= max_radius_m
    }
}

impl fmt::Display for LocationFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ±{:.0}m [{}]",
            self.point, self.accuracy_m, self.provider
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_names_round_trip() {
        for p in LocationProvider::ALL {
            assert_eq!(p.name().parse::<LocationProvider>().unwrap(), p);
        }
    }

    #[test]
    fn provider_rejects_unknown() {
        assert!("wifi".parse::<LocationProvider>().is_err());
    }

    #[test]
    fn provider_serde_is_lowercase() {
        let json = serde_json::to_string(&LocationProvider::Gps).unwrap();
        assert_eq!(json, "\"gps\"");
    }

    #[test]
    fn fix_construction_and_accuracy_test() {
        let fix = LocationFix::new(GeoPoint::PARIS, 30.0, LocationProvider::Network);
        assert!(fix.is_at_least_as_accurate_as(50.0));
        assert!(!fix.is_at_least_as_accurate_as(20.0));
        assert!(fix.is_at_least_as_accurate_as(30.0));
    }

    #[test]
    #[should_panic(expected = "accuracy must be finite")]
    fn fix_rejects_negative_accuracy() {
        let _ = LocationFix::new(GeoPoint::PARIS, -1.0, LocationProvider::Gps);
    }

    #[test]
    #[should_panic(expected = "accuracy must be finite")]
    fn fix_rejects_nan_accuracy() {
        let _ = LocationFix::new(GeoPoint::PARIS, f64::NAN, LocationProvider::Gps);
    }

    #[test]
    fn fix_display_is_informative() {
        let fix = LocationFix::new(GeoPoint::new(48.85, 2.35), 25.0, LocationProvider::Gps);
        let s = fix.to_string();
        assert!(s.contains("gps"));
        assert!(s.contains("25"));
    }

    #[test]
    fn fix_serde_round_trip() {
        let fix = LocationFix::new(GeoPoint::PARIS, 42.0, LocationProvider::Fused);
        let json = serde_json::to_string(&fix).unwrap();
        let back: LocationFix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fix);
    }
}
