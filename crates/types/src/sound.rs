//! Sound pressure levels.
//!
//! SoundCity measures A-weighted sound pressure levels (SPL, in dB(A)) with
//! the phone microphone. Levels are logarithmic: combining two sources adds
//! their *energies*, not their decibel values, so [`SoundLevel`] provides
//! energy-domain combination helpers used by the noise model and the
//! assimilation engine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// An A-weighted sound pressure level in dB(A).
///
/// # Examples
///
/// Two equal sources are 3 dB louder than one:
///
/// ```
/// use mps_types::SoundLevel;
///
/// let one = SoundLevel::new(60.0);
/// let two = SoundLevel::combine([one, one]);
/// assert!((two.db() - 63.0103).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SoundLevel(f64);

impl SoundLevel {
    /// The practical silence floor used by the models (quietest anechoic
    /// environments; phone microphones bottom out well above this).
    pub const SILENCE: SoundLevel = SoundLevel(0.0);

    /// Creates a level from a dB(A) value.
    ///
    /// # Panics
    ///
    /// Panics if `db` is not finite.
    pub fn new(db: f64) -> Self {
        assert!(db.is_finite(), "sound level must be finite, got {db}");
        Self(db)
    }

    /// The level in dB(A).
    pub const fn db(self) -> f64 {
        self.0
    }

    /// The relative acoustic energy `10^(dB/10)` of the level.
    pub fn energy(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a level from a relative acoustic energy.
    ///
    /// Energies at or below zero map to [`SoundLevel::SILENCE`] (0 dB) to
    /// keep the function total.
    pub fn from_energy(energy: f64) -> Self {
        if energy <= 0.0 || !energy.is_finite() {
            SoundLevel::SILENCE
        } else {
            SoundLevel(10.0 * energy.log10())
        }
    }

    /// Combines several sources by energy summation (the physically correct
    /// way to add incoherent noise sources).
    pub fn combine(levels: impl IntoIterator<Item = SoundLevel>) -> Self {
        let total: f64 = levels.into_iter().map(SoundLevel::energy).sum();
        SoundLevel::from_energy(total)
    }

    /// Energy-weighted equivalent continuous level (`Leq`) of a set of
    /// samples — the paper's quantified-self statistics report daily `Leq`.
    ///
    /// Returns [`SoundLevel::SILENCE`] for an empty input.
    pub fn leq(levels: &[SoundLevel]) -> Self {
        if levels.is_empty() {
            return SoundLevel::SILENCE;
        }
        let mean_energy = levels.iter().map(|l| l.energy()).sum::<f64>() / levels.len() as f64;
        SoundLevel::from_energy(mean_energy)
    }

    /// Clamps the level into `[min, max]` dB(A) — used to model microphone
    /// saturation and noise floors.
    pub fn clamp(self, min: f64, max: f64) -> Self {
        SoundLevel(self.0.clamp(min, max))
    }
}

impl From<f64> for SoundLevel {
    fn from(db: f64) -> Self {
        SoundLevel::new(db)
    }
}

impl From<SoundLevel> for f64 {
    fn from(level: SoundLevel) -> f64 {
        level.0
    }
}

/// Shifts the level by a dB offset (calibration bias, attenuation).
impl Add<f64> for SoundLevel {
    type Output = SoundLevel;
    fn add(self, offset_db: f64) -> SoundLevel {
        SoundLevel(self.0 + offset_db)
    }
}

/// Shifts the level down by a dB offset.
impl Sub<f64> for SoundLevel {
    type Output = SoundLevel;
    fn sub(self, offset_db: f64) -> SoundLevel {
        SoundLevel(self.0 - offset_db)
    }
}

impl fmt::Display for SoundLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB(A)", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_round_trips() {
        for db in [0.0, 30.0, 55.5, 90.0] {
            let level = SoundLevel::new(db);
            let back = SoundLevel::from_energy(level.energy());
            assert!((back.db() - db).abs() < 1e-9, "{db}");
        }
    }

    #[test]
    fn doubling_adds_three_db() {
        let one = SoundLevel::new(70.0);
        let two = SoundLevel::combine([one, one]);
        assert!((two.db() - 73.0103).abs() < 1e-3);
    }

    #[test]
    fn combine_is_dominated_by_loudest() {
        let loud = SoundLevel::new(80.0);
        let quiet = SoundLevel::new(40.0);
        let both = SoundLevel::combine([loud, quiet]);
        assert!((both.db() - 80.0).abs() < 0.01);
    }

    #[test]
    fn combine_empty_is_silence() {
        assert_eq!(SoundLevel::combine([]), SoundLevel::SILENCE);
    }

    #[test]
    fn leq_of_constant_signal_is_that_level() {
        let samples = vec![SoundLevel::new(65.0); 10];
        assert!((SoundLevel::leq(&samples).db() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn leq_is_above_arithmetic_mean_for_varying_signal() {
        let samples = vec![SoundLevel::new(40.0), SoundLevel::new(80.0)];
        let leq = SoundLevel::leq(&samples).db();
        assert!(leq > 60.0, "Leq {leq} should exceed the dB mean");
        assert!((leq - 77.0).abs() < 0.2, "Leq {leq} ≈ 77");
    }

    #[test]
    fn leq_empty_is_silence() {
        assert_eq!(SoundLevel::leq(&[]), SoundLevel::SILENCE);
    }

    #[test]
    fn from_energy_handles_degenerate_inputs() {
        assert_eq!(SoundLevel::from_energy(0.0), SoundLevel::SILENCE);
        assert_eq!(SoundLevel::from_energy(-5.0), SoundLevel::SILENCE);
        assert_eq!(SoundLevel::from_energy(f64::INFINITY), SoundLevel::SILENCE);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn new_rejects_nan() {
        let _ = SoundLevel::new(f64::NAN);
    }

    #[test]
    fn offsets_shift_db() {
        let l = SoundLevel::new(50.0);
        assert_eq!((l + 4.5).db(), 54.5);
        assert_eq!((l - 10.0).db(), 40.0);
    }

    #[test]
    fn clamp_models_saturation() {
        assert_eq!(SoundLevel::new(120.0).clamp(20.0, 100.0).db(), 100.0);
        assert_eq!(SoundLevel::new(5.0).clamp(20.0, 100.0).db(), 20.0);
    }

    #[test]
    fn display_one_decimal() {
        assert_eq!(SoundLevel::new(55.04).to_string(), "55.0 dB(A)");
    }
}
