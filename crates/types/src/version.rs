//! Application release versions.
//!
//! Over the 10-month experiment three versions of the MPS app were released
//! (Section 5.3): v1.1 (July 2015, no buffering), v1.2.9 (November 2015, no
//! buffering but optimised RabbitMQ usage), and v1.3 (April 2016, buffering
//! of 10 measurements per transfer). Figure 17 compares their
//! transmission-delay distributions.

use crate::error::ParseEnumError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A released version of the SoundCity app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppVersion {
    /// v1.1 (July 2015): sends each observation as soon as it is captured;
    /// opens a fresh broker channel per send.
    V1_1,
    /// v1.2.9 (November 2015): still unbuffered, but with optimised use of
    /// RabbitMQ (persistent channel, cheaper publishes).
    V1_2_9,
    /// v1.3 (April 2016): buffers a series of 10 measurements before
    /// sending them in one transfer (energy-delay tradeoff).
    V1_3,
}

impl AppVersion {
    /// All released versions, oldest first.
    pub const ALL: [AppVersion; 3] = [AppVersion::V1_1, AppVersion::V1_2_9, AppVersion::V1_3];

    /// The version string as released (`"1.1"`, `"1.2.9"`, `"1.3"`).
    pub fn name(self) -> &'static str {
        match self {
            AppVersion::V1_1 => "1.1",
            AppVersion::V1_2_9 => "1.2.9",
            AppVersion::V1_3 => "1.3",
        }
    }

    /// Number of measurements buffered before a transfer: 1 for the
    /// unbuffered versions, 10 for v1.3 (the paper's default).
    pub fn buffer_size(self) -> usize {
        match self {
            AppVersion::V1_1 | AppVersion::V1_2_9 => 1,
            AppVersion::V1_3 => 10,
        }
    }

    /// Whether this version buffers observations before sending.
    pub fn is_buffering(self) -> bool {
        self.buffer_size() > 1
    }

    /// Month index (30-day months since launch) at which the version was
    /// rolled out: v1.1 at launch, v1.2.9 in month 4 (November 2015),
    /// v1.3 in month 9 (April 2016).
    pub fn rollout_month(self) -> i64 {
        match self {
            AppVersion::V1_1 => 0,
            AppVersion::V1_2_9 => 4,
            AppVersion::V1_3 => 9,
        }
    }

    /// The version active during a given deployment month.
    pub fn active_in_month(month: i64) -> AppVersion {
        let mut active = AppVersion::V1_1;
        for v in AppVersion::ALL {
            if v.rollout_month() <= month {
                active = v;
            }
        }
        active
    }
}

impl fmt::Display for AppVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.name())
    }
}

impl FromStr for AppVersion {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim_start_matches('v') {
            "1.1" => Ok(AppVersion::V1_1),
            "1.2.9" => Ok(AppVersion::V1_2_9),
            "1.3" => Ok(AppVersion::V1_3),
            _ => Err(ParseEnumError::new("AppVersion", s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_matches_paper() {
        assert!(!AppVersion::V1_1.is_buffering());
        assert!(!AppVersion::V1_2_9.is_buffering());
        assert!(AppVersion::V1_3.is_buffering());
        assert_eq!(AppVersion::V1_3.buffer_size(), 10);
    }

    #[test]
    fn rollout_schedule() {
        assert_eq!(AppVersion::active_in_month(0), AppVersion::V1_1);
        assert_eq!(AppVersion::active_in_month(3), AppVersion::V1_1);
        assert_eq!(AppVersion::active_in_month(4), AppVersion::V1_2_9);
        assert_eq!(AppVersion::active_in_month(8), AppVersion::V1_2_9);
        assert_eq!(AppVersion::active_in_month(9), AppVersion::V1_3);
        assert_eq!(AppVersion::active_in_month(20), AppVersion::V1_3);
    }

    #[test]
    fn versions_are_ordered_oldest_first() {
        assert!(AppVersion::V1_1 < AppVersion::V1_2_9);
        assert!(AppVersion::V1_2_9 < AppVersion::V1_3);
    }

    #[test]
    fn parse_accepts_with_and_without_v() {
        assert_eq!("1.2.9".parse::<AppVersion>().unwrap(), AppVersion::V1_2_9);
        assert_eq!("v1.3".parse::<AppVersion>().unwrap(), AppVersion::V1_3);
        assert!("2.0".parse::<AppVersion>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for v in AppVersion::ALL {
            assert_eq!(v.to_string().parse::<AppVersion>().unwrap(), v);
        }
    }
}
