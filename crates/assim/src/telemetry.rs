//! Assimilation-engine handles into the process-wide telemetry registry.
//!
//! Series follow the workspace convention `<crate>_<subsystem>_<metric>`
//! and register lazily in [`Registry::global`] so the analysis passes
//! appear in the pipeline-wide health report next to messaging, ingest
//! and storage.

use mps_telemetry::{Counter, Histogram, Registry};
use std::sync::OnceLock;

/// Shared assimilation metric handles.
pub(crate) struct AssimTelemetry {
    /// BLUE analysis passes that produced a corrected field.
    pub(crate) blue_passes: Counter,
    /// Observations merged into analyses across all BLUE passes.
    pub(crate) blue_observations_merged: Counter,
    /// BLUE passes that ran with observation-space localization.
    pub(crate) blue_localized_passes: Counter,
    /// Per-tile innovation solves across all localized BLUE passes.
    pub(crate) blue_tile_solves: Counter,
    /// Wall-clock duration of one BLUE pass, in seconds.
    pub(crate) blue_pass_seconds: Histogram,
    /// Diurnal (hourly or static) assimilation runs.
    pub(crate) hourly_runs: Counter,
    /// Wall-clock duration of one diurnal run, in seconds.
    pub(crate) hourly_run_seconds: Histogram,
}

/// The lazily-registered assimilation metric set.
pub(crate) fn telemetry() -> &'static AssimTelemetry {
    static TELEMETRY: OnceLock<AssimTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        AssimTelemetry {
            blue_passes: registry.counter(
                "assim_blue_passes_total",
                "BLUE analysis passes that produced a corrected field",
            ),
            blue_observations_merged: registry.counter(
                "assim_blue_observations_merged_total",
                "Observations merged into analyses across all BLUE passes",
            ),
            blue_localized_passes: registry.counter(
                "assim_blue_localized_passes_total",
                "BLUE passes that ran with observation-space localization",
            ),
            blue_tile_solves: registry.counter(
                "assim_blue_tile_solves_total",
                "Per-tile innovation solves across localized BLUE passes",
            ),
            blue_pass_seconds: registry.histogram(
                "assim_blue_pass_seconds",
                "Wall-clock duration of one BLUE analysis pass (s)",
                &Histogram::exponential_buckets(1e-5, 10.0, 8),
            ),
            hourly_runs: registry.counter(
                "assim_hourly_runs_total",
                "Diurnal (hourly or static) assimilation runs",
            ),
            hourly_run_seconds: registry.histogram(
                "assim_hourly_run_seconds",
                "Wall-clock duration of one diurnal assimilation run (s)",
                &Histogram::exponential_buckets(1e-4, 10.0, 8),
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_assim_names() {
        let t = telemetry();
        t.blue_passes.add(0);
        let names = Registry::global().names();
        for name in [
            "assim_blue_passes_total",
            "assim_blue_observations_merged_total",
            "assim_blue_localized_passes_total",
            "assim_blue_tile_solves_total",
            "assim_blue_pass_seconds",
            "assim_hourly_runs_total",
            "assim_hourly_run_seconds",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }
}
