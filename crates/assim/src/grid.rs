//! The analysis grid: a regular lat/lon field.

use crate::AssimError;
use mps_types::{GeoBounds, GeoPoint};

/// A regular `nx × ny` field of `f64` values over a bounding box —
/// the state vector of the assimilation and the product of the noise
/// simulator (values are dB(A) there, but the grid is unit-agnostic).
///
/// Cells are indexed column-major by `(ix, iy)` with `ix` increasing
/// eastward and `iy` northward; cell centres are evenly spaced with a
/// half-cell inset from the bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    bounds: GeoBounds,
    nx: usize,
    ny: usize,
    values: Vec<f64>,
}

impl Grid {
    /// Creates a grid filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn constant(bounds: GeoBounds, nx: usize, ny: usize, value: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Self {
            bounds,
            nx,
            ny,
            values: vec![value; nx * ny],
        }
    }

    /// Creates a grid by evaluating `f` at every cell centre.
    pub fn from_fn(
        bounds: GeoBounds,
        nx: usize,
        ny: usize,
        mut f: impl FnMut(GeoPoint) -> f64,
    ) -> Self {
        let mut grid = Self::constant(bounds, nx, ny, 0.0);
        for iy in 0..ny {
            for ix in 0..nx {
                let p = grid.cell_center(ix, iy);
                grid.values[iy * nx + ix] = f(p);
            }
        }
        grid
    }

    /// The grid's bounding box.
    pub fn bounds(&self) -> GeoBounds {
        self.bounds
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid has no cells (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values, row `iy = 0` first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of range"
        );
        self.values[iy * self.nx + ix]
    }

    /// Sets the value at cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, ix: usize, iy: usize, value: f64) {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of range"
        );
        self.values[iy * self.nx + ix] = value;
    }

    /// Centre of cell `(ix, iy)`.
    pub fn cell_center(&self, ix: usize, iy: usize) -> GeoPoint {
        let u = (ix as f64 + 0.5) / self.nx as f64;
        let v = (iy as f64 + 0.5) / self.ny as f64;
        self.bounds.lerp(u, v)
    }

    /// Fractional grid coordinates of a point (cell units, origin at the
    /// centre of cell `(0, 0)`), or `None` outside the bounds.
    fn frac_coords(&self, point: GeoPoint) -> Option<(f64, f64)> {
        if !self.bounds.contains(point) {
            return None;
        }
        let u = (point.lon - self.bounds.lon_min) / (self.bounds.lon_max - self.bounds.lon_min);
        let v = (point.lat - self.bounds.lat_min) / (self.bounds.lat_max - self.bounds.lat_min);
        Some((u * self.nx as f64 - 0.5, v * self.ny as f64 - 0.5))
    }

    /// Bilinear sample of the field at `point`, or `None` outside the
    /// bounds. Points in the half-cell margin clamp to the edge cells.
    pub fn sample(&self, point: GeoPoint) -> Option<f64> {
        let (fx, fy) = self.frac_coords(point)?;
        let fx = fx.clamp(0.0, (self.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.ny - 1) as f64);
        let ix = fx.floor() as usize;
        let iy = fy.floor() as usize;
        let ix1 = (ix + 1).min(self.nx - 1);
        let iy1 = (iy + 1).min(self.ny - 1);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v00 = self.at(ix, iy);
        let v10 = self.at(ix1, iy);
        let v01 = self.at(ix, iy1);
        let v11 = self.at(ix1, iy1);
        Some(
            v00 * (1.0 - tx) * (1.0 - ty)
                + v10 * tx * (1.0 - ty)
                + v01 * (1.0 - tx) * ty
                + v11 * tx * ty,
        )
    }

    /// The bilinear interpolation weights of `point` as `(cell_index,
    /// weight)` pairs (up to 4, weights sum to 1) — the observation
    /// operator's row.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::ObservationOutsideGrid`] for points outside
    /// the bounds.
    pub fn interp_weights(&self, point: GeoPoint) -> Result<Vec<(usize, f64)>, AssimError> {
        let (fx, fy) = self
            .frac_coords(point)
            .ok_or(AssimError::ObservationOutsideGrid {
                lat: point.lat,
                lon: point.lon,
            })?;
        let fx = fx.clamp(0.0, (self.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.ny - 1) as f64);
        let ix = fx.floor() as usize;
        let iy = fy.floor() as usize;
        let ix1 = (ix + 1).min(self.nx - 1);
        let iy1 = (iy + 1).min(self.ny - 1);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let mut weights = vec![
            (iy * self.nx + ix, (1.0 - tx) * (1.0 - ty)),
            (iy * self.nx + ix1, tx * (1.0 - ty)),
            (iy1 * self.nx + ix, (1.0 - tx) * ty),
            (iy1 * self.nx + ix1, tx * ty),
        ];
        // Merge duplicate cells at the grid edge.
        weights.sort_by_key(|(i, _)| *i);
        weights.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        weights.retain(|(_, w)| *w > 0.0);
        Ok(weights)
    }

    /// Root-mean-square difference against another grid of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn rmse(&self, other: &Grid) -> f64 {
        assert_eq!(
            (self.nx, self.ny),
            (other.nx, other.ny),
            "grid shapes differ"
        );
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        (sum / self.values.len() as f64).sqrt()
    }

    /// Mean of the field.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> GeoBounds {
        GeoBounds::new(48.0, 49.0, 2.0, 3.0)
    }

    #[test]
    fn constant_grid_samples_constant() {
        let g = Grid::constant(bounds(), 8, 8, 42.0);
        assert_eq!(g.len(), 64);
        assert_eq!(g.sample(GeoPoint::new(48.5, 2.5)), Some(42.0));
        assert_eq!(g.mean(), 42.0);
    }

    #[test]
    fn sample_outside_is_none() {
        let g = Grid::constant(bounds(), 4, 4, 1.0);
        assert_eq!(g.sample(GeoPoint::new(50.0, 2.5)), None);
        assert_eq!(g.sample(GeoPoint::new(48.5, 1.0)), None);
    }

    #[test]
    fn from_fn_evaluates_cell_centers() {
        let g = Grid::from_fn(bounds(), 4, 4, |p| p.lat);
        // Cell (0, 0) centre latitude: 48 + 1/8.
        assert!((g.at(0, 0) - 48.125).abs() < 1e-12);
        assert!((g.at(0, 3) - 48.875).abs() < 1e-12);
    }

    #[test]
    fn bilinear_interpolates_linear_field_exactly() {
        let g = Grid::from_fn(bounds(), 16, 16, |p| 10.0 * p.lon + 3.0 * p.lat);
        // Any interior point must reproduce the linear function.
        let p = GeoPoint::new(48.43, 2.61);
        let expected = 10.0 * p.lon + 3.0 * p.lat;
        let sampled = g.sample(p).unwrap();
        assert!((sampled - expected).abs() < 1e-9, "{sampled} vs {expected}");
    }

    #[test]
    fn sample_at_cell_center_is_cell_value() {
        let mut g = Grid::constant(bounds(), 5, 5, 0.0);
        g.set(2, 3, 7.0);
        let c = g.cell_center(2, 3);
        assert!((g.sample(c).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn interp_weights_sum_to_one() {
        let g = Grid::constant(bounds(), 6, 7, 0.0);
        for p in [
            GeoPoint::new(48.01, 2.01), // margin corner
            GeoPoint::new(48.5, 2.5),
            GeoPoint::new(48.99, 2.99),
        ] {
            let w = g.interp_weights(p).unwrap();
            let total: f64 = w.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{p}: {total}");
            assert!(w.len() <= 4 && !w.is_empty());
            assert!(w.iter().all(|(i, _)| *i < g.len()));
        }
    }

    #[test]
    fn interp_weights_outside_errors() {
        let g = Grid::constant(bounds(), 4, 4, 0.0);
        assert!(matches!(
            g.interp_weights(GeoPoint::new(0.0, 0.0)),
            Err(AssimError::ObservationOutsideGrid { .. })
        ));
    }

    #[test]
    fn rmse_of_shifted_grid() {
        let a = Grid::constant(bounds(), 3, 3, 1.0);
        let b = Grid::constant(bounds(), 3, 3, 4.0);
        assert_eq!(a.rmse(&b), 3.0);
        assert_eq!(a.rmse(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn rmse_rejects_mismatched_shapes() {
        let a = Grid::constant(bounds(), 3, 3, 1.0);
        let b = Grid::constant(bounds(), 4, 3, 1.0);
        let _ = a.rmse(&b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _ = Grid::constant(bounds(), 0, 3, 1.0);
    }

    #[test]
    fn values_mut_roundtrip() {
        let mut g = Grid::constant(bounds(), 2, 2, 0.0);
        g.values_mut()[3] = 9.0;
        assert_eq!(g.at(1, 1), 9.0);
        assert_eq!(g.values()[3], 9.0);
        assert!(!g.is_empty());
        assert_eq!((g.nx(), g.ny()), (2, 2));
        assert_eq!(g.bounds(), bounds());
    }
}
