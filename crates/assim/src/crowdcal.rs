//! Crowd-calibration: calibrating devices against each other.
//!
//! The paper's future work (Section 8): "We expect crowd-sensing to be
//! accompanied with crowd-calibration which calibrates individual devices
//! based on each other's devices." This module implements that idea: with
//! no reference sound-level meter at all, alternate between (a) building
//! a consensus field from bias-corrected observations via BLUE and
//! (b) re-estimating each device's bias as its mean residual against the
//! consensus. Biases are identifiable only up to a global constant, so
//! the crowd mean is anchored at zero (or at the mean of a trusted
//! subset, when one exists).

use crate::blue::{Blue, PointObservation};
use crate::grid::Grid;
use crate::AssimError;
use mps_types::{DeviceId, GeoPoint};
use std::collections::BTreeMap;

/// One crowd observation for calibration: who measured what, where.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdObservation {
    /// The measuring device.
    pub device: DeviceId,
    /// Where the measurement was taken.
    pub at: GeoPoint,
    /// Raw measured level, dB(A).
    pub measured_db: f64,
}

/// Result of a crowd-calibration run.
#[derive(Debug, Clone)]
pub struct CrowdCalibration {
    /// Estimated per-device biases (zero-mean over the crowd), dB.
    pub device_bias_db: BTreeMap<DeviceId, f64>,
    /// The final consensus field.
    pub consensus: Grid,
    /// RMS residual of corrected observations against the consensus
    /// after each iteration (diagnostic; should be non-increasing).
    pub residual_rms_db: Vec<f64>,
}

impl CrowdCalibration {
    /// The estimated bias of one device, if it contributed.
    pub fn bias_of(&self, device: DeviceId) -> Option<f64> {
        self.device_bias_db.get(&device).copied()
    }
}

/// The crowd-calibration solver.
#[derive(Debug, Clone, Copy)]
pub struct CrowdCalibrator {
    /// Alternating iterations (2–4 suffice in practice).
    pub iterations: usize,
    /// Background-error std of the consensus BLUE step, dB.
    pub sigma_b_db: f64,
    /// Balgovind correlation radius of the consensus step, metres.
    pub radius_m: f64,
    /// Observation-error std assumed during consensus building, dB.
    pub sigma_o_db: f64,
}

impl Default for CrowdCalibrator {
    fn default() -> Self {
        Self {
            iterations: 3,
            sigma_b_db: 4.0,
            radius_m: 1_000.0,
            sigma_o_db: 3.0,
        }
    }
}

impl CrowdCalibrator {
    /// Runs the alternating estimation against a prior `background` field.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::NoObservations`] for an empty input, and
    /// propagates BLUE errors (observations outside the grid, singular
    /// covariance).
    pub fn calibrate(
        &self,
        background: &Grid,
        observations: &[CrowdObservation],
    ) -> Result<CrowdCalibration, AssimError> {
        if observations.is_empty() {
            return Err(AssimError::NoObservations);
        }
        let blue = Blue::new(self.sigma_b_db, self.radius_m);
        let mut bias: BTreeMap<DeviceId, f64> = BTreeMap::new();
        for obs in observations {
            bias.entry(obs.device).or_insert(0.0);
        }
        let mut consensus = background.clone();
        let mut residual_rms = Vec::with_capacity(self.iterations);

        for _ in 0..self.iterations {
            // (a) consensus from corrected observations.
            let corrected: Vec<PointObservation> = observations
                .iter()
                .map(|o| {
                    PointObservation::new(o.at, o.measured_db - bias[&o.device], self.sigma_o_db)
                })
                .collect();
            consensus = blue.analyse(background, &corrected)?;

            // (b) per-device bias = mean residual against the consensus.
            let mut sums: BTreeMap<DeviceId, (f64, usize)> = BTreeMap::new();
            for o in observations {
                if let Some(level) = consensus.sample(o.at) {
                    let entry = sums.entry(o.device).or_insert((0.0, 0));
                    entry.0 += o.measured_db - level;
                    entry.1 += 1;
                }
            }
            for (device, (sum, n)) in &sums {
                if *n > 0 {
                    bias.insert(*device, sum / *n as f64);
                }
            }
            // Anchor: zero-mean biases over the crowd (the absolute level
            // is not identifiable without a reference sensor).
            let mean: f64 = bias.values().sum::<f64>() / bias.len() as f64;
            for b in bias.values_mut() {
                *b -= mean;
            }

            // Diagnostic residual RMS.
            let mut rms = 0.0;
            let mut count = 0usize;
            for o in observations {
                if let Some(level) = consensus.sample(o.at) {
                    let r = o.measured_db - bias[&o.device] - level;
                    rms += r * r;
                    count += 1;
                }
            }
            residual_rms.push(if count > 0 {
                (rms / count as f64).sqrt()
            } else {
                0.0
            });
        }

        Ok(CrowdCalibration {
            device_bias_db: bias,
            consensus,
            residual_rms_db: residual_rms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_simcore::SimRng;
    use mps_types::GeoBounds;

    fn bounds() -> GeoBounds {
        GeoBounds::paris()
    }

    /// Synthesize a crowd measuring a known truth field with known
    /// per-device biases.
    fn synthesize(
        true_biases: &[f64],
        obs_per_device: usize,
        seed: u64,
    ) -> (Grid, Vec<CrowdObservation>) {
        let truth = Grid::from_fn(bounds(), 20, 20, |p| {
            52.0 + 60.0 * (p.lon - 2.347) + 40.0 * (p.lat - 48.858)
        });
        let mut rng = SimRng::new(seed);
        let mut observations = Vec::new();
        for (d, bias) in true_biases.iter().enumerate() {
            for _ in 0..obs_per_device {
                let at = bounds().lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
                let level = truth.sample(at).unwrap() + bias + rng.normal(0.0, 1.0);
                observations.push(CrowdObservation {
                    device: DeviceId::new(d as u64),
                    at,
                    measured_db: level,
                });
            }
        }
        (truth, observations)
    }

    #[test]
    fn recovers_relative_biases_without_reference() {
        let true_biases = [4.0, -3.0, 0.5, -1.5]; // zero-mean
        let (truth, observations) = synthesize(&true_biases, 60, 3);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator::default()
            .calibrate(&background, &observations)
            .unwrap();
        for (d, expected) in true_biases.iter().enumerate() {
            let estimated = result.bias_of(DeviceId::new(d as u64)).unwrap();
            assert!(
                (estimated - expected).abs() < 0.8,
                "device {d}: estimated {estimated}, true {expected}"
            );
        }
    }

    #[test]
    fn nonzero_mean_biases_recover_up_to_constant() {
        // All biases shifted by +5: the crowd cannot see the shift, but
        // relative structure must survive.
        let true_biases = [9.0, 2.0, 5.5, 3.5]; // mean 5
        let (truth, observations) = synthesize(&true_biases, 60, 7);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator::default()
            .calibrate(&background, &observations)
            .unwrap();
        for (d, expected) in true_biases.iter().enumerate() {
            let estimated = result.bias_of(DeviceId::new(d as u64)).unwrap();
            assert!(
                (estimated - (expected - 5.0)).abs() < 0.8,
                "device {d}: estimated {estimated}, true-centred {}",
                expected - 5.0
            );
        }
    }

    #[test]
    fn residuals_shrink_across_iterations() {
        let (truth, observations) = synthesize(&[6.0, -6.0, 2.0, -2.0], 50, 11);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator {
            iterations: 4,
            ..CrowdCalibrator::default()
        }
        .calibrate(&background, &observations)
        .unwrap();
        assert_eq!(result.residual_rms_db.len(), 4);
        let first = result.residual_rms_db[0];
        let last = *result.residual_rms_db.last().unwrap();
        assert!(last <= first + 1e-9, "residuals {first} -> {last}");
    }

    #[test]
    fn consensus_beats_background() {
        let (truth, observations) = synthesize(&[3.0, -3.0], 80, 13);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator::default()
            .calibrate(&background, &observations)
            .unwrap();
        assert!(
            result.consensus.rmse(&truth) < background.rmse(&truth),
            "consensus {} vs background {}",
            result.consensus.rmse(&truth),
            background.rmse(&truth)
        );
    }

    #[test]
    fn unbiased_crowd_estimates_near_zero() {
        let (truth, observations) = synthesize(&[0.0, 0.0, 0.0], 40, 17);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator::default()
            .calibrate(&background, &observations)
            .unwrap();
        for bias in result.device_bias_db.values() {
            assert!(bias.abs() < 0.6, "spurious bias {bias}");
        }
    }

    #[test]
    fn empty_input_errors() {
        let background = Grid::constant(bounds(), 4, 4, 50.0);
        assert_eq!(
            CrowdCalibrator::default()
                .calibrate(&background, &[])
                .unwrap_err(),
            AssimError::NoObservations
        );
    }

    #[test]
    fn biases_are_zero_mean() {
        let (truth, observations) = synthesize(&[2.0, -5.0, 7.0], 50, 19);
        let background = Grid::constant(bounds(), 20, 20, truth.mean());
        let result = CrowdCalibrator::default()
            .calibrate(&background, &observations)
            .unwrap();
        let mean: f64 =
            result.device_bias_db.values().sum::<f64>() / result.device_bias_db.len() as f64;
        assert!(mean.abs() < 1e-9, "anchor violated: mean {mean}");
    }
}
