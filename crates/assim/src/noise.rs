//! The forward noise model: city sources → noise map.
//!
//! Sources emit at a reference level (dB(A) at 10 m) and attenuate
//! geometrically with distance: point sources (venues) lose
//! `20·log10(d/d₀)` dB, line sources (roads, approximately cylindrical
//! spreading) lose `10·log10(d/d₀)`. Contributions combine by energy
//! summation over a quiet ambient floor. Hourly modulation follows the
//! urban activity cycle (traffic and nightlife quiet down overnight).

use crate::city::CityModel;
use crate::grid::Grid;
use mps_types::{GeoPoint, SoundLevel};

/// Reference distance of source emission levels, metres.
const REF_DISTANCE_M: f64 = 10.0;
/// Sources closer than this are clamped (a listener is never *inside*
/// the source).
const MIN_DISTANCE_M: f64 = 3.0;
/// Quiet ambient floor far from every source, dB(A).
const AMBIENT_DB: f64 = 30.0;

/// Computes noise levels for a [`CityModel`].
#[derive(Debug, Clone)]
pub struct NoiseSimulator {
    city: CityModel,
}

impl NoiseSimulator {
    /// Creates a simulator over a city.
    pub fn new(city: CityModel) -> Self {
        Self { city }
    }

    /// The simulated city.
    pub fn city(&self) -> &CityModel {
        &self.city
    }

    /// Hourly source-activity modulation in dB (0 at the day reference,
    /// strongly negative at night for traffic).
    pub fn hourly_modulation_db(hour: u32) -> f64 {
        match hour {
            0..=4 => -12.0,
            5 => -8.0,
            6 => -4.0,
            7..=9 => 0.0,
            10..=17 => -1.0,
            18..=21 => 0.0,
            22 => -4.0,
            _ => -8.0,
        }
    }

    /// The noise level at a point for the day-reference hour (8:00).
    pub fn level_at(&self, p: GeoPoint) -> SoundLevel {
        self.level_at_hour(p, 8)
    }

    /// The noise level at a point at a given hour of day.
    pub fn level_at_hour(&self, p: GeoPoint, hour: u32) -> SoundLevel {
        let modulation = Self::hourly_modulation_db(hour);
        let mut contributions = vec![SoundLevel::new(AMBIENT_DB)];
        for road in self.city.roads() {
            let d = road.distance_m(p).max(MIN_DISTANCE_M);
            // Cylindrical spreading for line sources.
            let level = road.emission_db + modulation - 10.0 * (d / REF_DISTANCE_M).log10();
            if level > 0.0 {
                contributions.push(SoundLevel::new(level));
            }
        }
        for venue in self.city.venues() {
            let d = venue.at.distance_m(p).max(MIN_DISTANCE_M);
            // Spherical spreading for point sources.
            let level = venue.emission_db + modulation - 20.0 * (d / REF_DISTANCE_M).log10();
            if level > 0.0 {
                contributions.push(SoundLevel::new(level));
            }
        }
        SoundLevel::combine(contributions)
    }

    /// Computes the full noise map on an `nx × ny` grid at the
    /// day-reference hour.
    pub fn simulate(&self, nx: usize, ny: usize) -> Grid {
        self.simulate_at_hour(nx, ny, 8)
    }

    /// Computes the full noise map at a given hour.
    pub fn simulate_at_hour(&self, nx: usize, ny: usize, hour: u32) -> Grid {
        Grid::from_fn(self.city.bounds(), nx, ny, |p| {
            self.level_at_hour(p, hour).db()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{Road, Venue};
    use mps_simcore::SimRng;
    use mps_types::GeoBounds;

    fn bounds() -> GeoBounds {
        GeoBounds::new(48.80, 48.90, 2.30, 2.40)
    }

    fn one_venue_city() -> CityModel {
        CityModel::new(
            bounds(),
            vec![],
            vec![Venue {
                at: GeoPoint::new(48.85, 2.35),
                emission_db: 80.0,
            }],
        )
    }

    #[test]
    fn noise_decays_with_distance() {
        let sim = NoiseSimulator::new(one_venue_city());
        let near = sim.level_at(GeoPoint::new(48.8502, 2.35)); // ~22 m
        let far = sim.level_at(GeoPoint::new(48.86, 2.35)); // ~1.1 km
        assert!(near.db() > far.db() + 20.0, "near {near}, far {far}");
    }

    #[test]
    fn point_source_follows_inverse_square_law() {
        let sim = NoiseSimulator::new(one_venue_city());
        // At 100 m, an 80 dB @ 10 m source gives 80 - 20 = 60 dB
        // (ambient adds a negligible fraction).
        let p = GeoPoint::from_local_xy(GeoPoint::new(48.85, 2.35), 100.0, 0.0);
        let level = sim.level_at(p).db();
        assert!((level - 60.0).abs() < 0.5, "{level}");
    }

    #[test]
    fn line_source_decays_slower() {
        let road_city = CityModel::new(
            bounds(),
            vec![Road {
                a: GeoPoint::new(48.85, 2.30),
                b: GeoPoint::new(48.85, 2.40),
                emission_db: 80.0,
            }],
            vec![],
        );
        let sim = NoiseSimulator::new(road_city);
        let origin = GeoPoint::new(48.85, 2.35);
        let at_100 = sim
            .level_at(GeoPoint::from_local_xy(origin, 0.0, 100.0))
            .db();
        let at_1000 = sim
            .level_at(GeoPoint::from_local_xy(origin, 0.0, 1000.0))
            .db();
        // Cylindrical: 10 dB per decade (plus a whisker of ambient).
        assert!(
            (at_100 - at_1000 - 10.0).abs() < 1.0,
            "{at_100} vs {at_1000}"
        );
    }

    #[test]
    fn far_field_approaches_ambient() {
        let sim = NoiseSimulator::new(CityModel::new(bounds(), vec![], vec![]));
        let level = sim.level_at(GeoPoint::new(48.85, 2.35));
        assert!((level.db() - AMBIENT_DB).abs() < 1e-9);
    }

    #[test]
    fn night_is_quieter_than_day() {
        let mut rng = SimRng::new(3);
        let city = CityModel::synthetic(bounds(), 4, 30, &mut rng);
        let sim = NoiseSimulator::new(city);
        let p = GeoPoint::new(48.85, 2.35);
        let day = sim.level_at_hour(p, 18).db();
        let night = sim.level_at_hour(p, 3).db();
        assert!(day > night + 6.0, "day {day}, night {night}");
    }

    #[test]
    fn map_is_louder_near_sources() {
        let sim = NoiseSimulator::new(one_venue_city());
        let map = sim.simulate(20, 20);
        // The loudest cell should be the one containing the venue.
        let venue = GeoPoint::new(48.85, 2.35);
        let at_venue = map.sample(venue).unwrap();
        let corner = map.at(0, 0);
        assert!(
            at_venue > corner + 15.0,
            "venue {at_venue}, corner {corner}"
        );
    }

    #[test]
    fn synthetic_map_has_dynamic_range() {
        let mut rng = SimRng::new(4);
        let city = CityModel::synthetic(GeoBounds::paris(), 5, 50, &mut rng);
        let map = NoiseSimulator::new(city).simulate(32, 32);
        let min = map.values().iter().cloned().fold(f64::INFINITY, f64::min);
        let max = map
            .values()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 10.0, "range {min}..{max} too flat");
        assert!(min >= AMBIENT_DB - 1e-9);
        assert!(max < 100.0, "urban outdoor levels stay under 100 dB");
    }

    #[test]
    fn modulation_covers_every_hour() {
        for hour in 0..24 {
            let m = NoiseSimulator::hourly_modulation_db(hour);
            assert!((-15.0..=0.0).contains(&m), "hour {hour}: {m}");
        }
    }
}
