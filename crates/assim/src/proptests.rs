//! In-crate property tests over assimilation invariants.

use crate::{Blue, Grid, Localization, Matrix, PointObservation};
use mps_types::{GeoBounds, GeoPoint};
use proptest::prelude::*;

fn bounds() -> GeoBounds {
    GeoBounds::paris()
}

proptest! {
    #[test]
    fn covariance_is_bounded_by_variance(sigma in 0.5f64..10.0, radius in 100.0f64..5_000.0,
                                         u in 0.0f64..1.0, v in 0.0f64..1.0) {
        let blue = Blue::new(sigma, radius);
        let a = bounds().center();
        let b = bounds().lerp(u, v);
        let c = blue.covariance(a, b);
        prop_assert!(c >= 0.0);
        prop_assert!(c <= sigma * sigma + 1e-9);
    }

    #[test]
    fn interp_weights_are_convex(nx in 2usize..12, ny in 2usize..12,
                                 u in 0.0f64..=1.0, v in 0.0f64..=1.0) {
        let grid = Grid::constant(bounds(), nx, ny, 0.0);
        let p = bounds().lerp(u.min(0.999), v.min(0.999));
        let weights = grid.interp_weights(p).unwrap();
        let total: f64 = weights.iter().map(|(_, w)| *w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(weights.iter().all(|(i, w)| *i < grid.len() && *w >= 0.0));
    }

    #[test]
    fn bilinear_sample_within_cell_value_range(nx in 2usize..10, ny in 2usize..10,
                                               u in 0.0f64..1.0, v in 0.0f64..1.0,
                                               seed in any::<u64>()) {
        // Fill the grid with deterministic pseudo-random values.
        let mut x = seed | 1;
        let grid = Grid::from_fn(bounds(), nx, ny, |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) % 1000) as f64 / 10.0
        });
        let p = bounds().lerp(u.min(0.999), v.min(0.999));
        if let Some(s) = grid.sample(p) {
            let min = grid.values().iter().cloned().fold(f64::INFINITY, f64::min);
            let max = grid.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s >= min - 1e-9 && s <= max + 1e-9);
        }
    }

    #[test]
    fn analysis_interpolates_between_background_and_observation(
        background_db in 30.0f64..70.0,
        obs_db in 30.0f64..70.0,
        sigma_o in 0.5f64..8.0,
    ) {
        let grid = Grid::constant(bounds(), 12, 12, background_db);
        let blue = Blue::new(4.0, 1_000.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, obs_db, sigma_o)];
        let analysis = blue.analyse(&grid, &obs).unwrap();
        let at = analysis.sample(GeoPoint::PARIS).unwrap();
        let (lo, hi) = if background_db <= obs_db {
            (background_db, obs_db)
        } else {
            (obs_db, background_db)
        };
        prop_assert!(at >= lo - 1e-6 && at <= hi + 1e-6,
                     "analysis {} outside [{}, {}]", at, lo, hi);
    }

    #[test]
    fn stronger_observation_error_weakens_the_pull(sigma1 in 0.5f64..3.0, extra in 1.0f64..8.0) {
        let grid = Grid::constant(bounds(), 10, 10, 50.0);
        let blue = Blue::new(4.0, 1_000.0);
        let pull = |sigma: f64| {
            let obs = vec![PointObservation::new(GeoPoint::PARIS, 60.0, sigma)];
            blue.analyse(&grid, &obs).unwrap().sample(GeoPoint::PARIS).unwrap()
        };
        prop_assert!(pull(sigma1) >= pull(sigma1 + extra) - 1e-9);
    }

    #[test]
    fn blocked_solve_equals_unblocked_reference(
        n in 1usize..60,
        seed in any::<u64>(),
    ) {
        // The blocked Cholesky must agree with the retained unblocked
        // reference on arbitrary well-conditioned SPD systems.
        let mut x = seed | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let m = Matrix::from_fn(n, n, |_, _| next());
        let a = Matrix::from_fn(n, n, |i, j| {
            let dot: f64 = (0..n).map(|k| m.get(i, k) * m.get(j, k)).sum();
            dot + if i == j { 1.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos() * 10.0).collect();
        let reference = a.solve_spd(&b).unwrap();
        let blocked = a.solve_spd_blocked(&b).unwrap();
        for (u, v) in blocked.iter().zip(&reference) {
            prop_assert!((u - v).abs() < 1e-8, "{} vs {}", u, v);
        }
    }

    #[test]
    fn localized_blue_stays_within_tolerance_of_global(
        obs_spec in prop::collection::vec(
            (0.05f64..0.95, 0.05f64..0.95, 40.0f64..70.0, 1.0f64..4.0),
            1..20,
        ),
        radius in 300.0f64..800.0,
        tile in 3usize..10,
    ) {
        // Observation-space localization at the default 8-radii cutoff
        // must stay within 0.1 dB of the global analysis, cell by cell.
        let background = Grid::constant(bounds(), 24, 24, 50.0);
        let blue = Blue::new(4.0, radius);
        let observations: Vec<PointObservation> = obs_spec
            .iter()
            .map(|&(u, v, db, sigma)| {
                PointObservation::new(bounds().lerp(u, v), db, sigma)
            })
            .collect();
        let global = blue.analyse(&background, &observations).unwrap();
        let localization = Localization::for_radius(radius).tile(tile).threads(2);
        let localized = blue
            .analyse_localized(&background, &observations, &localization)
            .unwrap();
        let max_dev = global
            .values()
            .iter()
            .zip(localized.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        prop_assert!(max_dev <= 0.1, "max deviation {} dB", max_dev);
    }
}
