//! Assimilation error types.

use std::error::Error;
use std::fmt;

/// Errors returned by the assimilation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum AssimError {
    /// An observation lies outside the analysis grid.
    ObservationOutsideGrid {
        /// Latitude of the offending observation.
        lat: f64,
        /// Longitude of the offending observation.
        lon: f64,
    },
    /// The innovation covariance matrix was not positive definite (e.g. a
    /// zero observation-error variance on duplicated locations).
    SingularCovariance,
    /// No observations were provided where at least one is required.
    NoObservations,
    /// Grid construction was given non-positive dimensions.
    BadGridShape,
}

impl fmt::Display for AssimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssimError::ObservationOutsideGrid { lat, lon } => {
                write!(f, "observation at ({lat}, {lon}) is outside the grid")
            }
            AssimError::SingularCovariance => {
                write!(f, "innovation covariance is not positive definite")
            }
            AssimError::NoObservations => write!(f, "no observations to assimilate"),
            AssimError::BadGridShape => write!(f, "grid dimensions must be positive"),
        }
    }
}

impl Error for AssimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AssimError::ObservationOutsideGrid { lat: 1.0, lon: 2.0 };
        assert!(e.to_string().contains('1'));
        assert!(!AssimError::SingularCovariance.to_string().is_empty());
        assert!(!AssimError::NoObservations.to_string().is_empty());
        assert!(!AssimError::BadGridShape.to_string().is_empty());
    }
}
