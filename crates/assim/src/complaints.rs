//! Noise-complaint point process (the Figure 4 motivation).
//!
//! Figure 4 overlays San Francisco 311 noise complaints on a simulated
//! noise map and observes a strong correlation — people complain where it
//! is loud. [`ComplaintProcess`] generates complaints with an intensity
//! that grows with the local noise level above an annoyance threshold,
//! and computes the per-cell noise/complaint correlation the figure
//! illustrates.

use crate::grid::Grid;
use mps_simcore::{stats::pearson, SimRng};
use mps_types::GeoPoint;

/// Generates complaint locations from a noise map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplaintProcess {
    /// Noise level below which nobody complains, dB(A).
    pub threshold_db: f64,
    /// Expected complaints per cell per dB above the threshold.
    pub rate_per_db: f64,
}

impl ComplaintProcess {
    /// Creates a process with the given annoyance threshold and rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_db` is negative.
    pub fn new(threshold_db: f64, rate_per_db: f64) -> Self {
        assert!(rate_per_db >= 0.0, "rate must be non-negative");
        Self {
            threshold_db,
            rate_per_db,
        }
    }

    /// Expected complaint count for a cell at `level_db`.
    pub fn intensity(&self, level_db: f64) -> f64 {
        (level_db - self.threshold_db).max(0.0) * self.rate_per_db
    }

    /// Samples complaint locations over a noise map (Poisson per cell,
    /// uniformly placed within the cell).
    pub fn sample(&self, map: &Grid, rng: &mut SimRng) -> Vec<GeoPoint> {
        let mut complaints = Vec::new();
        let bounds = map.bounds();
        for iy in 0..map.ny() {
            for ix in 0..map.nx() {
                let lambda = self.intensity(map.at(ix, iy));
                let count = sample_poisson(lambda, rng);
                for _ in 0..count {
                    // Uniform within the cell.
                    let u = (ix as f64 + rng.uniform()) / map.nx() as f64;
                    let v = (iy as f64 + rng.uniform()) / map.ny() as f64;
                    complaints.push(bounds.lerp(u, v));
                }
            }
        }
        complaints
    }

    /// Bins complaints onto the map's cells and returns the Pearson
    /// correlation between per-cell noise level and complaint count —
    /// the quantitative form of the Figure 4 observation. `None` if
    /// either field is constant.
    pub fn correlation(map: &Grid, complaints: &[GeoPoint]) -> Option<f64> {
        let mut counts = vec![0.0f64; map.len()];
        let bounds = map.bounds();
        for c in complaints {
            if !bounds.contains(*c) {
                continue;
            }
            let u = (c.lon - bounds.lon_min) / (bounds.lon_max - bounds.lon_min);
            let v = (c.lat - bounds.lat_min) / (bounds.lat_max - bounds.lat_min);
            let ix = ((u * map.nx() as f64) as usize).min(map.nx() - 1);
            let iy = ((v * map.ny() as f64) as usize).min(map.ny() - 1);
            counts[iy * map.nx() + ix] += 1.0;
        }
        pearson(map.values(), &counts)
    }
}

/// Knuth Poisson sampler (adequate for the small per-cell intensities
/// used here).
fn sample_poisson(lambda: f64, rng: &mut SimRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.uniform();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::GeoBounds;

    fn gradient_map() -> Grid {
        // Noise grows from west (45 dB) to east (75 dB).
        Grid::from_fn(GeoBounds::paris(), 16, 16, |p| {
            45.0 + (p.lon - 2.224) / (2.470 - 2.224) * 30.0
        })
    }

    #[test]
    fn intensity_is_zero_below_threshold() {
        let proc = ComplaintProcess::new(55.0, 0.1);
        assert_eq!(proc.intensity(50.0), 0.0);
        assert_eq!(proc.intensity(55.0), 0.0);
        assert!((proc.intensity(65.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complaints_cluster_where_loud() {
        let map = gradient_map();
        let proc = ComplaintProcess::new(55.0, 0.4);
        let mut rng = SimRng::new(21);
        let complaints = proc.sample(&map, &mut rng);
        assert!(complaints.len() > 50, "got {}", complaints.len());
        let mid_lon = (2.224 + 2.470) / 2.0;
        let east = complaints.iter().filter(|c| c.lon > mid_lon).count();
        let west = complaints.len() - east;
        assert!(east > 3 * west, "east {east}, west {west}");
    }

    #[test]
    fn correlation_is_strong_for_noise_driven_complaints() {
        let map = gradient_map();
        let proc = ComplaintProcess::new(55.0, 0.6);
        let mut rng = SimRng::new(22);
        let complaints = proc.sample(&map, &mut rng);
        let r = ComplaintProcess::correlation(&map, &complaints).unwrap();
        assert!(r > 0.5, "correlation {r}");
    }

    #[test]
    fn correlation_near_zero_for_uniform_complaints() {
        let map = gradient_map();
        let mut rng = SimRng::new(23);
        let complaints: Vec<GeoPoint> = (0..2_000)
            .map(|_| map.bounds().lerp(rng.uniform(), rng.uniform()))
            .collect();
        let r = ComplaintProcess::correlation(&map, &complaints).unwrap();
        assert!(r.abs() < 0.2, "correlation {r}");
    }

    #[test]
    fn correlation_none_for_no_complaints_on_constant_map() {
        let map = Grid::constant(GeoBounds::paris(), 4, 4, 50.0);
        assert_eq!(ComplaintProcess::correlation(&map, &[]), None);
    }

    #[test]
    fn outside_complaints_are_ignored() {
        let map = gradient_map();
        let outside = vec![GeoPoint::new(0.0, 0.0)];
        // All-zero counts on a varying map: correlation is None (zero
        // variance in counts).
        assert_eq!(ComplaintProcess::correlation(&map, &outside), None);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = SimRng::new(24);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(2.5, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.5).abs() < 0.06, "mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rate() {
        let _ = ComplaintProcess::new(55.0, -1.0);
    }
}
