//! Synthetic city model: roads and venues as noise sources.
//!
//! The paper's motivating noise maps (Figure 4) aggregate "noise due to
//! traffic and places that are subject to noise (bars, restaurants, ...)".
//! [`CityModel`] carries exactly those two source kinds and can generate a
//! plausible synthetic city (an avenue grid plus clustered venues) from a
//! seed.

use mps_simcore::SimRng;
use mps_types::{GeoBounds, GeoPoint};

/// A road segment emitting traffic noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Road {
    /// One endpoint.
    pub a: GeoPoint,
    /// The other endpoint.
    pub b: GeoPoint,
    /// Emission level at the reference distance (10 m), dB(A). Busy
    /// avenues run 70–80, side streets 55–65.
    pub emission_db: f64,
}

impl Road {
    /// Distance from `p` to the closest point of the segment, metres.
    pub fn distance_m(&self, p: GeoPoint) -> f64 {
        // Work in the local planar frame of endpoint `a`.
        let (bx, by) = self.b.to_local_xy(self.a);
        let (px, py) = p.to_local_xy(self.a);
        let len2 = bx * bx + by * by;
        let t = if len2 == 0.0 {
            0.0
        } else {
            ((px * bx + py * by) / len2).clamp(0.0, 1.0)
        };
        let (cx, cy) = (bx * t, by * t);
        ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
    }
}

/// A fixed noisy venue (bar, restaurant, concert hall...).
#[derive(Debug, Clone, PartialEq)]
pub struct Venue {
    /// Venue location.
    pub at: GeoPoint,
    /// Emission level at the reference distance (10 m), dB(A).
    pub emission_db: f64,
}

/// A city: bounds, roads and venues.
#[derive(Debug, Clone, PartialEq)]
pub struct CityModel {
    bounds: GeoBounds,
    roads: Vec<Road>,
    venues: Vec<Venue>,
}

impl CityModel {
    /// Creates a city from explicit sources.
    pub fn new(bounds: GeoBounds, roads: Vec<Road>, venues: Vec<Venue>) -> Self {
        Self {
            bounds,
            roads,
            venues,
        }
    }

    /// Generates a synthetic city: an `n_avenues × n_avenues` grid of
    /// avenues (louder) with side streets between them (quieter), and
    /// `n_venues` venues clustered around a few nightlife centres.
    pub fn synthetic(
        bounds: GeoBounds,
        n_avenues: usize,
        n_venues: usize,
        rng: &mut SimRng,
    ) -> Self {
        let mut roads = Vec::new();
        // Avenues: straight across the bounds in both directions.
        for i in 0..n_avenues {
            let f = (i as f64 + 0.5) / n_avenues as f64;
            let emission = rng.uniform_in(70.0, 80.0);
            roads.push(Road {
                a: bounds.lerp(0.0, f),
                b: bounds.lerp(1.0, f),
                emission_db: emission,
            });
            let emission = rng.uniform_in(70.0, 80.0);
            roads.push(Road {
                a: bounds.lerp(f, 0.0),
                b: bounds.lerp(f, 1.0),
                emission_db: emission,
            });
        }
        // Side streets: shorter random segments, quieter.
        for _ in 0..n_avenues * 3 {
            let u = rng.uniform();
            let v = rng.uniform();
            let du = rng.uniform_in(-0.15, 0.15);
            let dv = rng.uniform_in(-0.15, 0.15);
            roads.push(Road {
                a: bounds.lerp(u, v),
                b: bounds.lerp((u + du).clamp(0.0, 1.0), (v + dv).clamp(0.0, 1.0)),
                emission_db: rng.uniform_in(55.0, 65.0),
            });
        }
        // Venues: clustered around nightlife centres.
        let n_centres = 3.max(n_venues / 20);
        let centres: Vec<(f64, f64)> = (0..n_centres)
            .map(|_| (rng.uniform_in(0.15, 0.85), rng.uniform_in(0.15, 0.85)))
            .collect();
        let venues = (0..n_venues)
            .map(|_| {
                let (cu, cv) = *rng.pick(&centres);
                let u = (cu + rng.normal(0.0, 0.04)).clamp(0.0, 1.0);
                let v = (cv + rng.normal(0.0, 0.04)).clamp(0.0, 1.0);
                Venue {
                    at: bounds.lerp(u, v),
                    emission_db: rng.uniform_in(62.0, 75.0),
                }
            })
            .collect();
        Self {
            bounds,
            roads,
            venues,
        }
    }

    /// The city bounds.
    pub fn bounds(&self) -> GeoBounds {
        self.bounds
    }

    /// The roads.
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// The venues.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> GeoBounds {
        GeoBounds::paris()
    }

    #[test]
    fn road_distance_to_endpoint_and_midpoint() {
        let road = Road {
            a: GeoPoint::new(48.85, 2.30),
            b: GeoPoint::new(48.85, 2.40),
            emission_db: 75.0,
        };
        // A point on the segment has ~zero distance.
        let mid = GeoPoint::new(48.85, 2.35);
        assert!(road.distance_m(mid) < 5.0);
        // A point north of the midpoint is at its perpendicular distance.
        let north = GeoPoint::new(48.86, 2.35);
        let d = road.distance_m(north);
        assert!((d - 1_112.0).abs() < 20.0, "{d}");
        // Beyond the endpoint, distance is to the endpoint.
        let past = GeoPoint::new(48.85, 2.45);
        let to_b = past.distance_m(road.b);
        assert!((road.distance_m(past) - to_b).abs() < 1.0);
    }

    #[test]
    fn degenerate_road_is_a_point() {
        let p = GeoPoint::new(48.85, 2.35);
        let road = Road {
            a: p,
            b: p,
            emission_db: 60.0,
        };
        let q = GeoPoint::new(48.86, 2.35);
        assert!((road.distance_m(q) - p.distance_m(q)).abs() < 1.0);
    }

    #[test]
    fn synthetic_city_has_requested_sources() {
        let mut rng = SimRng::new(11);
        let city = CityModel::synthetic(bounds(), 5, 60, &mut rng);
        assert_eq!(city.roads().len(), 5 * 2 + 5 * 3);
        assert_eq!(city.venues().len(), 60);
        assert_eq!(city.bounds(), bounds());
    }

    #[test]
    fn synthetic_sources_are_inside_bounds() {
        let mut rng = SimRng::new(12);
        let city = CityModel::synthetic(bounds(), 4, 40, &mut rng);
        for road in city.roads() {
            assert!(bounds().contains(road.a), "{:?}", road.a);
            assert!(bounds().contains(road.b));
        }
        for venue in city.venues() {
            assert!(bounds().contains(venue.at));
        }
    }

    #[test]
    fn avenues_are_louder_than_side_streets() {
        let mut rng = SimRng::new(13);
        let city = CityModel::synthetic(bounds(), 4, 10, &mut rng);
        let avenues = &city.roads()[..8];
        let side = &city.roads()[8..];
        let min_avenue = avenues
            .iter()
            .map(|r| r.emission_db)
            .fold(f64::INFINITY, f64::min);
        let max_side = side
            .iter()
            .map(|r| r.emission_db)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_avenue > max_side, "{min_avenue} vs {max_side}");
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = CityModel::synthetic(bounds(), 3, 20, &mut SimRng::new(5));
        let b = CityModel::synthetic(bounds(), 3, 20, &mut SimRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn venues_cluster() {
        // Venues concentrate around few centres: mean pairwise distance is
        // much smaller than the city diagonal.
        let mut rng = SimRng::new(14);
        let city = CityModel::synthetic(bounds(), 3, 50, &mut rng);
        let venues = city.venues();
        let mut within_1km = 0usize;
        let mut total = 0usize;
        for i in 0..venues.len() {
            for j in (i + 1)..venues.len() {
                total += 1;
                if venues[i].at.distance_m(venues[j].at) < 1_000.0 {
                    within_1km += 1;
                }
            }
        }
        // With 3 clusters, ~1/3 of pairs are same-cluster; a same-cluster
        // pair is usually within ~1 km. Uniform venues over Paris would
        // land near 0.02.
        let frac = within_1km as f64 / total as f64;
        assert!(frac > 0.1, "venue clustering too weak: {frac}");
    }
}
