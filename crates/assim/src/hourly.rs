//! Time-varying (hourly) assimilation.
//!
//! The paper's closing research direction: "advanced spatial-temporal
//! processing of all the data can produce unique information about the
//! entire environment, especially in urban areas where complex, fast
//! varying (in time and space) phenomena continuously occur" — and calls
//! for "adapted data assimilation algorithms that merge traditional
//! simulations ... with fixed and mobile observations" (Section 8).
//!
//! [`DiurnalAnalysis`] is the first step on that path: the day is split
//! into 24 hourly windows, each with its own simulated background (the
//! forward model's hourly modulation) corrected by that hour's mobile
//! observations. A static all-day analysis cannot track the diurnal
//! cycle; the hourly analysis does.

use crate::blue::{Blue, PointObservation};
use crate::grid::Grid;
use crate::noise::NoiseSimulator;
use crate::telemetry::telemetry;
use crate::AssimError;
use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceId};
use mps_telemetry::SpanTimer;
use mps_types::GeoPoint;

/// A timestamped observation for time-varying assimilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlyObservation {
    /// Where the measurement was taken.
    pub at: GeoPoint,
    /// Measured level, dB(A).
    pub value_db: f64,
    /// Observation-error standard deviation, dB.
    pub sigma_db: f64,
    /// Hour of day of the capture, `0..24`.
    pub hour: u32,
}

/// A field with one analysis per hour of day.
#[derive(Debug, Clone)]
pub struct DiurnalField {
    maps: Vec<Grid>,
}

impl DiurnalField {
    /// The analysis for one hour.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn at_hour(&self, hour: u32) -> &Grid {
        &self.maps[hour as usize]
    }

    /// Samples the field at a point and hour, or `None` outside the grid.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn sample(&self, point: GeoPoint, hour: u32) -> Option<f64> {
        self.maps[hour as usize].sample(point)
    }

    /// RMSE against a reference per-hour truth (24 grids).
    ///
    /// # Panics
    ///
    /// Panics if `truth` does not hold 24 grids of matching shape.
    pub fn rmse_against(&self, truth: &[Grid]) -> f64 {
        assert_eq!(truth.len(), 24, "need 24 hourly truth grids");
        let total: f64 = self
            .maps
            .iter()
            .zip(truth)
            .map(|(a, t)| a.rmse(t).powi(2))
            .sum();
        (total / 24.0).sqrt()
    }
}

/// Hour-by-hour BLUE assimilation against the forward model's hourly
/// backgrounds.
#[derive(Debug, Clone)]
pub struct DiurnalAnalysis {
    blue: Blue,
    nx: usize,
    ny: usize,
}

impl DiurnalAnalysis {
    /// Creates the analysis with BLUE parameters and a grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn new(blue: Blue, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Self { blue, nx, ny }
    }

    /// Runs the 24 hourly analyses: the background of hour `h` comes from
    /// `model.simulate_at_hour(h)`, corrected by the observations stamped
    /// with hour `h`. Hours without observations keep their background.
    ///
    /// # Errors
    ///
    /// Propagates BLUE errors (an observation outside the model's grid,
    /// singular covariance).
    pub fn run(
        &self,
        model: &NoiseSimulator,
        observations: &[HourlyObservation],
    ) -> Result<DiurnalField, AssimError> {
        let metrics = telemetry();
        metrics.hourly_runs.inc();
        let _timer = SpanTimer::start(&metrics.hourly_run_seconds);
        let mut maps = Vec::with_capacity(24);
        for hour in 0..24u32 {
            let background = model.simulate_at_hour(self.nx, self.ny, hour);
            let hour_obs: Vec<PointObservation> = observations
                .iter()
                .filter(|o| o.hour == hour)
                .map(|o| PointObservation::new(o.at, o.value_db, o.sigma_db))
                .collect();
            let analysis = if hour_obs.is_empty() {
                background
            } else {
                self.blue.analyse(&background, &hour_obs)?
            };
            maps.push(analysis);
        }
        Ok(DiurnalField { maps })
    }

    /// Runs the 24 hourly analyses like [`DiurnalAnalysis::run`] and
    /// records the **fan-in** of the tracing layer: one `assim_batch`
    /// span in the global [`FlightRecorder`] that links every member
    /// observation's trace — the point where many per-observation traces
    /// converge into one analysis product. The batch gets its own
    /// deterministic trace id (derived from the member set and `now_ms`),
    /// so batch spans never collide with observation traces.
    ///
    /// # Errors
    ///
    /// Propagates BLUE errors; no batch span is recorded for a failed
    /// analysis.
    pub fn run_traced(
        &self,
        model: &NoiseSimulator,
        observations: &[HourlyObservation],
        members: &[TraceId],
        window: &str,
        now_ms: i64,
    ) -> Result<DiurnalField, AssimError> {
        let field = self.run(model, observations)?;
        let fold = members
            .iter()
            .fold(0xa55e_55ed_b47cu64, |acc, t| acc.rotate_left(7) ^ t.raw());
        let mut span = SpanRecord::new(
            TraceId::for_observation(fold, now_ms),
            Hop::AssimBatch,
            now_ms,
        )
        .outcome(Outcome::Ok)
        .attr("window", window)
        .attr("members", members.len().to_string());
        for member in members {
            span = span.link(*member);
        }
        FlightRecorder::global().record(span);
        Ok(field)
    }

    /// Baseline for comparison: one static analysis from the day-reference
    /// background and *all* observations pooled (ignoring their hours),
    /// replicated over the 24 hours.
    ///
    /// # Errors
    ///
    /// Propagates BLUE errors.
    pub fn run_static(
        &self,
        model: &NoiseSimulator,
        observations: &[HourlyObservation],
    ) -> Result<DiurnalField, AssimError> {
        let metrics = telemetry();
        metrics.hourly_runs.inc();
        let _timer = SpanTimer::start(&metrics.hourly_run_seconds);
        let background = model.simulate(self.nx, self.ny);
        let pooled: Vec<PointObservation> = observations
            .iter()
            .map(|o| PointObservation::new(o.at, o.value_db, o.sigma_db))
            .collect();
        let analysis = if pooled.is_empty() {
            background
        } else {
            self.blue.analyse(&background, &pooled)?
        };
        Ok(DiurnalField {
            maps: vec![analysis; 24],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;
    use mps_simcore::SimRng;
    use mps_types::GeoBounds;

    fn setup() -> (NoiseSimulator, NoiseSimulator, Vec<Grid>) {
        // Truth: the full city. Model: a degraded inventory (quieter
        // roads, no venues), so assimilation has real work to do.
        let mut rng = SimRng::new(41);
        let city = CityModel::synthetic(GeoBounds::paris(), 4, 30, &mut rng);
        let truth_sim = NoiseSimulator::new(city.clone());
        let degraded: Vec<crate::Road> = city
            .roads()
            .iter()
            .map(|r| crate::Road {
                a: r.a,
                b: r.b,
                emission_db: r.emission_db - 4.0,
            })
            .collect();
        let model_sim = NoiseSimulator::new(CityModel::new(GeoBounds::paris(), degraded, vec![]));
        let truth: Vec<Grid> = (0..24)
            .map(|h| truth_sim.simulate_at_hour(16, 16, h))
            .collect();
        (truth_sim, model_sim, truth)
    }

    fn observations_of_truth(truth: &[Grid], per_hour: usize, seed: u64) -> Vec<HourlyObservation> {
        let mut rng = SimRng::new(seed);
        let bounds = GeoBounds::paris();
        let mut out = Vec::new();
        for hour in 0..24u32 {
            for _ in 0..per_hour {
                let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
                let level = truth[hour as usize].sample(at).unwrap() + rng.normal(0.0, 1.0);
                out.push(HourlyObservation {
                    at,
                    value_db: level,
                    sigma_db: 1.5,
                    hour,
                });
            }
        }
        out
    }

    #[test]
    fn hourly_analysis_tracks_the_diurnal_cycle() {
        let (_truth_sim, model_sim, truth) = setup();
        let obs = observations_of_truth(&truth, 12, 1);
        let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 16, 16);

        let hourly = analysis.run(&model_sim, &obs).unwrap();
        let static_field = analysis.run_static(&model_sim, &obs).unwrap();

        let hourly_rmse = hourly.rmse_against(&truth);
        let static_rmse = static_field.rmse_against(&truth);
        assert!(
            hourly_rmse < static_rmse * 0.75,
            "hourly {hourly_rmse:.2} dB must beat static {static_rmse:.2} dB"
        );
    }

    #[test]
    fn night_and_day_analyses_differ() {
        let (_, model_sim, truth) = setup();
        let obs = observations_of_truth(&truth, 8, 2);
        let field = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 16, 16)
            .run(&model_sim, &obs)
            .unwrap();
        let p = GeoBounds::paris().center();
        let day = field.sample(p, 18).unwrap();
        let night = field.sample(p, 3).unwrap();
        assert!(day > night + 4.0, "day {day} vs night {night}");
    }

    #[test]
    fn empty_hours_fall_back_to_background() {
        let (_, model_sim, truth) = setup();
        // Observations only at noon.
        let obs: Vec<HourlyObservation> = observations_of_truth(&truth, 10, 3)
            .into_iter()
            .filter(|o| o.hour == 12)
            .collect();
        let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 16, 16);
        let field = analysis.run(&model_sim, &obs).unwrap();
        // Hour 3 equals the raw background (no correction applied).
        let background = model_sim.simulate_at_hour(16, 16, 3);
        assert_eq!(field.at_hour(3), &background);
        // Hour 12 was corrected away from its background.
        let noon_bg = model_sim.simulate_at_hour(16, 16, 12);
        assert!(field.at_hour(12).rmse(&noon_bg) > 0.1);
    }

    #[test]
    fn no_observations_reproduces_the_model() {
        let (_, model_sim, _) = setup();
        let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_000.0), 16, 16);
        let field = analysis.run(&model_sim, &[]).unwrap();
        let static_field = analysis.run_static(&model_sim, &[]).unwrap();
        assert_eq!(field.at_hour(8), static_field.at_hour(8));
    }

    #[test]
    fn run_traced_records_a_fan_in_span_linking_members() {
        let (_, model_sim, truth) = setup();
        let obs = observations_of_truth(&truth, 2, 4);
        let members: Vec<TraceId> = (0..obs.len() as u64)
            .map(|i| TraceId::for_observation(880_000 + i, 0))
            .collect();
        let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 16, 16);
        let field = analysis
            .run_traced(&model_sim, &obs, &members, "day-1", 86_400_000)
            .unwrap();
        assert_eq!(field.at_hour(0).sample(GeoBounds::paris().center()), {
            analysis
                .run(&model_sim, &obs)
                .unwrap()
                .at_hour(0)
                .sample(GeoBounds::paris().center())
        });

        let batch = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.hop == Hop::AssimBatch)
            .find(|s| s.links == members)
            .expect("fan-in span recorded");
        assert_eq!(batch.outcome, Outcome::Ok);
        assert_eq!(batch.start_ms, 86_400_000);
        assert!(batch
            .attrs
            .iter()
            .any(|(k, v)| *k == "members" && v == &members.len().to_string()));
        assert!(!members.iter().any(|m| *m == batch.trace), "own trace id");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_grid() {
        let _ = DiurnalAnalysis::new(Blue::new(4.0, 1_000.0), 0, 16);
    }

    #[test]
    #[should_panic(expected = "24 hourly truth grids")]
    fn rmse_checks_truth_length() {
        let (_, model_sim, _) = setup();
        let field = DiurnalAnalysis::new(Blue::new(4.0, 1_000.0), 16, 16)
            .run(&model_sim, &[])
            .unwrap();
        let _ = field.rmse_against(&[]);
    }
}
