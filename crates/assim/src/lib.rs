//! # mps-assim — urban noise modelling and data assimilation
//!
//! The SoundCity system adds a *Data Assimilation Engine* to the
//! crowd-sensing pipeline (Figure 5 of the paper): a numerical model
//! simulates the urban noise field, and heterogeneous mobile observations
//! correct it. The paper's engine builds on the Verdandi library and
//! BLUE-based assimilation at urban scale [Tilloy et al. 2013]; this crate
//! implements that algorithm stack from scratch:
//!
//! * [`Grid`] — a regular lat/lon field over a bounding box with bilinear
//!   sampling (the state vector).
//! * [`CityModel`] / [`NoiseSimulator`] — a synthetic city (roads with
//!   traffic intensities, noisy venues) and the forward model computing
//!   its noise map by energy summation with geometric attenuation.
//! * [`Blue`] — the Best Linear Unbiased Estimator analysis with a
//!   Balgovind background covariance and per-observation error variances:
//!   `x_a = x_b + B Hᵀ (H B Hᵀ + R)⁻¹ (y − H x_b)`. For large
//!   observation sets, [`Blue::analyse_localized`] trades one global
//!   solve for many small per-tile solves under a [`Localization`]
//!   cutoff (see `docs/PERFORMANCE.md`).
//! * [`CalibrationDatabase`] — the per-model calibration store fed by
//!   "calibration parties" (co-located phone vs reference measurements,
//!   Section 5.2), used to de-bias observations and set their error
//!   variances before assimilation.
//! * [`ComplaintProcess`] — the noise-complaint point process behind the
//!   Figure 4 motivation (complaints correlate with simulated noise).
//!
//! # Examples
//!
//! ```
//! use mps_assim::{Blue, Grid, PointObservation};
//! use mps_types::{GeoBounds, GeoPoint};
//!
//! let background = Grid::constant(GeoBounds::paris(), 24, 24, 50.0);
//! let obs = vec![PointObservation::new(GeoPoint::PARIS, 62.0, 2.0)];
//! let blue = Blue::new(4.0, 800.0); // sigma_b 4 dB, correlation radius 800 m
//! let analysis = blue.analyse(&background, &obs)?;
//! let at_obs = analysis.sample(GeoPoint::PARIS).unwrap();
//! assert!(at_obs > 52.0, "analysis moved toward the observation");
//! # Ok::<(), mps_assim::AssimError>(())
//! ```

mod blue;
mod calib;
mod city;
mod complaints;
mod crowdcal;
mod error;
mod grid;
mod hourly;
mod matrix;
mod noise;
mod planning;
#[cfg(test)]
mod proptests;
mod telemetry;

pub use blue::{Blue, Localization, PointObservation};
pub use calib::{CalibrationDatabase, ModelCalibration};
pub use city::{CityModel, Road, Venue};
pub use complaints::ComplaintProcess;
pub use crowdcal::{CrowdCalibration, CrowdCalibrator, CrowdObservation};
pub use error::AssimError;
pub use grid::Grid;
pub use hourly::{DiurnalAnalysis, DiurnalField, HourlyObservation};
pub use matrix::Matrix;
pub use noise::NoiseSimulator;
pub use planning::{infer_exposure, PosteriorVariance, SensingPlanner};
