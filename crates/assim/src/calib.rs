//! The per-model calibration database (Section 5.2).
//!
//! "We are thus maintaining a calibration database where we assess the
//! bias of a particular model compared to a reference sound level meter
//! [...] we organize 'calibration parties' to meet with our users and
//! calibrate their phones." The key empirical finding is that calibration
//! works *per model*: devices of one model behave alike (Figure 15), so a
//! model-level bias estimate de-biases every device of that model.

use mps_types::{DeviceModel, SoundLevel};
use std::collections::BTreeMap;

/// Calibration state of one device model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelCalibration {
    /// Number of co-located (reference, phone) sample pairs.
    pub samples: u64,
    /// Estimated bias: mean(phone − reference), dB.
    pub bias_db: f64,
    /// Residual error standard deviation after bias removal, dB.
    pub residual_std_db: f64,
}

/// Accumulator internals (Welford over the differences).
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    n: u64,
    mean: f64,
    m2: f64,
}

/// The calibration database: per-model bias estimates from calibration
/// parties.
///
/// # Examples
///
/// ```
/// use mps_assim::CalibrationDatabase;
/// use mps_types::{DeviceModel, SoundLevel};
///
/// let mut db = CalibrationDatabase::new();
/// // A calibration party: phone reads 4 dB hot against the reference.
/// for i in 0..50 {
///     let reference = 60.0 + (i % 5) as f64;
///     db.record(DeviceModel::LgeNexus5, SoundLevel::new(reference),
///               SoundLevel::new(reference + 4.0));
/// }
/// let corrected = db.correct(DeviceModel::LgeNexus5, SoundLevel::new(70.0));
/// assert!((corrected.db() - 66.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CalibrationDatabase {
    models: BTreeMap<DeviceModel, Acc>,
    /// Error std assumed for uncalibrated models, dB.
    default_sigma_db: f64,
}

impl CalibrationDatabase {
    /// Creates an empty database with the default uncalibrated error
    /// (6 dB).
    pub fn new() -> Self {
        Self {
            models: BTreeMap::new(),
            default_sigma_db: 6.0,
        }
    }

    /// Sets the error std assumed for models without calibration data.
    pub fn with_default_sigma(mut self, sigma_db: f64) -> Self {
        assert!(sigma_db > 0.0, "sigma must be positive");
        self.default_sigma_db = sigma_db;
        self
    }

    /// Records one co-located pair: the reference sound-level meter read
    /// `reference`, the phone of `model` read `measured`.
    pub fn record(&mut self, model: DeviceModel, reference: SoundLevel, measured: SoundLevel) {
        let diff = measured.db() - reference.db();
        let acc = self.models.entry(model).or_default();
        acc.n += 1;
        let delta = diff - acc.mean;
        acc.mean += delta / acc.n as f64;
        acc.m2 += delta * (diff - acc.mean);
    }

    /// The calibration state of a model, if any pairs were recorded.
    pub fn calibration(&self, model: DeviceModel) -> Option<ModelCalibration> {
        self.models.get(&model).map(|acc| ModelCalibration {
            samples: acc.n,
            bias_db: acc.mean,
            residual_std_db: if acc.n < 2 {
                0.0
            } else {
                (acc.m2 / (acc.n - 1) as f64).sqrt()
            },
        })
    }

    /// Whether a model has enough samples (≥ 10) to be considered
    /// calibrated.
    pub fn is_calibrated(&self, model: DeviceModel) -> bool {
        self.models.get(&model).is_some_and(|a| a.n >= 10)
    }

    /// Number of calibrated models.
    pub fn calibrated_count(&self) -> usize {
        DeviceModel::ALL
            .iter()
            .filter(|m| self.is_calibrated(**m))
            .count()
    }

    /// De-biases a measurement from a model (identity for uncalibrated
    /// models).
    pub fn correct(&self, model: DeviceModel, measured: SoundLevel) -> SoundLevel {
        match self.models.get(&model) {
            Some(acc) if acc.n >= 10 => measured - acc.mean,
            _ => measured,
        }
    }

    /// Observation-error standard deviation to use for a model in the
    /// assimilation: the residual std when calibrated (floored at 1 dB),
    /// the default otherwise.
    pub fn observation_sigma(&self, model: DeviceModel) -> f64 {
        match self.calibration(model) {
            Some(c) if c.samples >= 10 => c.residual_std_db.max(1.0),
            _ => self.default_sigma_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(db: &mut CalibrationDatabase, model: DeviceModel, bias: f64, noise: &[f64]) {
        for (i, n) in noise.iter().enumerate() {
            let reference = 55.0 + (i % 7) as f64;
            db.record(
                model,
                SoundLevel::new(reference),
                SoundLevel::new(reference + bias + n),
            );
        }
    }

    #[test]
    fn bias_estimate_converges() {
        let mut db = CalibrationDatabase::new();
        let noise: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.7).sin()).collect();
        feed(&mut db, DeviceModel::SonyD6603, 3.5, &noise);
        let cal = db.calibration(DeviceModel::SonyD6603).unwrap();
        assert_eq!(cal.samples, 200);
        assert!((cal.bias_db - 3.5).abs() < 0.1, "bias {}", cal.bias_db);
        assert!(cal.residual_std_db > 0.3 && cal.residual_std_db < 1.2);
    }

    #[test]
    fn correct_removes_bias() {
        let mut db = CalibrationDatabase::new();
        feed(&mut db, DeviceModel::LgeNexus4, -2.0, &[0.0; 20]);
        let corrected = db.correct(DeviceModel::LgeNexus4, SoundLevel::new(50.0));
        assert!((corrected.db() - 52.0).abs() < 1e-9);
    }

    #[test]
    fn uncalibrated_model_is_untouched() {
        let db = CalibrationDatabase::new();
        let level = SoundLevel::new(61.0);
        assert_eq!(db.correct(DeviceModel::HtcOneM8, level), level);
        assert_eq!(db.calibration(DeviceModel::HtcOneM8), None);
        assert!(!db.is_calibrated(DeviceModel::HtcOneM8));
        assert_eq!(db.observation_sigma(DeviceModel::HtcOneM8), 6.0);
    }

    #[test]
    fn few_samples_do_not_count_as_calibrated() {
        let mut db = CalibrationDatabase::new();
        feed(&mut db, DeviceModel::SonyD2303, 5.0, &[0.0; 5]);
        assert!(!db.is_calibrated(DeviceModel::SonyD2303));
        // correct() refuses to apply an unreliable estimate.
        let level = SoundLevel::new(40.0);
        assert_eq!(db.correct(DeviceModel::SonyD2303, level), level);
    }

    #[test]
    fn observation_sigma_tracks_residuals() {
        let mut db = CalibrationDatabase::new().with_default_sigma(7.0);
        let noise: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 2.0 } else { -2.0 })
            .collect();
        feed(&mut db, DeviceModel::SamsungSmG800f, 1.0, &noise);
        let sigma = db.observation_sigma(DeviceModel::SamsungSmG800f);
        assert!((sigma - 2.0).abs() < 0.1, "sigma {sigma}");
        assert_eq!(db.observation_sigma(DeviceModel::SonyD5803), 7.0);
    }

    #[test]
    fn sigma_is_floored() {
        let mut db = CalibrationDatabase::new();
        feed(&mut db, DeviceModel::LgeLgD802, 0.0, &vec![0.0; 50]);
        assert_eq!(db.observation_sigma(DeviceModel::LgeLgD802), 1.0);
    }

    #[test]
    fn calibrated_count_tracks_models() {
        let mut db = CalibrationDatabase::new();
        assert_eq!(db.calibrated_count(), 0);
        feed(&mut db, DeviceModel::SamsungGtI9505, 1.0, &[0.0; 20]);
        feed(&mut db, DeviceModel::SamsungGtI9300, -1.0, &[0.0; 20]);
        assert_eq!(db.calibrated_count(), 2);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_default_sigma() {
        let _ = CalibrationDatabase::new().with_default_sigma(0.0);
    }
}
