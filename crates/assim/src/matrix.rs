//! Minimal dense linear algebra: symmetric solves for the BLUE analysis.

use crate::AssimError;

/// A dense row-major matrix.
///
/// Just enough linear algebra for the analysis step: construction,
/// element access, and a Cholesky solve for symmetric positive-definite
/// systems (the innovation covariance `H B Hᵀ + R`).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Solves `self · x = b` for a symmetric positive-definite matrix via
    /// Cholesky decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::SingularCovariance`] when the matrix is not
    /// positive definite (within a small tolerance).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, AssimError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs dimension mismatch");
        let n = self.rows;
        // Cholesky: self = L Lᵀ, L lower triangular.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return Err(AssimError::SingularCovariance);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let eye = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = vec![1.0, -2.0, 3.0];
        assert_eq!(eye.solve_spd(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // A = [[4, 2], [2, 3]], b = [10, 9] -> x = [1.5, 2].
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let x = a.solve_spd(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_round_trips_with_mul() {
        // Build an SPD matrix A = M Mᵀ + I, solve A x = b, check A·x = b.
        let m = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let a = Matrix::from_fn(5, 5, |i, j| {
            let dot: f64 = (0..5).map(|k| m.get(i, k) * m.get(j, k)).sum();
            dot + if i == j { 1.0 } else { 0.0 }
        });
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = a.solve_spd(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        assert_eq!(
            a.solve_spd(&[1.0, 1.0]).unwrap_err(),
            AssimError::SingularCovariance
        );
        let zero = Matrix::zeros(2, 2);
        assert!(zero.solve_spd(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        // [[0,1,2],[3,4,5]] * [1,1,1] = [3, 12].
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!((a.rows(), a.cols()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dims() {
        let a = Matrix::zeros(2, 2);
        let _ = a.mul_vec(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_checks_range() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
