//! Minimal dense linear algebra: symmetric solves for the BLUE analysis.

use crate::AssimError;

/// A dense row-major matrix.
///
/// Just enough linear algebra for the analysis step: construction,
/// element access, and a Cholesky solve for symmetric positive-definite
/// systems (the innovation covariance `H B Hᵀ + R`).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Solves `self · x = b` for a symmetric positive-definite matrix via
    /// unblocked Cholesky decomposition.
    ///
    /// This is the retained straight-line reference implementation; the
    /// hot paths call [`Matrix::solve_spd_blocked`], whose factorization
    /// visits the same arithmetic in a cache-friendlier order. The two are
    /// held equal by a property test.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::SingularCovariance`] when the matrix is not
    /// positive definite (within a small tolerance).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, AssimError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs dimension mismatch");
        let n = self.rows;
        // Cholesky: self = L Lᵀ, L lower triangular.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return Err(AssimError::SingularCovariance);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(substitute(&l, n, b))
    }

    /// Solves `self · x = b` via a blocked (right-looking) Cholesky
    /// factorization.
    ///
    /// The factorization proceeds in panels of [`CHOLESKY_BLOCK`] columns:
    /// factor the diagonal block, triangular-solve the panel below it,
    /// then rank-update the trailing submatrix. The trailing update — the
    /// O(n³) bulk of the work — runs over contiguous row slices, so it
    /// stays in cache where the unblocked column sweep thrashes it.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::SingularCovariance`] when the matrix is not
    /// positive definite (within a small tolerance).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve_spd_blocked(&self, b: &[f64]) -> Result<Vec<f64>, AssimError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs dimension mismatch");
        let n = self.rows;
        let mut l = self.data.clone();
        for k0 in (0..n).step_by(CHOLESKY_BLOCK) {
            let k1 = (k0 + CHOLESKY_BLOCK).min(n);
            // Factor the diagonal block in place (columns < k0 have
            // already been folded in by earlier trailing updates).
            for i in k0..k1 {
                for j in k0..=i {
                    let mut sum = l[i * n + j];
                    for k in k0..j {
                        sum -= l[i * n + k] * l[j * n + k];
                    }
                    if i == j {
                        if sum <= 1e-12 {
                            return Err(AssimError::SingularCovariance);
                        }
                        l[i * n + i] = sum.sqrt();
                    } else {
                        l[i * n + j] = sum / l[j * n + j];
                    }
                }
            }
            // Triangular solve of the panel below the diagonal block:
            // L[k1.., k0..k1] ← A[k1.., k0..k1] · L[k0..k1, k0..k1]⁻ᵀ.
            for i in k1..n {
                for j in k0..k1 {
                    let mut sum = l[i * n + j];
                    for k in k0..j {
                        sum -= l[i * n + k] * l[j * n + k];
                    }
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
            // Rank-k1−k0 update of the trailing submatrix (lower half):
            // A[i][j] −= Σ_p L[i][p] · L[j][p], contiguous in p.
            for i in k1..n {
                for j in k1..=i {
                    let mut sum = 0.0;
                    for k in k0..k1 {
                        sum -= l[i * n + k] * l[j * n + k];
                    }
                    l[i * n + j] += sum;
                }
            }
        }
        Ok(substitute(&l, n, b))
    }
}

/// Panel width of the blocked Cholesky factorization. Three 48×48 `f64`
/// panels (~55 KiB) fit comfortably in a typical L2 cache.
const CHOLESKY_BLOCK: usize = 48;

/// Forward/backward substitution through a lower-triangular Cholesky
/// factor stored row-major in `l` (upper entries ignored).
fn substitute(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    // Forward substitution: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let eye = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = vec![1.0, -2.0, 3.0];
        assert_eq!(eye.solve_spd(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // A = [[4, 2], [2, 3]], b = [10, 9] -> x = [1.5, 2].
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let x = a.solve_spd(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_round_trips_with_mul() {
        // Build an SPD matrix A = M Mᵀ + I, solve A x = b, check A·x = b.
        let m = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let a = Matrix::from_fn(5, 5, |i, j| {
            let dot: f64 = (0..5).map(|k| m.get(i, k) * m.get(j, k)).sum();
            dot + if i == j { 1.0 } else { 0.0 }
        });
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = a.solve_spd(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn blocked_solve_agrees_with_unblocked_across_block_boundaries() {
        // Sizes straddling multiples of the panel width exercise the
        // diagonal-factor, panel-solve and trailing-update paths.
        for n in [1usize, 2, 5, 47, 48, 49, 96, 101] {
            let m = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 17) as f64 / 17.0);
            let a = Matrix::from_fn(n, n, |i, j| {
                let dot: f64 = (0..n).map(|k| m.get(i, k) * m.get(j, k)).sum();
                dot + if i == j { 2.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let reference = a.solve_spd(&b).unwrap();
            let blocked = a.solve_spd_blocked(&b).unwrap();
            for (u, v) in blocked.iter().zip(&reference) {
                assert!((u - v).abs() < 1e-9, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn blocked_solve_rejects_non_spd() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        assert_eq!(
            a.solve_spd_blocked(&[1.0, 1.0]).unwrap_err(),
            AssimError::SingularCovariance
        );
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        assert_eq!(
            a.solve_spd(&[1.0, 1.0]).unwrap_err(),
            AssimError::SingularCovariance
        );
        let zero = Matrix::zeros(2, 2);
        assert!(zero.solve_spd(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        // [[0,1,2],[3,4,5]] * [1,1,1] = [3, 12].
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!((a.rows(), a.cols()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dims() {
        let a = Matrix::zeros(2, 2);
        let _ = a.mul_vec(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_checks_range() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
