//! BLUE analysis (optimal interpolation).
//!
//! The Best Linear Unbiased Estimator corrects a background field `x_b`
//! with observations `y`:
//!
//! ```text
//! x_a = x_b + B Hᵀ (H B Hᵀ + R)⁻¹ (y − H x_b)
//! ```
//!
//! with `H` the (bilinear) observation operator, `R` the diagonal
//! observation-error covariance, and `B` a Balgovind background
//! covariance: `B(d) = σ_b² (1 + d/r) e^(−d/r)` — the standard choice of
//! the urban-scale BLUE assimilation the paper builds on [Tilloy et al.
//! 2013]. Working in dB treats the log-domain field as Gaussian, as the
//! noise-mapping literature does.

use crate::grid::Grid;
use crate::matrix::Matrix;
use crate::telemetry::telemetry;
use crate::AssimError;
use mps_telemetry::SpanTimer;
use mps_types::GeoPoint;

/// One point observation to assimilate: a location, a measured value (dB)
/// and the observation-error standard deviation (dB) — which per-model
/// calibration estimates (see
/// [`CalibrationDatabase`](crate::CalibrationDatabase)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointObservation {
    /// Where the measurement was taken.
    pub at: GeoPoint,
    /// Measured value, dB(A).
    pub value_db: f64,
    /// Observation-error standard deviation, dB.
    pub sigma_db: f64,
}

impl PointObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is not strictly positive and finite.
    pub fn new(at: GeoPoint, value_db: f64, sigma_db: f64) -> Self {
        assert!(
            sigma_db > 0.0 && sigma_db.is_finite(),
            "observation error must be positive, got {sigma_db}"
        );
        Self {
            at,
            value_db,
            sigma_db,
        }
    }
}

/// The BLUE analysis operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blue {
    sigma_b_db: f64,
    radius_m: f64,
}

impl Blue {
    /// Creates an analysis operator with background-error standard
    /// deviation `sigma_b_db` (dB) and Balgovind correlation radius
    /// `radius_m` (metres).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn new(sigma_b_db: f64, radius_m: f64) -> Self {
        assert!(sigma_b_db > 0.0, "sigma_b must be positive");
        assert!(radius_m > 0.0, "radius must be positive");
        Self {
            sigma_b_db,
            radius_m,
        }
    }

    /// Background covariance between two points (Balgovind).
    pub fn covariance(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        let d = a.distance_m(b) / self.radius_m;
        self.sigma_b_db * self.sigma_b_db * (1.0 + d) * (-d).exp()
    }

    /// Runs the analysis: returns the corrected field.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::NoObservations`] for an empty observation
    /// set, [`AssimError::ObservationOutsideGrid`] if an observation falls
    /// outside the background grid, and
    /// [`AssimError::SingularCovariance`] if the innovation covariance
    /// cannot be factored.
    pub fn analyse(
        &self,
        background: &Grid,
        observations: &[PointObservation],
    ) -> Result<Grid, AssimError> {
        if observations.is_empty() {
            return Err(AssimError::NoObservations);
        }
        let metrics = telemetry();
        let _timer = SpanTimer::start(&metrics.blue_pass_seconds);
        let m = observations.len();

        // Innovations d = y − H x_b (also validates the locations).
        let mut innovations = Vec::with_capacity(m);
        for obs in observations {
            let hx = background
                .sample(obs.at)
                .ok_or(AssimError::ObservationOutsideGrid {
                    lat: obs.at.lat,
                    lon: obs.at.lon,
                })?;
            innovations.push(obs.value_db - hx);
        }

        // S = H B Hᵀ + R. Because H is an interpolation, H B Hᵀ is
        // approximated by the covariance function evaluated between
        // observation locations (exact as the grid refines).
        let s = Matrix::from_fn(m, m, |i, j| {
            let mut v = self.covariance(observations[i].at, observations[j].at);
            if i == j {
                v += observations[i].sigma_db * observations[i].sigma_db;
            }
            v
        });
        let weights = s.solve_spd(&innovations)?;

        // x_a = x_b + (B Hᵀ) w, with (B Hᵀ)[cell, i] = cov(cell, obs_i).
        let mut analysis = background.clone();
        let nx = analysis.nx();
        let ny = analysis.ny();
        for iy in 0..ny {
            for ix in 0..nx {
                let cell = analysis.cell_center(ix, iy);
                let mut increment = 0.0;
                for (obs, w) in observations.iter().zip(&weights) {
                    increment += self.covariance(cell, obs.at) * w;
                }
                analysis.set(ix, iy, analysis.at(ix, iy) + increment);
            }
        }
        metrics.blue_passes.inc();
        metrics.blue_observations_merged.add(m as u64);
        Ok(analysis)
    }

    /// Innovation statistics `(mean, rms)` of observations against a
    /// field — used to diagnose bias before/after calibration.
    pub fn innovation_stats(field: &Grid, observations: &[PointObservation]) -> (f64, f64) {
        let innovations: Vec<f64> = observations
            .iter()
            .filter_map(|o| field.sample(o.at).map(|hx| o.value_db - hx))
            .collect();
        if innovations.is_empty() {
            return (0.0, 0.0);
        }
        let n = innovations.len() as f64;
        let mean = innovations.iter().sum::<f64>() / n;
        let rms = (innovations.iter().map(|d| d * d).sum::<f64>() / n).sqrt();
        (mean, rms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::GeoBounds;

    fn bounds() -> GeoBounds {
        GeoBounds::paris()
    }

    fn background() -> Grid {
        Grid::constant(bounds(), 24, 24, 50.0)
    }

    #[test]
    fn covariance_at_zero_distance_is_variance() {
        let blue = Blue::new(3.0, 500.0);
        let p = GeoPoint::PARIS;
        assert!((blue.covariance(p, p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_decays_monotonically() {
        let blue = Blue::new(3.0, 500.0);
        let origin = GeoPoint::PARIS;
        let mut last = f64::INFINITY;
        for d in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            let p = GeoPoint::from_local_xy(origin, d, 0.0);
            let c = blue.covariance(origin, p);
            assert!(c <= last + 1e-12, "covariance must decay");
            assert!(c >= 0.0);
            last = c;
        }
    }

    #[test]
    fn analysis_moves_toward_observation() {
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 62.0, 2.0)];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        let at_obs = analysis.sample(GeoPoint::PARIS).unwrap();
        assert!(at_obs > 50.0 && at_obs <= 62.0, "{at_obs}");
        // With sigma_b=4 and sigma_o=2, the gain is 16/(16+4) = 0.8:
        // expected ≈ 50 + 0.8 * 12 = 59.6.
        assert!((at_obs - 59.6).abs() < 1.0, "{at_obs}");
    }

    #[test]
    fn correction_is_localised() {
        let blue = Blue::new(4.0, 500.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 70.0, 1.0)];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        // Far from the observation (many correlation radii), the field is
        // untouched.
        let far = GeoPoint::from_local_xy(GeoPoint::PARIS, 6_000.0, 0.0);
        if let Some(v) = analysis.sample(far) {
            assert!((v - 50.0).abs() < 0.5, "far field moved to {v}");
        }
    }

    #[test]
    fn trusted_observation_pulls_harder() {
        let blue = Blue::new(4.0, 800.0);
        let precise = blue
            .analyse(
                &background(),
                &[PointObservation::new(GeoPoint::PARIS, 62.0, 0.5)],
            )
            .unwrap()
            .sample(GeoPoint::PARIS)
            .unwrap();
        let noisy = blue
            .analyse(
                &background(),
                &[PointObservation::new(GeoPoint::PARIS, 62.0, 8.0)],
            )
            .unwrap()
            .sample(GeoPoint::PARIS)
            .unwrap();
        assert!(precise > noisy + 3.0, "precise {precise}, noisy {noisy}");
    }

    #[test]
    fn multiple_observations_all_pull() {
        let blue = Blue::new(4.0, 600.0);
        let a = GeoPoint::from_local_xy(GeoPoint::PARIS, -3_000.0, 0.0);
        let b = GeoPoint::from_local_xy(GeoPoint::PARIS, 3_000.0, 0.0);
        let obs = vec![
            PointObservation::new(a, 62.0, 2.0),
            PointObservation::new(b, 40.0, 2.0),
        ];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        assert!(analysis.sample(a).unwrap() > 55.0);
        assert!(analysis.sample(b).unwrap() < 45.0);
    }

    #[test]
    fn reduces_rmse_against_truth() {
        // Truth: a tilted plane. Background: flat 50. Observations of the
        // truth must pull the analysis toward it.
        let truth = Grid::from_fn(bounds(), 24, 24, |p| 50.0 + (p.lon - 2.3) * 100.0);
        let blue = Blue::new(4.0, 1_500.0);
        let mut observations = Vec::new();
        for i in 0..25 {
            let u = (i % 5) as f64 / 4.0;
            let v = (i / 5) as f64 / 4.0;
            let at = bounds().lerp(u * 0.9 + 0.05, v * 0.9 + 0.05);
            observations.push(PointObservation::new(at, truth.sample(at).unwrap(), 1.0));
        }
        let bg = background();
        let analysis = blue.analyse(&bg, &observations).unwrap();
        let before = bg.rmse(&truth);
        let after = analysis.rmse(&truth);
        assert!(after < before * 0.6, "rmse {before} -> {after}");
    }

    #[test]
    fn empty_observations_error() {
        let blue = Blue::new(4.0, 800.0);
        assert_eq!(
            blue.analyse(&background(), &[]).unwrap_err(),
            AssimError::NoObservations
        );
    }

    #[test]
    fn outside_observation_errors() {
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![PointObservation::new(GeoPoint::new(0.0, 0.0), 60.0, 2.0)];
        assert!(matches!(
            blue.analyse(&background(), &obs),
            Err(AssimError::ObservationOutsideGrid { .. })
        ));
    }

    #[test]
    fn duplicate_locations_still_solve() {
        // R on the diagonal keeps S positive definite even for co-located
        // observations.
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![
            PointObservation::new(GeoPoint::PARIS, 60.0, 2.0),
            PointObservation::new(GeoPoint::PARIS, 64.0, 2.0),
        ];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        let v = analysis.sample(GeoPoint::PARIS).unwrap();
        assert!(v > 55.0 && v < 64.0, "{v}");
    }

    #[test]
    fn innovation_stats_measure_bias() {
        let field = background();
        let obs = vec![
            PointObservation::new(GeoPoint::PARIS, 53.0, 1.0),
            PointObservation::new(
                GeoPoint::from_local_xy(GeoPoint::PARIS, 1_000.0, 0.0),
                53.0,
                1.0,
            ),
        ];
        let (mean, rms) = Blue::innovation_stats(&field, &obs);
        assert!((mean - 3.0).abs() < 1e-9);
        assert!((rms - 3.0).abs() < 1e-9);
        assert_eq!(Blue::innovation_stats(&field, &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn observation_rejects_zero_sigma() {
        let _ = PointObservation::new(GeoPoint::PARIS, 60.0, 0.0);
    }
}
