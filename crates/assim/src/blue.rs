//! BLUE analysis (optimal interpolation).
//!
//! The Best Linear Unbiased Estimator corrects a background field `x_b`
//! with observations `y`:
//!
//! ```text
//! x_a = x_b + B Hᵀ (H B Hᵀ + R)⁻¹ (y − H x_b)
//! ```
//!
//! with `H` the (bilinear) observation operator, `R` the diagonal
//! observation-error covariance, and `B` a Balgovind background
//! covariance: `B(d) = σ_b² (1 + d/r) e^(−d/r)` — the standard choice of
//! the urban-scale BLUE assimilation the paper builds on [Tilloy et al.
//! 2013]. Working in dB treats the log-domain field as Gaussian, as the
//! noise-mapping literature does.

use crate::grid::Grid;
use crate::matrix::Matrix;
use crate::telemetry::telemetry;
use crate::AssimError;
use mps_telemetry::SpanTimer;
use mps_types::GeoPoint;

/// One point observation to assimilate: a location, a measured value (dB)
/// and the observation-error standard deviation (dB) — which per-model
/// calibration estimates (see
/// [`CalibrationDatabase`](crate::CalibrationDatabase)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointObservation {
    /// Where the measurement was taken.
    pub at: GeoPoint,
    /// Measured value, dB(A).
    pub value_db: f64,
    /// Observation-error standard deviation, dB.
    pub sigma_db: f64,
}

impl PointObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is not strictly positive and finite.
    pub fn new(at: GeoPoint, value_db: f64, sigma_db: f64) -> Self {
        assert!(
            sigma_db > 0.0 && sigma_db.is_finite(),
            "observation error must be positive, got {sigma_db}"
        );
        Self {
            at,
            value_db,
            sigma_db,
        }
    }
}

/// Observation-space localization settings for
/// [`Blue::analyse_localized`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Localization {
    /// Observations farther than this from a tile's circumscribed circle
    /// are excluded from that tile's solve, metres.
    pub cutoff_radius_m: f64,
    /// Tile edge length, in grid cells.
    pub tile: usize,
    /// Worker threads solving tiles (the result does not depend on it).
    pub threads: usize,
    /// Shard assignment `(index, count)`: this worker solves only tiles
    /// whose sequence number `t` (row-major tile order) satisfies
    /// `t % count == index`, leaving every other tile at the background.
    /// Defaults to `(0, 1)` — all tiles. Partial analyses from a full
    /// set of disjoint assignments recombine exactly via
    /// [`Blue::merge_shards`].
    pub shard: (usize, usize),
}

impl Localization {
    /// Creates a localization with the given cutoff, 8×8-cell tiles and
    /// one worker per available CPU.
    ///
    /// # Panics
    ///
    /// Panics unless `cutoff_radius_m` is strictly positive and finite.
    pub fn new(cutoff_radius_m: f64) -> Self {
        assert!(
            cutoff_radius_m > 0.0 && cutoff_radius_m.is_finite(),
            "cutoff radius must be positive, got {cutoff_radius_m}"
        );
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            cutoff_radius_m,
            tile: 8,
            threads,
            shard: (0, 1),
        }
    }

    /// A cutoff of 8 Balgovind correlation radii — there the covariance
    /// has decayed to `(1+8)·e⁻⁸ ≈ 0.3%` of the background variance,
    /// which keeps the localized analysis within 0.1 dB of the global one
    /// at realistic configurations.
    pub fn for_radius(radius_m: f64) -> Self {
        Self::new(radius_m * 8.0)
    }

    /// Overrides the tile edge length (clamped to at least one cell).
    pub fn tile(mut self, tile: usize) -> Self {
        self.tile = tile.max(1);
        self
    }

    /// Overrides the worker-thread count (clamped to at least one).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Assigns this worker shard `index` of `count`: the analysis solves
    /// only its own tiles, so `count` workers (threads, processes or
    /// machines) can split one BLUE pass and recombine with
    /// [`Blue::merge_shards`].
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn shard(mut self, index: usize, count: usize) -> Self {
        assert!(index < count, "shard {index} of {count}");
        self.shard = (index, count);
        self
    }
}

/// The BLUE analysis operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blue {
    sigma_b_db: f64,
    radius_m: f64,
}

impl Blue {
    /// Creates an analysis operator with background-error standard
    /// deviation `sigma_b_db` (dB) and Balgovind correlation radius
    /// `radius_m` (metres).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn new(sigma_b_db: f64, radius_m: f64) -> Self {
        assert!(sigma_b_db > 0.0, "sigma_b must be positive");
        assert!(radius_m > 0.0, "radius must be positive");
        Self {
            sigma_b_db,
            radius_m,
        }
    }

    /// Background covariance between two points (Balgovind).
    pub fn covariance(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        let d = a.distance_m(b) / self.radius_m;
        self.sigma_b_db * self.sigma_b_db * (1.0 + d) * (-d).exp()
    }

    /// Runs the analysis: returns the corrected field.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::NoObservations`] for an empty observation
    /// set, [`AssimError::ObservationOutsideGrid`] if an observation falls
    /// outside the background grid, and
    /// [`AssimError::SingularCovariance`] if the innovation covariance
    /// cannot be factored.
    pub fn analyse(
        &self,
        background: &Grid,
        observations: &[PointObservation],
    ) -> Result<Grid, AssimError> {
        if observations.is_empty() {
            return Err(AssimError::NoObservations);
        }
        let metrics = telemetry();
        let _timer = SpanTimer::start(&metrics.blue_pass_seconds);
        let m = observations.len();

        // Innovations d = y − H x_b (also validates the locations).
        let mut innovations = Vec::with_capacity(m);
        for obs in observations {
            let hx = background
                .sample(obs.at)
                .ok_or(AssimError::ObservationOutsideGrid {
                    lat: obs.at.lat,
                    lon: obs.at.lon,
                })?;
            innovations.push(obs.value_db - hx);
        }

        // S = H B Hᵀ + R. Because H is an interpolation, H B Hᵀ is
        // approximated by the covariance function evaluated between
        // observation locations (exact as the grid refines).
        let s = Matrix::from_fn(m, m, |i, j| {
            let mut v = self.covariance(observations[i].at, observations[j].at);
            if i == j {
                v += observations[i].sigma_db * observations[i].sigma_db;
            }
            v
        });
        let weights = s.solve_spd_blocked(&innovations)?;

        // x_a = x_b + (B Hᵀ) w, with (B Hᵀ)[cell, i] = cov(cell, obs_i).
        let mut analysis = background.clone();
        let nx = analysis.nx();
        let ny = analysis.ny();
        for iy in 0..ny {
            for ix in 0..nx {
                let cell = analysis.cell_center(ix, iy);
                let mut increment = 0.0;
                for (obs, w) in observations.iter().zip(&weights) {
                    increment += self.covariance(cell, obs.at) * w;
                }
                analysis.set(ix, iy, analysis.at(ix, iy) + increment);
            }
        }
        metrics.blue_passes.inc();
        metrics.blue_observations_merged.add(m as u64);
        Ok(analysis)
    }

    /// Runs the analysis with observation-space localization: the grid is
    /// cut into tiles, and each tile solves a small innovation system
    /// over only the observations within `localization.cutoff_radius_m`
    /// of it (measured to the tile's circumscribed circle, so no cell
    /// ever loses an observation closer than the cutoff).
    ///
    /// Because the Balgovind covariance at the default cutoff of 8
    /// correlation radii has decayed to `9·e⁻⁸ ≈ 3·10⁻³` of the
    /// background variance, the result deviates from the global
    /// [`Blue::analyse`] by well under 0.1 dB per cell at realistic
    /// configurations (held by a property test), while replacing one
    /// O(m³) solve with many small ones. Tiles run on
    /// `localization.threads` scoped threads; the result is independent
    /// of the thread count — tiles are disjoint and deterministic.
    ///
    /// A tile with no observation in reach keeps the background
    /// unchanged, which is exactly the localized estimate there.
    ///
    /// # Errors
    ///
    /// Same contract as [`Blue::analyse`]: [`AssimError::NoObservations`],
    /// [`AssimError::ObservationOutsideGrid`], or
    /// [`AssimError::SingularCovariance`] from any tile solve.
    pub fn analyse_localized(
        &self,
        background: &Grid,
        observations: &[PointObservation],
        localization: &Localization,
    ) -> Result<Grid, AssimError> {
        if observations.is_empty() {
            return Err(AssimError::NoObservations);
        }
        let metrics = telemetry();
        let _timer = SpanTimer::start(&metrics.blue_pass_seconds);
        let m = observations.len();

        let mut innovations = Vec::with_capacity(m);
        for obs in observations {
            let hx = background
                .sample(obs.at)
                .ok_or(AssimError::ObservationOutsideGrid {
                    lat: obs.at.lat,
                    lon: obs.at.lon,
                })?;
            innovations.push(obs.value_db - hx);
        }
        let innovations = innovations.as_slice();

        // Cut the grid into `tile × tile` cell jobs.
        let (nx, ny) = (background.nx(), background.ny());
        let tile = localization.tile.max(1);
        let mut tiles = Vec::new();
        let mut iy0 = 0;
        while iy0 < ny {
            let iy1 = (iy0 + tile).min(ny);
            let mut ix0 = 0;
            while ix0 < nx {
                let ix1 = (ix0 + tile).min(nx);
                tiles.push((ix0, ix1, iy0, iy1));
                ix0 = ix1;
            }
            iy0 = iy1;
        }
        // Keep only this worker's tiles; unowned tiles stay at the
        // background (their increments live in other shards' partials).
        let (shard, shards) = localization.shard;
        let tiles: Vec<_> = tiles
            .into_iter()
            .enumerate()
            .filter(|(t, _)| t % shards.max(1) == shard)
            .map(|(_, t)| t)
            .collect();

        // Solve tiles in parallel; each worker owns a disjoint slice of
        // the result vector, so no synchronization is needed.
        let mut increments: Vec<Result<Vec<f64>, AssimError>> = vec![Ok(Vec::new()); tiles.len()];
        let threads = localization.threads.clamp(1, tiles.len().max(1));
        // max(1): a shard owning no tile (more shards than tiles) still
        // needs a non-zero chunk size for `chunks`.
        let chunk = tiles.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (jobs, slots) in tiles.chunks(chunk).zip(increments.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (&(ix0, ix1, iy0, iy1), slot) in jobs.iter().zip(slots.iter_mut()) {
                        *slot = self.tile_increments(
                            background,
                            observations,
                            innovations,
                            localization.cutoff_radius_m,
                            (ix0, ix1),
                            (iy0, iy1),
                        );
                    }
                });
            }
        });

        let mut analysis = background.clone();
        let mut solves = 0u64;
        for (&(ix0, ix1, iy0, iy1), result) in tiles.iter().zip(increments) {
            let increment = result?;
            if increment.is_empty() {
                continue; // no observation in reach: background stands
            }
            solves += 1;
            let mut at = 0;
            for iy in iy0..iy1 {
                for ix in ix0..ix1 {
                    analysis.set(ix, iy, analysis.at(ix, iy) + increment[at]);
                    at += 1;
                }
            }
        }
        metrics.blue_passes.inc();
        metrics.blue_localized_passes.inc();
        metrics.blue_tile_solves.add(solves);
        metrics.blue_observations_merged.add(m as u64);
        Ok(analysis)
    }

    /// The analysis increments of one tile (row-major over the tile), or
    /// an empty vector when no observation is within reach.
    fn tile_increments(
        &self,
        background: &Grid,
        observations: &[PointObservation],
        innovations: &[f64],
        cutoff_m: f64,
        (ix0, ix1): (usize, usize),
        (iy0, iy1): (usize, usize),
    ) -> Result<Vec<f64>, AssimError> {
        // Centre of the tile's corner cell centres, and the radius of the
        // circle through them: an observation within `cutoff_m` of any
        // tile cell is within `cutoff_m + reach` of the centre.
        let corners = [
            background.cell_center(ix0, iy0),
            background.cell_center(ix1 - 1, iy0),
            background.cell_center(ix0, iy1 - 1),
            background.cell_center(ix1 - 1, iy1 - 1),
        ];
        let center = GeoPoint::new(
            (corners[0].lat + corners[3].lat) / 2.0,
            (corners[0].lon + corners[3].lon) / 2.0,
        );
        let reach = cutoff_m
            + corners
                .iter()
                .map(|c| center.distance_m(*c))
                .fold(0.0, f64::max);
        let local: Vec<usize> = (0..observations.len())
            .filter(|&i| observations[i].at.distance_m(center) <= reach)
            .collect();
        if local.is_empty() {
            return Ok(Vec::new());
        }

        let k = local.len();
        let s = Matrix::from_fn(k, k, |a, b| {
            let (i, j) = (local[a], local[b]);
            let mut v = self.covariance(observations[i].at, observations[j].at);
            if a == b {
                v += observations[i].sigma_db * observations[i].sigma_db;
            }
            v
        });
        let d: Vec<f64> = local.iter().map(|&i| innovations[i]).collect();
        let weights = s.solve_spd_blocked(&d)?;

        let mut increments = Vec::with_capacity((ix1 - ix0) * (iy1 - iy0));
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                let cell = background.cell_center(ix, iy);
                let mut v = 0.0;
                for (&i, w) in local.iter().zip(&weights) {
                    v += self.covariance(cell, observations[i].at) * w;
                }
                increments.push(v);
            }
        }
        Ok(increments)
    }

    /// Recombines partial sharded analyses (see [`Localization::shard`])
    /// into the full localized analysis: each cell takes the value of
    /// the partial that solved its tile, or the background where no
    /// partial touched it. Shard assignments are disjoint, so at most
    /// one partial differs from the background at any cell and the
    /// merge is exact — merging a full set of shards is bitwise equal
    /// to the unsharded [`Blue::analyse_localized`].
    ///
    /// # Panics
    ///
    /// Panics if a partial's grid dimensions differ from the
    /// background's.
    pub fn merge_shards(background: &Grid, partials: &[Grid]) -> Grid {
        let mut merged = background.clone();
        for partial in partials {
            assert!(
                partial.nx() == background.nx() && partial.ny() == background.ny(),
                "partial grid {}x{} does not match background {}x{}",
                partial.nx(),
                partial.ny(),
                background.nx(),
                background.ny()
            );
            for iy in 0..background.ny() {
                for ix in 0..background.nx() {
                    let value = partial.at(ix, iy);
                    if value != background.at(ix, iy) {
                        merged.set(ix, iy, value);
                    }
                }
            }
        }
        merged
    }

    /// Innovation statistics `(mean, rms)` of observations against a
    /// field — used to diagnose bias before/after calibration.
    pub fn innovation_stats(field: &Grid, observations: &[PointObservation]) -> (f64, f64) {
        let innovations: Vec<f64> = observations
            .iter()
            .filter_map(|o| field.sample(o.at).map(|hx| o.value_db - hx))
            .collect();
        if innovations.is_empty() {
            return (0.0, 0.0);
        }
        let n = innovations.len() as f64;
        let mean = innovations.iter().sum::<f64>() / n;
        let rms = (innovations.iter().map(|d| d * d).sum::<f64>() / n).sqrt();
        (mean, rms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::GeoBounds;

    fn bounds() -> GeoBounds {
        GeoBounds::paris()
    }

    fn background() -> Grid {
        Grid::constant(bounds(), 24, 24, 50.0)
    }

    #[test]
    fn covariance_at_zero_distance_is_variance() {
        let blue = Blue::new(3.0, 500.0);
        let p = GeoPoint::PARIS;
        assert!((blue.covariance(p, p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_decays_monotonically() {
        let blue = Blue::new(3.0, 500.0);
        let origin = GeoPoint::PARIS;
        let mut last = f64::INFINITY;
        for d in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            let p = GeoPoint::from_local_xy(origin, d, 0.0);
            let c = blue.covariance(origin, p);
            assert!(c <= last + 1e-12, "covariance must decay");
            assert!(c >= 0.0);
            last = c;
        }
    }

    #[test]
    fn analysis_moves_toward_observation() {
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 62.0, 2.0)];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        let at_obs = analysis.sample(GeoPoint::PARIS).unwrap();
        assert!(at_obs > 50.0 && at_obs <= 62.0, "{at_obs}");
        // With sigma_b=4 and sigma_o=2, the gain is 16/(16+4) = 0.8:
        // expected ≈ 50 + 0.8 * 12 = 59.6.
        assert!((at_obs - 59.6).abs() < 1.0, "{at_obs}");
    }

    #[test]
    fn correction_is_localised() {
        let blue = Blue::new(4.0, 500.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 70.0, 1.0)];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        // Far from the observation (many correlation radii), the field is
        // untouched.
        let far = GeoPoint::from_local_xy(GeoPoint::PARIS, 6_000.0, 0.0);
        if let Some(v) = analysis.sample(far) {
            assert!((v - 50.0).abs() < 0.5, "far field moved to {v}");
        }
    }

    #[test]
    fn trusted_observation_pulls_harder() {
        let blue = Blue::new(4.0, 800.0);
        let precise = blue
            .analyse(
                &background(),
                &[PointObservation::new(GeoPoint::PARIS, 62.0, 0.5)],
            )
            .unwrap()
            .sample(GeoPoint::PARIS)
            .unwrap();
        let noisy = blue
            .analyse(
                &background(),
                &[PointObservation::new(GeoPoint::PARIS, 62.0, 8.0)],
            )
            .unwrap()
            .sample(GeoPoint::PARIS)
            .unwrap();
        assert!(precise > noisy + 3.0, "precise {precise}, noisy {noisy}");
    }

    #[test]
    fn multiple_observations_all_pull() {
        let blue = Blue::new(4.0, 600.0);
        let a = GeoPoint::from_local_xy(GeoPoint::PARIS, -3_000.0, 0.0);
        let b = GeoPoint::from_local_xy(GeoPoint::PARIS, 3_000.0, 0.0);
        let obs = vec![
            PointObservation::new(a, 62.0, 2.0),
            PointObservation::new(b, 40.0, 2.0),
        ];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        assert!(analysis.sample(a).unwrap() > 55.0);
        assert!(analysis.sample(b).unwrap() < 45.0);
    }

    #[test]
    fn reduces_rmse_against_truth() {
        // Truth: a tilted plane. Background: flat 50. Observations of the
        // truth must pull the analysis toward it.
        let truth = Grid::from_fn(bounds(), 24, 24, |p| 50.0 + (p.lon - 2.3) * 100.0);
        let blue = Blue::new(4.0, 1_500.0);
        let mut observations = Vec::new();
        for i in 0..25 {
            let u = (i % 5) as f64 / 4.0;
            let v = (i / 5) as f64 / 4.0;
            let at = bounds().lerp(u * 0.9 + 0.05, v * 0.9 + 0.05);
            observations.push(PointObservation::new(at, truth.sample(at).unwrap(), 1.0));
        }
        let bg = background();
        let analysis = blue.analyse(&bg, &observations).unwrap();
        let before = bg.rmse(&truth);
        let after = analysis.rmse(&truth);
        assert!(after < before * 0.6, "rmse {before} -> {after}");
    }

    #[test]
    fn empty_observations_error() {
        let blue = Blue::new(4.0, 800.0);
        assert_eq!(
            blue.analyse(&background(), &[]).unwrap_err(),
            AssimError::NoObservations
        );
    }

    #[test]
    fn outside_observation_errors() {
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![PointObservation::new(GeoPoint::new(0.0, 0.0), 60.0, 2.0)];
        assert!(matches!(
            blue.analyse(&background(), &obs),
            Err(AssimError::ObservationOutsideGrid { .. })
        ));
    }

    #[test]
    fn duplicate_locations_still_solve() {
        // R on the diagonal keeps S positive definite even for co-located
        // observations.
        let blue = Blue::new(4.0, 800.0);
        let obs = vec![
            PointObservation::new(GeoPoint::PARIS, 60.0, 2.0),
            PointObservation::new(GeoPoint::PARIS, 64.0, 2.0),
        ];
        let analysis = blue.analyse(&background(), &obs).unwrap();
        let v = analysis.sample(GeoPoint::PARIS).unwrap();
        assert!(v > 55.0 && v < 64.0, "{v}");
    }

    #[test]
    fn localized_matches_global_on_clustered_observations() {
        let blue = Blue::new(4.0, 400.0);
        let obs: Vec<PointObservation> = (0..12)
            .map(|i| {
                let at = GeoPoint::from_local_xy(
                    GeoPoint::PARIS,
                    (i % 4) as f64 * 250.0,
                    (i / 4) as f64 * 250.0,
                );
                PointObservation::new(at, 55.0 + i as f64, 1.5)
            })
            .collect();
        let global = blue.analyse(&background(), &obs).unwrap();
        let localized = blue
            .analyse_localized(&background(), &obs, &Localization::for_radius(400.0))
            .unwrap();
        let max_dev = global
            .values()
            .iter()
            .zip(localized.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_dev <= 0.1, "max deviation {max_dev} dB");
    }

    #[test]
    fn localized_result_is_thread_count_invariant() {
        let blue = Blue::new(4.0, 400.0);
        let obs = vec![
            PointObservation::new(GeoPoint::PARIS, 62.0, 2.0),
            PointObservation::new(
                GeoPoint::from_local_xy(GeoPoint::PARIS, 2_000.0, 1_000.0),
                45.0,
                2.0,
            ),
        ];
        let loc = Localization::for_radius(400.0);
        let one = blue
            .analyse_localized(&background(), &obs, &loc.threads(1))
            .unwrap();
        let four = blue
            .analyse_localized(&background(), &obs, &loc.threads(4))
            .unwrap();
        assert_eq!(one, four, "tiles are disjoint and deterministic");
    }

    #[test]
    fn localized_far_tiles_keep_background() {
        // With a tight cutoff, tiles far from the lone observation have
        // no local observations and must return the background verbatim.
        let blue = Blue::new(4.0, 200.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 70.0, 1.0)];
        let localized = blue
            .analyse_localized(&background(), &obs, &Localization::new(1_000.0).tile(4))
            .unwrap();
        let far = GeoPoint::from_local_xy(GeoPoint::PARIS, 8_000.0, 0.0);
        if let Some(v) = localized.sample(far) {
            assert_eq!(v, 50.0, "untouched tile must equal the background");
        }
    }

    #[test]
    fn localized_errors_match_global_contract() {
        let blue = Blue::new(4.0, 800.0);
        let loc = Localization::for_radius(800.0);
        assert_eq!(
            blue.analyse_localized(&background(), &[], &loc)
                .unwrap_err(),
            AssimError::NoObservations
        );
        let outside = vec![PointObservation::new(GeoPoint::new(0.0, 0.0), 60.0, 2.0)];
        assert!(matches!(
            blue.analyse_localized(&background(), &outside, &loc),
            Err(AssimError::ObservationOutsideGrid { .. })
        ));
    }

    #[test]
    fn sharded_tiles_merge_to_the_full_analysis() {
        let blue = Blue::new(4.0, 400.0);
        let obs: Vec<PointObservation> = (0..9)
            .map(|i| {
                let at = GeoPoint::from_local_xy(
                    GeoPoint::PARIS,
                    ((i % 3) as f64 - 1.0) * 2_500.0,
                    ((i / 3) as f64 - 1.0) * 2_500.0,
                );
                PointObservation::new(at, 50.0 + i as f64, 1.5)
            })
            .collect();
        let loc = Localization::for_radius(400.0).tile(4);
        let full = blue.analyse_localized(&background(), &obs, &loc).unwrap();
        for shards in [1, 2, 3, 5] {
            let partials: Vec<Grid> = (0..shards)
                .map(|s| {
                    blue.analyse_localized(&background(), &obs, &loc.shard(s, shards))
                        .unwrap()
                })
                .collect();
            let merged = Blue::merge_shards(&background(), &partials);
            assert_eq!(merged, full, "{shards} shards");
        }
    }

    #[test]
    fn more_shards_than_tiles_still_merge() {
        // A 24×24 grid with 24-cell tiles has exactly one tile; shards
        // beyond the first own nothing and return the background.
        let blue = Blue::new(4.0, 400.0);
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 62.0, 2.0)];
        let loc = Localization::for_radius(400.0).tile(24);
        let full = blue.analyse_localized(&background(), &obs, &loc).unwrap();
        let partials: Vec<Grid> = (0..4)
            .map(|s| {
                blue.analyse_localized(&background(), &obs, &loc.shard(s, 4))
                    .unwrap()
            })
            .collect();
        assert_eq!(partials[1], background(), "unowned shard is background");
        assert_eq!(Blue::merge_shards(&background(), &partials), full);
    }

    #[test]
    #[should_panic(expected = "shard 2 of 2")]
    fn shard_index_must_be_in_range() {
        let _ = Localization::new(100.0).shard(2, 2);
    }

    #[test]
    #[should_panic(expected = "cutoff radius must be positive")]
    fn localization_rejects_zero_cutoff() {
        let _ = Localization::new(0.0);
    }

    #[test]
    fn innovation_stats_measure_bias() {
        let field = background();
        let obs = vec![
            PointObservation::new(GeoPoint::PARIS, 53.0, 1.0),
            PointObservation::new(
                GeoPoint::from_local_xy(GeoPoint::PARIS, 1_000.0, 0.0),
                53.0,
                1.0,
            ),
        ];
        let (mean, rms) = Blue::innovation_stats(&field, &obs);
        assert!((mean - 3.0).abs() < 1e-9);
        assert!((rms - 3.0).abs() < 1e-9);
        assert_eq!(Blue::innovation_stats(&field, &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn observation_rejects_zero_sigma() {
        let _ = PointObservation::new(GeoPoint::PARIS, 60.0, 0.0);
    }
}
