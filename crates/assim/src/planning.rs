//! Sensing planning and crowd-based inference (Section 8).
//!
//! Two of the paper's closing research directions, implemented on top of
//! the BLUE machinery:
//!
//! * "the sensing times and locations could be chosen accordingly, with
//!   the objective of collecting the most informative data while limiting
//!   energy consumption" — [`SensingPlanner`] greedily picks the
//!   locations where the analysis is most uncertain (maximum BLUE
//!   posterior variance), updating the uncertainty after each pick;
//! * "some missing data for one individual user may also be inferred from
//!   the crowd measurements" — [`infer_exposure`] reads a user's expected
//!   exposure along a trajectory off the crowd's hourly analysis, filling
//!   the gaps their own phone did not measure.

use crate::blue::{Blue, PointObservation};
use crate::hourly::DiurnalField;
use crate::matrix::Matrix;
use crate::AssimError;
use mps_types::{GeoPoint, SoundLevel};

/// Posterior-variance view of a BLUE analysis: how uncertain the analysed
/// field remains at each point, given the observation set.
///
/// For BLUE with background covariance `B` and innovation covariance
/// `S = H B Hᵀ + R`, the analysis-error variance at a point `p` is
/// `σ_b² − k(p)ᵀ S⁻¹ k(p)` with `k(p)_i = cov(p, obs_i)`.
#[derive(Debug, Clone)]
pub struct PosteriorVariance {
    blue: Blue,
    locations: Vec<GeoPoint>,
    /// Innovation covariance, refactored on each update (observation
    /// counts in planning are small).
    s: Matrix,
}

impl PosteriorVariance {
    /// Builds the posterior for an observation set.
    ///
    /// # Errors
    ///
    /// Returns [`AssimError::SingularCovariance`] if the innovation
    /// covariance cannot be factored.
    pub fn new(blue: Blue, observations: &[PointObservation]) -> Result<Self, AssimError> {
        let locations: Vec<GeoPoint> = observations.iter().map(|o| o.at).collect();
        let m = observations.len();
        let s = if m == 0 {
            Matrix::zeros(1, 1) // placeholder; variance() special-cases m = 0
        } else {
            let s = Matrix::from_fn(m, m, |i, j| {
                let mut v = blue.covariance(locations[i], locations[j]);
                if i == j {
                    v += observations[i].sigma_db * observations[i].sigma_db;
                }
                v
            });
            // Validate factorability once up front.
            s.solve_spd(&vec![0.0; m])?;
            s
        };
        Ok(Self { blue, locations, s })
    }

    /// Number of observations constraining the posterior.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether no observations constrain the posterior.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Analysis-error variance at `p` (dB²). Equals the background
    /// variance far from every observation and shrinks toward zero next
    /// to a trusted one.
    pub fn variance_at(&self, p: GeoPoint) -> f64 {
        let prior = self.blue.covariance(p, p);
        if self.locations.is_empty() {
            return prior;
        }
        let k: Vec<f64> = self
            .locations
            .iter()
            .map(|loc| self.blue.covariance(p, *loc))
            .collect();
        match self.s.solve_spd(&k) {
            Ok(w) => (prior - k.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>()).max(0.0),
            Err(_) => prior,
        }
    }
}

/// Greedy informativeness-driven sensing planner.
#[derive(Debug, Clone, Copy)]
pub struct SensingPlanner {
    /// BLUE parameters of the underlying analysis.
    pub blue: Blue,
    /// Observation error assumed for the *planned* measurements, dB.
    pub sigma_o_db: f64,
}

impl SensingPlanner {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_o_db` is not strictly positive.
    pub fn new(blue: Blue, sigma_o_db: f64) -> Self {
        assert!(sigma_o_db > 0.0, "sigma_o must be positive");
        Self { blue, sigma_o_db }
    }

    /// Picks `n` sensing locations from `candidates`, greedily maximising
    /// the current posterior variance and conditioning on each pick
    /// before the next (so picks spread out instead of clustering).
    ///
    /// # Errors
    ///
    /// Propagates [`AssimError::SingularCovariance`] from posterior
    /// updates.
    pub fn plan(
        &self,
        existing: &[PointObservation],
        candidates: &[GeoPoint],
        n: usize,
    ) -> Result<Vec<GeoPoint>, AssimError> {
        let mut virtual_obs: Vec<PointObservation> = existing.to_vec();
        let mut picks = Vec::with_capacity(n);
        for _ in 0..n.min(candidates.len()) {
            let posterior = PosteriorVariance::new(self.blue, &virtual_obs)?;
            let best = candidates
                .iter()
                .filter(|c| !picks.contains(*c))
                .max_by(|a, b| {
                    posterior
                        .variance_at(**a)
                        .partial_cmp(&posterior.variance_at(**b))
                        .expect("finite variances")
                });
            let Some(best) = best else { break };
            picks.push(*best);
            // Condition on the planned measurement (value irrelevant for
            // variance computations; 0 is a placeholder).
            virtual_obs.push(PointObservation::new(*best, 0.0, self.sigma_o_db));
        }
        Ok(picks)
    }
}

/// Infers a user's noise exposure along a trajectory from the crowd's
/// hourly analysis: for each `(point, hour)` visit the field is sampled,
/// and the visits combine into an energy-equivalent Leq — the crowd
/// filling in what the user's own phone did not measure.
///
/// Returns `None` if no visit falls inside the analysed area.
pub fn infer_exposure(field: &DiurnalField, trajectory: &[(GeoPoint, u32)]) -> Option<SoundLevel> {
    let levels: Vec<SoundLevel> = trajectory
        .iter()
        .filter_map(|(p, hour)| field.sample(*p, *hour).map(SoundLevel::new))
        .collect();
    if levels.is_empty() {
        None
    } else {
        Some(SoundLevel::leq(&levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;
    use crate::hourly::{DiurnalAnalysis, HourlyObservation};
    use crate::noise::NoiseSimulator;
    use mps_simcore::SimRng;
    use mps_types::GeoBounds;

    fn bounds() -> GeoBounds {
        GeoBounds::paris()
    }

    fn blue() -> Blue {
        Blue::new(4.0, 1_000.0)
    }

    #[test]
    fn posterior_variance_is_prior_without_observations() {
        let posterior = PosteriorVariance::new(blue(), &[]).unwrap();
        assert!(posterior.is_empty());
        let v = posterior.variance_at(GeoPoint::PARIS);
        assert!((v - 16.0).abs() < 1e-9, "prior variance {v}");
    }

    #[test]
    fn observations_reduce_variance_nearby() {
        let obs = vec![PointObservation::new(GeoPoint::PARIS, 55.0, 1.0)];
        let posterior = PosteriorVariance::new(blue(), &obs).unwrap();
        assert_eq!(posterior.len(), 1);
        let at_obs = posterior.variance_at(GeoPoint::PARIS);
        let far = posterior.variance_at(GeoPoint::from_local_xy(GeoPoint::PARIS, 8_000.0, 0.0));
        assert!(at_obs < 2.0, "variance at observation {at_obs}");
        assert!(far > 14.0, "variance far away {far}");
    }

    #[test]
    fn trusted_observations_reduce_variance_more() {
        let precise =
            PosteriorVariance::new(blue(), &[PointObservation::new(GeoPoint::PARIS, 55.0, 0.5)])
                .unwrap()
                .variance_at(GeoPoint::PARIS);
        let noisy =
            PosteriorVariance::new(blue(), &[PointObservation::new(GeoPoint::PARIS, 55.0, 6.0)])
                .unwrap()
                .variance_at(GeoPoint::PARIS);
        assert!(precise < noisy);
    }

    #[test]
    fn planner_spreads_picks() {
        // Candidates on a line; one existing observation at the west end.
        let west = bounds().lerp(0.1, 0.5);
        let existing = vec![PointObservation::new(west, 50.0, 1.0)];
        let candidates: Vec<GeoPoint> = (0..10)
            .map(|i| bounds().lerp(0.05 + 0.09 * i as f64, 0.5))
            .collect();
        let picks = SensingPlanner::new(blue(), 2.0)
            .plan(&existing, &candidates, 3)
            .unwrap();
        assert_eq!(picks.len(), 3);
        // First pick is far from the existing observation.
        assert!(west.distance_m(picks[0]) > 5_000.0, "first pick too close");
        // Picks are mutually distant (conditioning prevents clustering).
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(
                    picks[i].distance_m(picks[j]) > 1_500.0,
                    "picks {i} and {j} cluster"
                );
            }
        }
    }

    #[test]
    fn planned_points_reduce_total_uncertainty_more_than_clustered_ones() {
        let existing = vec![PointObservation::new(bounds().lerp(0.5, 0.5), 50.0, 1.0)];
        let candidates: Vec<GeoPoint> = (0..25)
            .map(|i| {
                bounds().lerp(
                    0.1 + 0.8 * (i % 5) as f64 / 4.0,
                    0.1 + 0.8 * (i / 5) as f64 / 4.0,
                )
            })
            .collect();
        let planner = SensingPlanner::new(blue(), 2.0);
        let picks = planner.plan(&existing, &candidates, 4).unwrap();

        let total_variance = |extra: &[GeoPoint]| {
            let mut obs = existing.clone();
            for p in extra {
                obs.push(PointObservation::new(*p, 0.0, 2.0));
            }
            let posterior = PosteriorVariance::new(blue(), &obs).unwrap();
            candidates
                .iter()
                .map(|c| posterior.variance_at(*c))
                .sum::<f64>()
        };
        // Clustered baseline: all four measurements at the same candidate.
        // Compare the *reduction* in summed variance each strategy buys
        // (with a 1 km correlation radius, absolute totals stay dominated
        // by far-away candidates).
        let clustered = vec![candidates[0]; 4];
        let baseline = total_variance(&[]);
        let planned_reduction = baseline - total_variance(&picks);
        let clustered_reduction = baseline - total_variance(&clustered);
        assert!(
            planned_reduction > 1.5 * clustered_reduction,
            "planned reduction {planned_reduction} vs clustered {clustered_reduction}"
        );
    }

    #[test]
    fn plan_handles_degenerate_inputs() {
        let planner = SensingPlanner::new(blue(), 2.0);
        assert!(planner.plan(&[], &[], 3).unwrap().is_empty());
        let one = vec![GeoPoint::PARIS];
        assert_eq!(planner.plan(&[], &one, 5).unwrap().len(), 1);
    }

    #[test]
    fn inferred_exposure_matches_field() {
        // Crowd analysis of a synthetic city; a user walks through it at
        // 18:00 without measuring — their exposure is inferred.
        let mut rng = SimRng::new(51);
        let city = CityModel::synthetic(bounds(), 4, 30, &mut rng);
        let sim = NoiseSimulator::new(city);
        let analysis = DiurnalAnalysis::new(blue(), 12, 12);
        let field = analysis.run(&sim, &[]).unwrap(); // pure model field

        let trajectory: Vec<(GeoPoint, u32)> = (0..8)
            .map(|i| (bounds().lerp(0.2 + 0.07 * i as f64, 0.5), 18))
            .collect();
        let inferred = infer_exposure(&field, &trajectory).unwrap();
        // Energy mean of the sampled levels, recomputed by hand.
        let by_hand = SoundLevel::leq(
            &trajectory
                .iter()
                .map(|(p, h)| SoundLevel::new(field.sample(*p, *h).unwrap()))
                .collect::<Vec<_>>(),
        );
        assert!((inferred.db() - by_hand.db()).abs() < 1e-9);
        assert!(inferred.db() > 30.0 && inferred.db() < 90.0);
    }

    #[test]
    fn inference_outside_area_is_none() {
        let mut rng = SimRng::new(53);
        let city = CityModel::synthetic(bounds(), 3, 10, &mut rng);
        let sim = NoiseSimulator::new(city);
        let field = DiurnalAnalysis::new(blue(), 8, 8).run(&sim, &[]).unwrap();
        assert_eq!(
            infer_exposure(&field, &[(GeoPoint::new(0.0, 0.0), 12)]),
            None
        );
        assert_eq!(infer_exposure(&field, &[]), None);
    }

    #[test]
    fn hourly_field_inference_tracks_time_of_day() {
        let mut rng = SimRng::new(55);
        let city = CityModel::synthetic(bounds(), 4, 30, &mut rng);
        let sim = NoiseSimulator::new(city);
        let field = DiurnalAnalysis::new(blue(), 12, 12).run(&sim, &[]).unwrap();
        let path: Vec<GeoPoint> = (0..5)
            .map(|i| bounds().lerp(0.3 + 0.1 * i as f64, 0.5))
            .collect();
        let day: Vec<(GeoPoint, u32)> = path.iter().map(|p| (*p, 18)).collect();
        let night: Vec<(GeoPoint, u32)> = path.iter().map(|p| (*p, 3)).collect();
        let day_leq = infer_exposure(&field, &day).unwrap();
        let night_leq = infer_exposure(&field, &night).unwrap();
        assert!(day_leq.db() > night_leq.db() + 4.0);
    }

    #[test]
    #[should_panic(expected = "sigma_o must be positive")]
    fn planner_rejects_bad_sigma() {
        let _ = SensingPlanner::new(blue(), 0.0);
    }
}
