//! The deployment replay: crowd → client → broker → GoFlow → storage.

use crate::config::ExperimentConfig;
use crate::dataset::Dataset;
use mps_broker::Broker;
use mps_docstore::Store;
use mps_goflow::{GoFlowServer, ObservationQuery, Role};
use mps_mobile::{transmission_latency, Device, DeviceConfig, GoFlowClient};
use mps_simcore::SimRng;
use mps_types::{AppId, AppVersion, GeoBounds, GeoPoint, SimTime};
use std::sync::Arc;

/// Seconds per 5-minute sensing slot.
const SLOT_SECS: i64 = 300;
/// Sensing slots per day.
const SLOTS_PER_DAY: i64 = 288;

struct Unit {
    device: Device,
    client: GoFlowClient,
    arrival_day: i64,
}

/// A runnable deployment: the full SoundCity system wired together with a
/// simulated crowd.
///
/// Construction registers the app and every user with the GoFlow server
/// (obtaining real sessions and routing keys); [`Deployment::run`] replays
/// the deployment day by day, 5-minute slot by slot:
///
/// 1. devices advance their activity/position models and capture
///    observations per their owner's diurnal participation profile;
/// 2. the versioned client sends (or buffers, or defers while
///    disconnected) through the broker topology of Figure 3;
/// 3. the server ingests each transfer after a sampled transport latency,
///    stamping arrival times — the delays of Figure 17;
/// 4. app versions roll out at the paper's schedule (v1.1 → v1.2.9 at
///    month 4 → v1.3 at month 9).
pub struct Deployment {
    config: ExperimentConfig,
    broker: Arc<Broker>,
    server: GoFlowServer,
    app: AppId,
    units: Vec<Unit>,
    latency_rng: SimRng,
    captured: u64,
}

/// Routing-key zone id for a home location: a 10×10 grid over Paris
/// (stand-in for the paper's `FR75013`-style country+zip codes).
fn zone_of(home: GeoPoint) -> String {
    let b = GeoBounds::paris();
    let u = ((home.lon - b.lon_min) / (b.lon_max - b.lon_min)).clamp(0.0, 0.999);
    let v = ((home.lat - b.lat_min) / (b.lat_max - b.lat_min)).clamp(0.0, 0.999);
    let ix = (u * 10.0) as usize;
    let iy = (v * 10.0) as usize;
    format!("FR75{:02}", iy * 10 + ix)
}

impl Deployment {
    /// Builds the deployment: broker, server, registered app, and one
    /// device + client + session per simulated user.
    ///
    /// # Panics
    ///
    /// Panics if the (fresh, in-process) server rejects registration —
    /// that would be a bug, not an environmental failure.
    pub fn new(config: ExperimentConfig) -> Self {
        let root = SimRng::new(config.seed);
        let broker = Arc::new(Broker::new());
        let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
        let app = AppId::soundcity();
        server.register_app(&app).expect("fresh server accepts app");

        let mut units = Vec::new();
        let mut arrival_rng = root.split("arrivals", 0);
        let mut next_id: u64 = 1;
        for model in &config.models {
            let profile_rate_inflation = config.rate_inflation();
            // Inflate the per-device rate to compensate for the arrival
            // ramp, keeping total volume on target.
            let rate = mps_mobile::ModelProfile::for_model(*model).measurements_per_device_day
                * profile_rate_inflation;
            for _ in 0..config.devices_for(*model) {
                let id = next_id;
                next_id += 1;
                let device = Device::new(DeviceConfig::new(id, *model).with_rate(rate), &root);
                let token = server
                    .register_user(&app, id.into(), Role::Contributor)
                    .expect("fresh user registers");
                let session = server.login(&token).expect("valid token logs in");
                let key = session.observation_key("noise", &zone_of(device.home()));
                let client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_1);
                let arrival_day = if config.arrival_window <= 0.0 {
                    0
                } else {
                    arrival_rng
                        .uniform_in(0.0, config.arrival_window * config.days() as f64)
                        .floor() as i64
                };
                units.push(Unit {
                    device,
                    client,
                    arrival_day,
                });
            }
        }

        Self {
            latency_rng: root.split("latency", 0),
            config,
            broker,
            server,
            app,
            units,
            captured: 0,
        }
    }

    /// The configuration this deployment was built with.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The GoFlow server (for queries, jobs, analytics).
    pub fn server(&self) -> &GoFlowServer {
        &self.server
    }

    /// The message broker.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The application id of the replayed app.
    pub fn app(&self) -> &AppId {
        &self.app
    }

    /// Number of simulated devices.
    pub fn device_count(&self) -> usize {
        self.units.len()
    }

    /// Replays the full deployment and returns the stored dataset.
    pub fn run(&mut self) -> Dataset {
        let days = self.config.days();
        for day in 0..days {
            self.run_day(day);
        }
        self.collect()
    }

    /// Replays a single day (exposed for incremental harnesses).
    pub fn run_day(&mut self, day: i64) {
        let month = day / 30;
        let target_version = AppVersion::active_in_month(month);
        for unit in &mut self.units {
            if unit.device.version() != target_version {
                unit.device.set_version(target_version);
                unit.client.upgrade(target_version);
            }
        }
        for slot in 0..SLOTS_PER_DAY {
            let t = SimTime::from_millis((day * SLOTS_PER_DAY + slot) * SLOT_SECS * 1000);
            for unit in &mut self.units {
                if unit.arrival_day > day {
                    continue;
                }
                if let Some(obs) = unit.device.maybe_capture(t) {
                    self.captured += 1;
                    unit.client.record(obs);
                }
                if unit.device.is_connected(t) && unit.client.wants_to_send() {
                    let version = unit.client.version();
                    let sent = unit
                        .client
                        .on_cycle(&self.broker, true)
                        .expect("session exchange exists");
                    if sent.transfers > 0 {
                        let latency = transmission_latency(version, &mut self.latency_rng);
                        self.server
                            .ingest_pending(&self.app, t + latency, sent.transfers)
                            .expect("registered app ingests");
                    }
                }
            }
        }
    }

    /// Gathers the dataset from server storage (callable after [`run`] or
    /// a partial sequence of [`run_day`] calls).
    ///
    /// [`run`]: Deployment::run
    /// [`run_day`]: Deployment::run_day
    pub fn collect(&self) -> Dataset {
        let docs = self
            .server
            .query(&self.app, &ObservationQuery::new())
            .expect("registered app queries");
        let undelivered: u64 = self.units.iter().map(|u| u.client.pending() as u64).sum();
        Dataset::from_documents(
            &docs,
            self.units.len() as u64,
            self.captured,
            undelivered,
            self.broker.metrics(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::DeviceModel;

    #[test]
    fn zone_ids_are_routing_safe() {
        let b = GeoBounds::paris();
        for (u, v) in [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)] {
            let zone = zone_of(b.lerp(u, v));
            assert!(zone.starts_with("FR75"));
            assert!(zone.chars().all(|c| c.is_ascii_alphanumeric()));
        }
        assert_eq!(zone_of(b.lerp(0.0, 0.0)), "FR7500");
        assert_eq!(zone_of(b.lerp(0.99, 0.99)), "FR7599");
    }

    #[test]
    fn tiny_deployment_runs_end_to_end() {
        let mut deployment = Deployment::new(ExperimentConfig::tiny());
        assert_eq!(deployment.device_count(), 3);
        let dataset = deployment.run();
        assert!(dataset.stored() > 100, "stored {}", dataset.stored());
        // Everything stored went through the broker.
        assert!(dataset.broker_metrics.published > 0);
        assert_eq!(
            dataset.stored() + dataset.undelivered,
            dataset.captured,
            "conservation: captured = stored + pending"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let a = Deployment::new(ExperimentConfig::tiny()).run();
        let b = Deployment::new(ExperimentConfig::tiny()).run();
        assert_eq!(a.stored(), b.stored());
        assert_eq!(a.observations, b.observations);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Deployment::new(ExperimentConfig::tiny()).run();
        let b = Deployment::new(ExperimentConfig::tiny().with_seed(999)).run();
        assert_ne!(a.observations, b.observations);
    }

    #[test]
    fn localized_fraction_is_plausible() {
        let dataset = Deployment::new(ExperimentConfig::tiny()).run();
        let frac = dataset.localized_fraction();
        // The three tiny models have paper fractions 0.43 / 0.56 / 0.63;
        // allow wide sampling slack.
        assert!((0.3..0.75).contains(&frac), "localized {frac}");
    }

    #[test]
    fn versions_roll_out_on_schedule() {
        let config = ExperimentConfig::tiny()
            .with_months(10)
            .with_models(vec![DeviceModel::LgeNexus5]);
        let mut deployment = Deployment::new(config);
        let dataset = deployment.run();
        let versions: std::collections::BTreeSet<AppVersion> =
            dataset.observations.iter().map(|o| o.app_version).collect();
        assert!(versions.contains(&AppVersion::V1_1));
        assert!(versions.contains(&AppVersion::V1_2_9));
        assert!(versions.contains(&AppVersion::V1_3));
        // Capture months must respect the rollout boundaries.
        for obs in &dataset.observations {
            let month = obs.captured_at.month();
            assert_eq!(obs.app_version, AppVersion::active_in_month(month));
        }
    }

    #[test]
    fn arrivals_stagger_first_contributions() {
        let config = ExperimentConfig::tiny().with_months(2);
        let mut deployment = Deployment::new(config);
        let dataset = deployment.run();
        let first_day = dataset
            .observations
            .iter()
            .map(|o| o.captured_at.day())
            .min()
            .unwrap();
        assert!(first_day <= 10, "someone starts early, got {first_day}");
    }

    #[test]
    fn pseudonyms_hide_raw_ids() {
        let dataset = Deployment::new(ExperimentConfig::tiny()).run();
        // Raw device ids are 1..=3; stored ids are pseudonyms.
        assert!(dataset.observations.iter().all(|o| o.device.raw() > 1_000));
    }

    #[test]
    fn partial_replay_collects_prefix() {
        let config = ExperimentConfig {
            arrival_window: 0.0, // everyone active from day 0
            ..ExperimentConfig::tiny()
        };
        let mut deployment = Deployment::new(config);
        deployment.run_day(0);
        deployment.run_day(1);
        let partial = deployment.collect();
        assert!(partial.stored() > 0);
        assert!(partial
            .observations
            .iter()
            .all(|o| o.captured_at.day() <= 1));
    }
}
