//! The dataset produced by a deployment replay.

use mps_broker::MetricsSnapshot;
use mps_types::{
    Activity, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation,
    SensingMode, SimTime, SoundLevel,
};
use serde_json::Value;

/// Everything a replay leaves behind: the observations *as stored by the
/// server* (pseudonymised ids, arrival stamps), plus pipeline-level
/// counters.
///
/// The observations are reconstructed from the GoFlow storage documents,
/// so every figure computed from a `Dataset` has travelled the full
/// client → broker → ingest → store → query pipeline.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Stored observations. Device/user ids are pseudonyms (stable within
    /// the dataset), exactly as the privacy policy stores them.
    pub observations: Vec<Observation>,
    /// Devices simulated.
    pub devices: u64,
    /// Observations captured on phones (delivered or not).
    pub captured: u64,
    /// Observations still undelivered at the end of the replay (pending
    /// in client buffers).
    pub undelivered: u64,
    /// Broker counters at the end of the replay.
    pub broker_metrics: MetricsSnapshot,
}

fn parse_observation(doc: &Value) -> Option<Observation> {
    let model: DeviceModel = doc.get("model")?.as_str()?.parse().ok()?;
    let captured = SimTime::from_millis(doc.get("captured_ms")?.as_i64()?);
    let arrived = SimTime::from_millis(doc.get("arrived_ms")?.as_i64()?);
    let spl = SoundLevel::new(doc.get("spl")?.as_f64()?);
    let activity: Activity = doc.get("activity")?.as_str()?.parse().ok()?;
    let mode: SensingMode = doc.get("mode")?.as_str()?.parse().ok()?;
    let version: AppVersion = doc.get("app_version")?.as_str()?.parse().ok()?;
    let device = doc.get("device")?.as_u64()?;
    let user = doc.get("user")?.as_u64()?;

    let mut builder = Observation::builder()
        .device(device.into())
        .user(user.into())
        .model(model)
        .captured_at(captured)
        .arrived_at(arrived)
        .spl(spl)
        .activity(activity)
        .mode(mode)
        .app_version(version);

    if doc.get("localized")?.as_bool()? {
        let provider: LocationProvider = doc.get("provider")?.as_str()?.parse().ok()?;
        let accuracy = doc.get("accuracy")?.as_f64()?;
        let lat = doc.get("lat")?.as_f64()?;
        let lon = doc.get("lon")?.as_f64()?;
        builder = builder.location(LocationFix::new(
            GeoPoint::new(lat, lon),
            accuracy,
            provider,
        ));
    }
    Some(builder.build())
}

impl Dataset {
    /// Reconstructs typed observations from GoFlow storage documents.
    /// Documents that do not decode (foreign schema) are skipped.
    pub fn from_documents(
        docs: &[Value],
        devices: u64,
        captured: u64,
        undelivered: u64,
        broker_metrics: MetricsSnapshot,
    ) -> Self {
        let observations = docs.iter().filter_map(parse_observation).collect();
        Self {
            observations,
            devices,
            captured,
            undelivered,
            broker_metrics,
        }
    }

    /// Stored (delivered) observation count.
    pub fn stored(&self) -> u64 {
        self.observations.len() as u64
    }

    /// Fraction of stored observations that carry a location fix.
    pub fn localized_fraction(&self) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        self.observations
            .iter()
            .filter(|o| o.is_localized())
            .count() as f64
            / self.observations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(localized: bool) -> Value {
        json!({
            "device": 111, "user": 222,
            "model": "LGE NEXUS 5",
            "captured_ms": 1_000_000, "arrived_ms": 1_009_000, "delay_ms": 9_000,
            "hour": 0, "day": 0, "month": 0,
            "spl": 61.5,
            "localized": localized,
            "provider": if localized { json!("gps") } else { Value::Null },
            "accuracy": if localized { json!(12.5) } else { Value::Null },
            "lat": if localized { json!(48.85) } else { Value::Null },
            "lon": if localized { json!(2.35) } else { Value::Null },
            "activity": "still",
            "mode": "manual",
            "app_version": "1.2.9",
        })
    }

    #[test]
    fn parses_localized_document() {
        let ds = Dataset::from_documents(&[doc(true)], 1, 1, 0, MetricsSnapshot::default());
        assert_eq!(ds.stored(), 1);
        let obs = &ds.observations[0];
        assert_eq!(obs.model, DeviceModel::LgeNexus5);
        assert_eq!(obs.device.raw(), 111);
        assert_eq!(obs.spl.db(), 61.5);
        assert_eq!(obs.mode, SensingMode::Manual);
        assert_eq!(obs.app_version, AppVersion::V1_2_9);
        let fix = obs.location.as_ref().unwrap();
        assert_eq!(fix.provider, LocationProvider::Gps);
        assert_eq!(fix.accuracy_m, 12.5);
        assert_eq!(obs.delay().unwrap().as_secs(), 9);
        assert_eq!(ds.localized_fraction(), 1.0);
    }

    #[test]
    fn parses_unlocalized_document() {
        let ds = Dataset::from_documents(&[doc(false)], 1, 1, 0, MetricsSnapshot::default());
        assert_eq!(ds.stored(), 1);
        assert!(!ds.observations[0].is_localized());
        assert_eq!(ds.localized_fraction(), 0.0);
    }

    #[test]
    fn skips_undecodable_documents() {
        let ds = Dataset::from_documents(
            &[json!({"garbage": true}), doc(true)],
            1,
            2,
            0,
            MetricsSnapshot::default(),
        );
        assert_eq!(ds.stored(), 1);
    }

    #[test]
    fn empty_dataset_fractions() {
        let ds = Dataset::from_documents(&[], 0, 0, 0, MetricsSnapshot::default());
        assert_eq!(ds.localized_fraction(), 0.0);
        assert_eq!(ds.stored(), 0);
    }
}
