//! The battery-depletion lab (Figure 16).
//!
//! The paper's protocol (Section 5.3): phones charged to 80 % (the first
//! 20 % of battery is non-linear), running from 10:00 to 17:00 with the
//! screen periodically activated, measurements every minute (10× the
//! default app frequency), and transfers after every measurement
//! (unbuffered) or every 10 measurements (buffered). Scenarios: no MPS
//! app, unbuffered on Wi-Fi, unbuffered on 3G, buffered on Wi-Fi.

use mps_mobile::{BatteryModel, BatteryParams, RadioKind};
use mps_types::SimDuration;
use std::fmt;

/// One measured scenario of the lab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatteryScenario {
    /// Baseline: phone idling with periodic activations, no MPS app.
    NoApp,
    /// Unbuffered client transferring over Wi-Fi.
    UnbufferedWifi,
    /// Unbuffered client transferring over 3G.
    Unbuffered3g,
    /// Buffered client (10 measurements per transfer) over Wi-Fi.
    BufferedWifi,
}

impl BatteryScenario {
    /// All scenarios, in the paper's comparison order.
    pub const ALL: [BatteryScenario; 4] = [
        BatteryScenario::NoApp,
        BatteryScenario::UnbufferedWifi,
        BatteryScenario::Unbuffered3g,
        BatteryScenario::BufferedWifi,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BatteryScenario::NoApp => "no MPS app",
            BatteryScenario::UnbufferedWifi => "unbuffered, WiFi",
            BatteryScenario::Unbuffered3g => "unbuffered, 3G",
            BatteryScenario::BufferedWifi => "buffered x10, WiFi",
        }
    }
}

/// The lab: runs the protocol for each scenario.
#[derive(Debug, Clone)]
pub struct BatteryLab {
    params: BatteryParams,
    /// Experiment length in hours (paper: 10:00–17:00 = 7).
    pub hours: i64,
    /// Starting state of charge (paper: 80 %).
    pub initial_soc: f64,
    /// Measurement period in minutes (paper's intensive mode: 1).
    pub measurement_period_min: i64,
}

/// Results: per-scenario depletion and per-timestep SOC traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryLabReport {
    /// `(scenario, depletion in SOC percentage points, hourly SOC trace)`.
    pub rows: Vec<(BatteryScenario, f64, Vec<f64>)>,
}

impl BatteryLab {
    /// Creates the paper-protocol lab.
    pub fn new() -> Self {
        Self {
            params: BatteryParams::default(),
            hours: 7,
            initial_soc: 0.8,
            measurement_period_min: 1,
        }
    }

    /// Overrides the energy-model parameters.
    pub fn with_params(mut self, params: BatteryParams) -> Self {
        self.params = params;
        self
    }

    /// Runs one scenario; returns `(depletion_points, hourly SOC trace)`.
    pub fn run_scenario(&self, scenario: BatteryScenario) -> (f64, Vec<f64>) {
        let (radio, buffer): (Option<RadioKind>, usize) = match scenario {
            BatteryScenario::NoApp => (None, 1),
            BatteryScenario::UnbufferedWifi => (Some(RadioKind::Wifi), 1),
            BatteryScenario::Unbuffered3g => (Some(RadioKind::ThreeG), 1),
            BatteryScenario::BufferedWifi => (Some(RadioKind::Wifi), 10),
        };
        let mut battery = BatteryModel::new(self.params, self.initial_soc);
        let start = battery.soc();
        let mut trace = vec![start * 100.0];
        let minutes = self.hours * 60;
        let mut since_transfer = 0usize;
        for minute in 1..=minutes {
            battery.drain_idle(SimDuration::from_mins(1));
            if minute % self.measurement_period_min == 0 {
                if let Some(radio) = radio {
                    battery.drain_measurement(true);
                    since_transfer += 1;
                    if since_transfer >= buffer {
                        battery.drain_transfer(radio, since_transfer);
                        since_transfer = 0;
                    }
                }
            }
            if minute % 60 == 0 {
                trace.push(battery.soc() * 100.0);
            }
        }
        ((start - battery.soc()) * 100.0, trace)
    }

    /// Runs all four scenarios.
    pub fn run(&self) -> BatteryLabReport {
        BatteryLabReport {
            rows: BatteryScenario::ALL
                .iter()
                .map(|s| {
                    let (depletion, trace) = self.run_scenario(*s);
                    (*s, depletion, trace)
                })
                .collect(),
        }
    }
}

impl Default for BatteryLab {
    fn default() -> Self {
        Self::new()
    }
}

impl BatteryLabReport {
    /// Depletion (SOC points) of one scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is missing from the report.
    pub fn depletion(&self, scenario: BatteryScenario) -> f64 {
        self.rows
            .iter()
            .find(|(s, _, _)| *s == scenario)
            .map(|(_, d, _)| *d)
            .expect("scenario in report")
    }

    /// Ratio of a scenario's depletion to the no-app baseline.
    pub fn ratio_to_baseline(&self, scenario: BatteryScenario) -> f64 {
        self.depletion(scenario) / self.depletion(BatteryScenario::NoApp)
    }
}

impl fmt::Display for BatteryLabReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:>12} {:>12}",
            "scenario", "depletion", "vs no-app"
        )?;
        for (scenario, depletion, _) in &self.rows {
            writeln!(
                f,
                "{:<20} {:>10.1}pp {:>11.2}x",
                scenario.label(),
                depletion,
                self.ratio_to_baseline(*scenario)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_orderings_reproduce() {
        let report = BatteryLab::new().run();
        let no_app = report.depletion(BatteryScenario::NoApp);
        let wifi = report.depletion(BatteryScenario::UnbufferedWifi);
        let threeg = report.depletion(BatteryScenario::Unbuffered3g);
        let buffered = report.depletion(BatteryScenario::BufferedWifi);

        assert!(no_app < buffered && buffered < wifi && wifi < threeg);
        // Unbuffered Wi-Fi ≈ 2× no-app.
        let r = report.ratio_to_baseline(BatteryScenario::UnbufferedWifi);
        assert!((1.7..2.3).contains(&r), "wifi ratio {r}");
        // 3G ≈ +50 % over unbuffered Wi-Fi.
        let r = threeg / wifi;
        assert!((1.35..1.65).contains(&r), "3g ratio {r}");
        // Buffered < +50 % over no-app.
        let r = report.ratio_to_baseline(BatteryScenario::BufferedWifi);
        assert!(r < 1.5, "buffered ratio {r}");
    }

    #[test]
    fn traces_are_monotone_decreasing() {
        let report = BatteryLab::new().run();
        for (scenario, _, trace) in &report.rows {
            assert_eq!(trace.len() as i64, 7 + 1, "{scenario:?}");
            for pair in trace.windows(2) {
                assert!(pair[1] <= pair[0], "{scenario:?}: SOC must not rise");
            }
            assert!((trace[0] - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn intensive_mode_depletes_more_than_default() {
        let intensive = BatteryLab::new();
        let default_rate = BatteryLab {
            measurement_period_min: 5,
            ..BatteryLab::new()
        };
        let a = intensive.run_scenario(BatteryScenario::UnbufferedWifi).0;
        let b = default_rate.run_scenario(BatteryScenario::UnbufferedWifi).0;
        assert!(a > b * 1.3, "intensive {a} vs default {b}");
    }

    #[test]
    fn display_lists_scenarios() {
        let s = BatteryLab::new().run().to_string();
        for scenario in BatteryScenario::ALL {
            assert!(s.contains(scenario.label()), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "scenario in report")]
    fn missing_scenario_panics() {
        let report = BatteryLabReport { rows: vec![] };
        let _ = report.depletion(BatteryScenario::NoApp);
    }
}
