//! # mps-core — SoundCity experiment orchestration
//!
//! This crate replays the paper's 10-month Paris deployment end-to-end on
//! the simulated substrate, and hosts the controlled lab harnesses:
//!
//! * [`ExperimentConfig`] / [`Deployment`] — wires a scaled crowd of
//!   simulated devices ([`mps_mobile`]) to the GoFlow server
//!   ([`mps_goflow`]) over the broker ([`mps_broker`]), replays the
//!   deployment (user arrivals, app-version rollouts, sensing cycles,
//!   disconnections, ingest) and returns the stored [`Dataset`] —
//!   the input of every figure builder in [`mps_analytics`].
//! * [`BatteryLab`] — the Figure 16 battery-depletion protocol
//!   (no-app / unbuffered Wi-Fi / unbuffered 3G / buffered).
//! * [`CalibrationStudy`] — the Section 5.2 / Figure 4 workflows:
//!   per-model calibration from calibration parties, BLUE assimilation of
//!   crowd observations against a simulated noise map, and the
//!   calibration-granularity ablation (none vs per-model vs per-device).
//!
//! # Examples
//!
//! ```
//! use mps_core::{Deployment, ExperimentConfig};
//!
//! let mut deployment = Deployment::new(ExperimentConfig::tiny());
//! let dataset = deployment.run();
//! assert!(!dataset.observations.is_empty());
//! ```

mod battery_lab;
mod calibration_study;
mod config;
mod dataset;
mod deployment;

pub use battery_lab::{BatteryLab, BatteryLabReport, BatteryScenario};
pub use calibration_study::{AssimilationOutcome, CalibrationStrategy, CalibrationStudy};
pub use config::ExperimentConfig;
pub use dataset::Dataset;
pub use deployment::Deployment;
