//! Experiment configuration.

use mps_types::DeviceModel;

/// Configuration of a deployment replay.
///
/// The replay scales the paper's crowd by `scale`: each model contributes
/// `max(1, round(devices × scale))` simulated devices. Users arrive over
/// the first `arrival_window` fraction of the deployment (the user base
/// grows, as in Figure 8), and per-device rates are inflated to keep the
/// *expected total volume* at `scale ×` the paper's 23.1 M observations.
///
/// # Examples
///
/// ```
/// use mps_core::ExperimentConfig;
///
/// let config = ExperimentConfig::quick().with_seed(7);
/// assert_eq!(config.seed, 7);
/// assert!(config.months <= 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Root seed; everything derives from it deterministically.
    pub seed: u64,
    /// Deployment length in 30-day months (the paper ran 10).
    pub months: i64,
    /// Crowd scale relative to the paper's 2 091 devices.
    pub scale: f64,
    /// Models to simulate (defaults to the full top-20).
    pub models: Vec<DeviceModel>,
    /// Fraction of the deployment during which new users keep arriving.
    pub arrival_window: f64,
}

impl ExperimentConfig {
    /// The paper-shaped configuration: all 20 models, 10 months, crowd
    /// scaled 1/100 (≈ 231 k expected observations). Heavy — use from
    /// benches and the `figures` harness, not unit tests.
    pub fn paper_scaled() -> Self {
        Self {
            seed: 2016,
            months: 10,
            scale: 0.01,
            models: DeviceModel::ALL.to_vec(),
            arrival_window: 0.9,
        }
    }

    /// A light configuration for examples and integration tests: all 20
    /// models (one device each may be forced by the min-1 rule), 2
    /// months.
    pub fn quick() -> Self {
        Self {
            seed: 2016,
            months: 2,
            scale: 0.0005,
            models: DeviceModel::ALL.to_vec(),
            arrival_window: 0.5,
        }
    }

    /// A minimal configuration for unit tests: 3 models, 15 days.
    pub fn tiny() -> Self {
        Self {
            seed: 2016,
            months: 1,
            scale: 0.0005,
            models: vec![
                DeviceModel::SamsungGtI9505,
                DeviceModel::OneplusA0001,
                DeviceModel::LgeNexus5,
            ],
            arrival_window: 0.3,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the deployment length.
    ///
    /// # Panics
    ///
    /// Panics if `months < 1`.
    pub fn with_months(mut self, months: i64) -> Self {
        assert!(months >= 1, "deployment needs at least one month");
        self.months = months;
        self
    }

    /// Replaces the crowd scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.scale = scale;
        self
    }

    /// Restricts the simulated models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn with_models(mut self, models: Vec<DeviceModel>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        self.models = models;
        self
    }

    /// Deployment length in days.
    pub fn days(&self) -> i64 {
        self.months * 30
    }

    /// Number of devices simulated for one model under this scale.
    pub fn devices_for(&self, model: DeviceModel) -> u64 {
        let scaled = model.paper_stats().devices as f64 * self.scale;
        (scaled.round() as u64).max(1)
    }

    /// Total simulated devices.
    pub fn total_devices(&self) -> u64 {
        self.models.iter().map(|m| self.devices_for(*m)).sum()
    }

    /// Rate-inflation factor compensating for late arrivals: a user
    /// arriving uniformly in the arrival window is active for
    /// `1 − window/2` of the deployment on average.
    pub fn rate_inflation(&self) -> f64 {
        1.0 / (1.0 - self.arrival_window / 2.0)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_covers_all_models() {
        let c = ExperimentConfig::paper_scaled();
        assert_eq!(c.models.len(), 20);
        assert_eq!(c.days(), 300);
        // 1/100 of 2 091 with per-model min-1 rounding: close to 21.
        let total = c.total_devices();
        assert!((18..=30).contains(&total), "total {total}");
    }

    #[test]
    fn devices_for_has_min_one() {
        let c = ExperimentConfig::tiny();
        for m in &c.models {
            assert!(c.devices_for(*m) >= 1);
        }
    }

    #[test]
    fn devices_scale_proportionally() {
        let c = ExperimentConfig::paper_scaled().with_scale(0.1);
        // SAMSUNG GT-I9505 has 253 devices -> 25.
        assert_eq!(c.devices_for(DeviceModel::SamsungGtI9505), 25);
    }

    #[test]
    fn rate_inflation_compensates_window() {
        let c = ExperimentConfig::paper_scaled();
        assert!((c.rate_inflation() - 1.0 / 0.55).abs() < 1e-12);
        let no_window = ExperimentConfig {
            arrival_window: 0.0,
            ..ExperimentConfig::paper_scaled()
        };
        assert_eq!(no_window.rate_inflation(), 1.0);
    }

    #[test]
    fn builder_methods() {
        let c = ExperimentConfig::quick()
            .with_seed(1)
            .with_months(3)
            .with_scale(0.02)
            .with_models(vec![DeviceModel::LgeNexus4]);
        assert_eq!(c.seed, 1);
        assert_eq!(c.months, 3);
        assert_eq!(c.scale, 0.02);
        assert_eq!(c.models, vec![DeviceModel::LgeNexus4]);
    }

    #[test]
    #[should_panic(expected = "at least one month")]
    fn rejects_zero_months() {
        let _ = ExperimentConfig::quick().with_months(0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_bad_scale() {
        let _ = ExperimentConfig::quick().with_scale(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn rejects_empty_models() {
        let _ = ExperimentConfig::quick().with_models(vec![]);
    }

    #[test]
    fn default_is_paper_scaled() {
        assert_eq!(
            ExperimentConfig::default(),
            ExperimentConfig::paper_scaled()
        );
    }
}
