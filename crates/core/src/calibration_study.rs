//! Calibration + assimilation workflows (Section 5.2, Figures 4–5).
//!
//! The study builds a synthetic city, simulates its *true* noise map,
//! generates biased phone measurements of that truth (per-model sensor
//! offsets + per-device jitter + noise, as in `mps-mobile`), calibrates,
//! and assimilates. It quantifies two of the paper's claims:
//!
//! * **per-model calibration suffices** — de-biasing with a model-level
//!   estimate recovers nearly all of the accuracy of (oracle) per-device
//!   calibration, and both beat no calibration;
//! * **complaints correlate with noise** (Figure 4) — via the complaint
//!   point process.

use mps_assim::{
    Blue, CalibrationDatabase, CityModel, ComplaintProcess, Grid, NoiseSimulator, PointObservation,
};
use mps_mobile::{Microphone, ModelProfile};
use mps_simcore::SimRng;
use mps_types::{DeviceModel, GeoBounds, GeoPoint, SoundLevel};
use std::collections::BTreeMap;
use std::fmt;

/// How observations are de-biased before assimilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CalibrationStrategy {
    /// Raw measurements, default (large) observation error.
    None,
    /// Per-model bias from the calibration database (the paper's choice).
    PerModel,
    /// Oracle per-device bias (upper bound on what calibration can do).
    PerDevice,
}

impl CalibrationStrategy {
    /// All strategies, weakest first.
    pub const ALL: [CalibrationStrategy; 3] = [
        CalibrationStrategy::None,
        CalibrationStrategy::PerModel,
        CalibrationStrategy::PerDevice,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CalibrationStrategy::None => "uncalibrated",
            CalibrationStrategy::PerModel => "per-model",
            CalibrationStrategy::PerDevice => "per-device (oracle)",
        }
    }
}

/// Result of one assimilation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssimilationOutcome {
    /// RMSE of the background (the imperfect forward model) vs truth, dB.
    pub rmse_background: f64,
    /// RMSE of the analysis vs truth, dB.
    pub rmse_analysis: f64,
    /// Mean innovation (observation bias signal) before correction, dB.
    pub innovation_bias: f64,
}

impl fmt::Display for AssimilationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "background RMSE {:.2} dB -> analysis RMSE {:.2} dB (innovation bias {:+.2} dB)",
            self.rmse_background, self.rmse_analysis, self.innovation_bias
        )
    }
}

struct SyntheticObservation {
    at: GeoPoint,
    model: DeviceModel,
    device_bias_db: f64,
    measured_db: f64,
}

/// The calibration/assimilation study harness.
pub struct CalibrationStudy {
    seed: u64,
    grid_n: usize,
    n_devices_per_model: usize,
    n_obs_per_device: usize,
    n_party_samples: usize,
    models: Vec<DeviceModel>,
    bounds: GeoBounds,
}

impl CalibrationStudy {
    /// Creates the study with laptop-scale defaults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            grid_n: 24,
            n_devices_per_model: 4,
            n_obs_per_device: 30,
            n_party_samples: 40,
            models: vec![
                DeviceModel::SamsungGtI9505,
                DeviceModel::SonyD5803,
                DeviceModel::LgeNexus5,
                DeviceModel::OneplusA0001,
                DeviceModel::SamsungGtI9300,
            ],
            bounds: GeoBounds::paris(),
        }
    }

    /// Restricts/expands the participating models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn with_models(mut self, models: Vec<DeviceModel>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        self.models = models;
        self
    }

    fn truth_and_background(&self, rng: &mut SimRng) -> (Grid, Grid) {
        let city = CityModel::synthetic(self.bounds, 5, 40, rng);
        let truth = NoiseSimulator::new(city.clone()).simulate(self.grid_n, self.grid_n);
        // The imperfect forward model: its traffic inventory underestimates
        // emissions (uncertain input data, as the paper notes) and it does
        // not know the venues at all.
        let misjudged_roads = city
            .roads()
            .iter()
            .map(|r| mps_assim::Road {
                a: r.a,
                b: r.b,
                emission_db: r.emission_db - 5.0,
            })
            .collect();
        let roads_only = CityModel::new(self.bounds, misjudged_roads, vec![]);
        let background = NoiseSimulator::new(roads_only).simulate(self.grid_n, self.grid_n);
        (truth, background)
    }

    fn synthesize_observations(&self, truth: &Grid, rng: &mut SimRng) -> Vec<SyntheticObservation> {
        let mut observations = Vec::new();
        for model in &self.models {
            let profile = ModelProfile::for_model(*model);
            for d in 0..self.n_devices_per_model {
                let mut dev_rng = rng.split("study-device", (model.index() * 100 + d) as u64);
                let mic = Microphone::for_device(&profile, &mut dev_rng);
                for _ in 0..self.n_obs_per_device {
                    let at = self.bounds.lerp(
                        dev_rng.uniform_in(0.05, 0.95),
                        dev_rng.uniform_in(0.05, 0.95),
                    );
                    let true_db = truth.sample(at).expect("inside bounds");
                    let measured = mic.measure(SoundLevel::new(true_db), &mut dev_rng);
                    observations.push(SyntheticObservation {
                        at,
                        model: *model,
                        device_bias_db: mic.bias_db(),
                        measured_db: measured.db(),
                    });
                }
            }
        }
        observations
    }

    fn calibration_parties(&self, truth: &Grid, rng: &mut SimRng) -> CalibrationDatabase {
        let mut db = CalibrationDatabase::new();
        for model in &self.models {
            let profile = ModelProfile::for_model(*model);
            // Several users of the model attend; each brings their phone
            // next to the reference sound-level meter.
            for d in 0..self.n_devices_per_model {
                let mut dev_rng = rng.split("party-device", (model.index() * 100 + d) as u64);
                let mic = Microphone::for_device(&profile, &mut dev_rng);
                for _ in 0..self.n_party_samples / self.n_devices_per_model {
                    let at = self
                        .bounds
                        .lerp(dev_rng.uniform_in(0.2, 0.8), dev_rng.uniform_in(0.2, 0.8));
                    let reference = truth.sample(at).expect("inside bounds");
                    let measured = mic.measure(SoundLevel::new(reference), &mut dev_rng);
                    db.record(*model, SoundLevel::new(reference), measured);
                }
            }
        }
        db
    }

    /// Runs the full workflow under one calibration strategy.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (observations are
    /// generated inside the grid by construction).
    pub fn run(&self, strategy: CalibrationStrategy) -> AssimilationOutcome {
        let mut rng = SimRng::new(self.seed);
        let (truth, background) = self.truth_and_background(&mut rng);
        let raw = self.synthesize_observations(&truth, &mut rng);
        let db = self.calibration_parties(&truth, &mut rng);

        let point_obs: Vec<PointObservation> = raw
            .iter()
            .map(|o| {
                let (value, sigma) = match strategy {
                    CalibrationStrategy::None => (o.measured_db, 8.0),
                    CalibrationStrategy::PerModel => (
                        db.correct(o.model, SoundLevel::new(o.measured_db)).db(),
                        db.observation_sigma(o.model).max(2.0),
                    ),
                    CalibrationStrategy::PerDevice => (o.measured_db - o.device_bias_db, 2.0),
                };
                PointObservation::new(o.at, value, sigma)
            })
            .collect();

        let (bias, _) = Blue::innovation_stats(&background, &point_obs);
        let blue = Blue::new(4.0, 1_200.0);
        let analysis = blue
            .analyse(&background, &point_obs)
            .expect("observations lie inside the grid");
        AssimilationOutcome {
            rmse_background: background.rmse(&truth),
            rmse_analysis: analysis.rmse(&truth),
            innovation_bias: bias,
        }
    }

    /// Runs all three strategies (the ablation table).
    pub fn run_all(&self) -> BTreeMap<&'static str, AssimilationOutcome> {
        CalibrationStrategy::ALL
            .iter()
            .map(|s| (s.label(), self.run(*s)))
            .collect()
    }

    /// The per-model bias estimates the calibration parties produce —
    /// checked against the true model offsets in tests.
    pub fn estimated_biases(&self) -> BTreeMap<DeviceModel, f64> {
        let mut rng = SimRng::new(self.seed);
        let (truth, _) = self.truth_and_background(&mut rng);
        let _ = self.synthesize_observations(&truth, &mut rng);
        let db = self.calibration_parties(&truth, &mut rng);
        self.models
            .iter()
            .filter_map(|m| db.calibration(*m).map(|c| (*m, c.bias_db)))
            .collect()
    }

    /// The Figure 4 workflow: simulate a noise map, generate complaints
    /// from it, return the per-cell noise/complaint correlation.
    pub fn fig4_correlation(&self) -> f64 {
        let mut rng = SimRng::new(self.seed);
        let city = CityModel::synthetic(self.bounds, 5, 40, &mut rng);
        let map = NoiseSimulator::new(city).simulate(self.grid_n, self.grid_n);
        let process = ComplaintProcess::new(52.0, 0.5);
        let complaints = process.sample(&map, &mut rng);
        ComplaintProcess::correlation(&map, &complaints).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assimilation_improves_on_background() {
        let study = CalibrationStudy::new(7);
        for strategy in [
            CalibrationStrategy::PerModel,
            CalibrationStrategy::PerDevice,
        ] {
            let outcome = study.run(strategy);
            assert!(
                outcome.rmse_analysis < outcome.rmse_background,
                "{strategy:?}: {outcome}"
            );
        }
    }

    #[test]
    fn per_model_calibration_nearly_matches_oracle() {
        let study = CalibrationStudy::new(7);
        let none = study.run(CalibrationStrategy::None);
        let per_model = study.run(CalibrationStrategy::PerModel);
        let oracle = study.run(CalibrationStrategy::PerDevice);
        // The paper's claim: model-level calibration tames heterogeneity.
        assert!(
            per_model.rmse_analysis < none.rmse_analysis,
            "per-model {per_model} vs none {none}"
        );
        assert!(
            per_model.rmse_analysis < oracle.rmse_analysis + 0.5,
            "per-model {per_model} vs oracle {oracle}"
        );
    }

    #[test]
    fn calibration_shrinks_innovation_bias() {
        let study = CalibrationStudy::new(11);
        let none = study.run(CalibrationStrategy::None);
        let per_model = study.run(CalibrationStrategy::PerModel);
        assert!(
            per_model.innovation_bias.abs() <= none.innovation_bias.abs() + 0.3,
            "bias {} -> {}",
            none.innovation_bias,
            per_model.innovation_bias
        );
    }

    #[test]
    fn estimated_biases_track_true_offsets() {
        let study = CalibrationStudy::new(13);
        let estimates = study.estimated_biases();
        assert!(!estimates.is_empty());
        for (model, bias) in estimates {
            let truth = ModelProfile::for_model(model).spl_offset_db;
            assert!(
                (bias - truth).abs() < 1.5,
                "{model}: estimated {bias}, true {truth}"
            );
        }
    }

    #[test]
    fn fig4_complaints_correlate_with_noise() {
        let r = CalibrationStudy::new(17).fig4_correlation();
        assert!(r > 0.4, "correlation {r}");
    }

    #[test]
    fn run_all_returns_three_rows() {
        let rows = CalibrationStudy::new(19).run_all();
        assert_eq!(rows.len(), 3);
        assert!(rows.contains_key("per-model"));
    }

    #[test]
    fn outcome_display_is_readable() {
        let s = CalibrationStudy::new(7)
            .run(CalibrationStrategy::PerModel)
            .to_string();
        assert!(s.contains("RMSE"));
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn rejects_empty_models() {
        let _ = CalibrationStudy::new(1).with_models(vec![]);
    }
}
