//! GoFlow error types.

use mps_broker::BrokerError;
use mps_docstore::StoreError;
use std::error::Error;
use std::fmt;

/// Errors returned by the GoFlow server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoFlowError {
    /// The application is not registered with the server.
    UnknownApp(String),
    /// The authentication token is unknown or revoked.
    InvalidToken,
    /// The user exists but lacks the role required for the operation.
    PermissionDenied {
        /// What was attempted.
        action: String,
    },
    /// A user with this id is already registered for the app.
    UserExists,
    /// The referenced background job does not exist.
    JobNotFound(u64),
    /// An ingested payload could not be decoded as an observation.
    MalformedObservation(String),
    /// A request was structurally invalid.
    BadRequest(String),
    /// An underlying broker operation failed.
    Broker(BrokerError),
    /// An underlying storage operation failed.
    Store(StoreError),
}

impl fmt::Display for GoFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoFlowError::UnknownApp(app) => write!(f, "unknown application: {app}"),
            GoFlowError::InvalidToken => write!(f, "invalid or revoked token"),
            GoFlowError::PermissionDenied { action } => {
                write!(f, "permission denied: {action}")
            }
            GoFlowError::UserExists => write!(f, "user already registered"),
            GoFlowError::JobNotFound(id) => write!(f, "job not found: {id}"),
            GoFlowError::MalformedObservation(msg) => {
                write!(f, "malformed observation: {msg}")
            }
            GoFlowError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            GoFlowError::Broker(err) => write!(f, "broker error: {err}"),
            GoFlowError::Store(err) => write!(f, "storage error: {err}"),
        }
    }
}

impl Error for GoFlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GoFlowError::Broker(err) => Some(err),
            GoFlowError::Store(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BrokerError> for GoFlowError {
    fn from(err: BrokerError) -> Self {
        GoFlowError::Broker(err)
    }
}

impl From<StoreError> for GoFlowError {
    fn from(err: StoreError) -> Self {
        GoFlowError::Store(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GoFlowError::UnknownApp("X".into())
            .to_string()
            .contains('X'));
        assert!(!GoFlowError::InvalidToken.to_string().is_empty());
        assert!(GoFlowError::PermissionDenied {
            action: "drop".into()
        }
        .to_string()
        .contains("drop"));
        assert!(GoFlowError::JobNotFound(9).to_string().contains('9'));
    }

    #[test]
    fn sources_chain() {
        let err = GoFlowError::from(BrokerError::QueueNotFound("q".into()));
        assert!(err.source().is_some());
        let err = GoFlowError::from(StoreError::NotAnObject);
        assert!(err.source().is_some());
        assert!(GoFlowError::InvalidToken.source().is_none());
    }
}
