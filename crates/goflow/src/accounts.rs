//! Account and access management (Figure 2 of the paper).

use crate::GoFlowError;
use mps_types::{AppId, UserId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Role of a user within an application.
///
/// GoFlow manages "users with different roles for the registered apps";
/// the roles gate the administrative API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Contributes observations; may read their own data.
    Contributor,
    /// Manages an app: submits background jobs, reads app-wide data.
    Manager,
    /// Full administrative access, including account management.
    Admin,
}

impl Role {
    /// Whether this role includes the capabilities of `other`.
    pub fn includes(self, other: Role) -> bool {
        self >= other
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Contributor => "contributor",
            Role::Manager => "manager",
            Role::Admin => "admin",
        })
    }
}

/// An opaque authentication token handed out at registration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Token(String);

impl Token {
    /// Wraps a raw token string (e.g. one persisted by a client between
    /// sessions). Wrapping does not validate; authentication does.
    pub fn from_raw(token: impl Into<String>) -> Self {
        Self(token.into())
    }

    /// The token string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone)]
struct Account {
    app: AppId,
    user: UserId,
    role: Role,
    revoked: bool,
}

#[derive(Debug, Default)]
struct Inner {
    apps: Vec<AppId>,
    by_token: BTreeMap<String, Account>,
    registered: BTreeMap<(AppId, UserId), String>,
    next_serial: u64,
}

/// Registry of applications and user accounts with token authentication.
///
/// Tokens are deterministic (derived from a serial counter), anonymous
/// (they embed no user identifier in the clear) and revocable.
#[derive(Debug, Default)]
pub struct AccountManager {
    inner: Mutex<Inner>,
}

fn token_string(serial: u64) -> String {
    // FNV-1a over the serial, printed in hex: opaque but reproducible.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in serial.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("tok-{h:016x}-{serial}")
}

impl AccountManager {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application. Re-registering is a no-op.
    pub fn register_app(&self, app: &AppId) {
        let mut inner = self.inner.lock();
        if !inner.apps.contains(app) {
            inner.apps.push(app.clone());
        }
    }

    /// Whether the application is registered.
    pub fn has_app(&self, app: &AppId) -> bool {
        self.inner.lock().apps.contains(app)
    }

    /// Registered applications, in registration order.
    pub fn apps(&self) -> Vec<AppId> {
        self.inner.lock().apps.clone()
    }

    /// Registers a user for an app with a role, returning their token.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app and
    /// [`GoFlowError::UserExists`] if the user already has an account for
    /// this app.
    pub fn register_user(
        &self,
        app: &AppId,
        user: UserId,
        role: Role,
    ) -> Result<Token, GoFlowError> {
        let mut inner = self.inner.lock();
        if !inner.apps.contains(app) {
            return Err(GoFlowError::UnknownApp(app.to_string()));
        }
        if inner.registered.contains_key(&(app.clone(), user)) {
            return Err(GoFlowError::UserExists);
        }
        let serial = inner.next_serial;
        inner.next_serial += 1;
        let token = token_string(serial);
        inner.registered.insert((app.clone(), user), token.clone());
        inner.by_token.insert(
            token.clone(),
            Account {
                app: app.clone(),
                user,
                role,
                revoked: false,
            },
        );
        Ok(Token(token))
    }

    /// Authenticates a token, returning `(app, user, role)`.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::InvalidToken`] for unknown or revoked tokens.
    pub fn authenticate(&self, token: &Token) -> Result<(AppId, UserId, Role), GoFlowError> {
        let inner = self.inner.lock();
        match inner.by_token.get(token.as_str()) {
            Some(account) if !account.revoked => {
                Ok((account.app.clone(), account.user, account.role))
            }
            _ => Err(GoFlowError::InvalidToken),
        }
    }

    /// Requires that `token` authenticates with at least `role`.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::InvalidToken`] or
    /// [`GoFlowError::PermissionDenied`].
    pub fn require_role(
        &self,
        token: &Token,
        role: Role,
        action: &str,
    ) -> Result<(AppId, UserId), GoFlowError> {
        let (app, user, actual) = self.authenticate(token)?;
        if !actual.includes(role) {
            return Err(GoFlowError::PermissionDenied {
                action: action.to_owned(),
            });
        }
        Ok((app, user))
    }

    /// Revokes a token; subsequent authentications fail.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::InvalidToken`] for an unknown token.
    pub fn revoke(&self, token: &Token) -> Result<(), GoFlowError> {
        let mut inner = self.inner.lock();
        match inner.by_token.get_mut(token.as_str()) {
            Some(account) => {
                account.revoked = true;
                Ok(())
            }
            None => Err(GoFlowError::InvalidToken),
        }
    }

    /// Revokes every token of a user for an app (account erasure).
    /// Returns how many tokens were revoked.
    pub fn revoke_user(&self, app: &AppId, user: UserId) -> usize {
        let mut inner = self.inner.lock();
        let mut revoked = 0;
        for account in inner.by_token.values_mut() {
            if &account.app == app && account.user == user && !account.revoked {
                account.revoked = true;
                revoked += 1;
            }
        }
        revoked
    }

    /// Number of (non-revoked) accounts for an app.
    pub fn user_count(&self, app: &AppId) -> usize {
        self.inner
            .lock()
            .by_token
            .values()
            .filter(|a| &a.app == app && !a.revoked)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> AppId {
        AppId::soundcity()
    }

    fn manager_with_app() -> AccountManager {
        let m = AccountManager::new();
        m.register_app(&sc());
        m
    }

    #[test]
    fn register_and_authenticate() {
        let m = manager_with_app();
        let token = m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        let (app, user, role) = m.authenticate(&token).unwrap();
        assert_eq!(app, sc());
        assert_eq!(user, UserId::new(1));
        assert_eq!(role, Role::Contributor);
    }

    #[test]
    fn tokens_are_opaque_and_unique() {
        let m = manager_with_app();
        let t1 = m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        let t2 = m.register_user(&sc(), 2.into(), Role::Contributor).unwrap();
        assert_ne!(t1, t2);
        assert!(t1.as_str().starts_with("tok-"));
    }

    #[test]
    fn unknown_app_rejected() {
        let m = AccountManager::new();
        assert!(matches!(
            m.register_user(&sc(), 1.into(), Role::Contributor),
            Err(GoFlowError::UnknownApp(_))
        ));
        assert!(!m.has_app(&sc()));
    }

    #[test]
    fn duplicate_user_rejected() {
        let m = manager_with_app();
        m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        assert_eq!(
            m.register_user(&sc(), 1.into(), Role::Manager).unwrap_err(),
            GoFlowError::UserExists
        );
    }

    #[test]
    fn same_user_different_apps_ok() {
        let m = manager_with_app();
        let other = AppId::new("OTHER");
        m.register_app(&other);
        m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        assert!(m.register_user(&other, 1.into(), Role::Contributor).is_ok());
        assert_eq!(m.apps().len(), 2);
    }

    #[test]
    fn role_hierarchy() {
        assert!(Role::Admin.includes(Role::Manager));
        assert!(Role::Admin.includes(Role::Contributor));
        assert!(Role::Manager.includes(Role::Contributor));
        assert!(!Role::Contributor.includes(Role::Manager));
        assert!(Role::Manager.includes(Role::Manager));
    }

    #[test]
    fn require_role_gates() {
        let m = manager_with_app();
        let contrib = m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        let admin = m.register_user(&sc(), 2.into(), Role::Admin).unwrap();
        assert!(m
            .require_role(&contrib, Role::Manager, "submit job")
            .is_err());
        assert!(m.require_role(&admin, Role::Manager, "submit job").is_ok());
    }

    #[test]
    fn revoked_token_fails() {
        let m = manager_with_app();
        let token = m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        m.revoke(&token).unwrap();
        assert_eq!(
            m.authenticate(&token).unwrap_err(),
            GoFlowError::InvalidToken
        );
        assert_eq!(m.user_count(&sc()), 0);
        assert!(m.revoke(&Token("ghost".into())).is_err());
    }

    #[test]
    fn user_count_per_app() {
        let m = manager_with_app();
        m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        m.register_user(&sc(), 2.into(), Role::Manager).unwrap();
        assert_eq!(m.user_count(&sc()), 2);
        assert_eq!(m.user_count(&AppId::new("GHOST")), 0);
    }

    #[test]
    fn revoke_user_revokes_all_their_tokens() {
        let m = manager_with_app();
        let token = m.register_user(&sc(), 1.into(), Role::Contributor).unwrap();
        let other = m.register_user(&sc(), 2.into(), Role::Contributor).unwrap();
        assert_eq!(m.revoke_user(&sc(), 1.into()), 1);
        assert!(m.authenticate(&token).is_err());
        assert!(m.authenticate(&other).is_ok());
        // Idempotent.
        assert_eq!(m.revoke_user(&sc(), 1.into()), 0);
        // Scoped to the app.
        assert_eq!(m.revoke_user(&AppId::new("OTHER"), 2.into()), 0);
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Contributor.to_string(), "contributor");
        assert_eq!(Role::Admin.to_string(), "admin");
    }
}
