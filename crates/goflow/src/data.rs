//! Crowd-sensed data management: filtered retrieval and packaging.
//!
//! GoFlow "allows the retrieval of crowd-sensed information based on
//! various filtering parameters, and various packaging solutions (file,
//! json stream, ...)" (Figure 2). [`ObservationQuery`] is the typed filter
//! surface; [`Packaging`] selects the output encoding.

use mps_docstore::Filter;
use mps_types::{AppVersion, DeviceModel, GeoBounds, LocationProvider, SensingMode, SimTime};
use serde_json::Value;

/// A typed query over stored observations.
///
/// Builds a document-store [`Filter`] over the fields written by the
/// ingest component.
///
/// # Examples
///
/// ```
/// use mps_goflow::ObservationQuery;
/// use mps_types::{LocationProvider, SimTime};
///
/// let query = ObservationQuery::new()
///     .provider(LocationProvider::Gps)
///     .max_accuracy_m(50.0)
///     .captured_between(SimTime::EPOCH, SimTime::from_hms(30, 0, 0, 0));
/// let filter = query.to_filter();
/// # let _ = filter;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObservationQuery {
    time_range: Option<(SimTime, SimTime)>,
    bbox: Option<GeoBounds>,
    model: Option<DeviceModel>,
    provider: Option<LocationProvider>,
    max_accuracy_m: Option<f64>,
    localized_only: bool,
    mode: Option<SensingMode>,
    app_version: Option<AppVersion>,
    limit: Option<usize>,
}

impl ObservationQuery {
    /// Creates an unconstrained query (matches every observation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Keeps observations captured in `[from, to)`.
    pub fn captured_between(mut self, from: SimTime, to: SimTime) -> Self {
        self.time_range = Some((from, to));
        self
    }

    /// Keeps observations located inside `bounds` (implies localized).
    pub fn within(mut self, bounds: GeoBounds) -> Self {
        self.bbox = Some(bounds);
        self
    }

    /// Keeps observations from one device model.
    pub fn model(mut self, model: DeviceModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Keeps observations with a fix from one provider (implies localized).
    pub fn provider(mut self, provider: LocationProvider) -> Self {
        self.provider = Some(provider);
        self
    }

    /// Keeps observations at least this accurate (radius ≤ the bound;
    /// implies localized).
    pub fn max_accuracy_m(mut self, bound: f64) -> Self {
        self.max_accuracy_m = Some(bound);
        self
    }

    /// Keeps only localized observations.
    pub fn localized_only(mut self) -> Self {
        self.localized_only = true;
        self
    }

    /// Keeps observations captured in one sensing mode.
    pub fn mode(mut self, mode: SensingMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Keeps observations captured by one app version.
    pub fn app_version(mut self, version: AppVersion) -> Self {
        self.app_version = Some(version);
        self
    }

    /// Caps the number of returned documents.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// The result cap, if set.
    pub fn limit_value(&self) -> Option<usize> {
        self.limit
    }

    /// Lowers the query to a document-store filter.
    pub fn to_filter(&self) -> Filter {
        let mut clauses = Vec::new();
        if let Some((from, to)) = self.time_range {
            clauses.push(Filter::gte("captured_ms", from.as_millis()));
            clauses.push(Filter::lt("captured_ms", to.as_millis()));
        }
        if let Some(bounds) = self.bbox {
            clauses.push(Filter::range("lat", bounds.lat_min, bounds.lat_max));
            clauses.push(Filter::range("lon", bounds.lon_min, bounds.lon_max));
        }
        if let Some(model) = self.model {
            clauses.push(Filter::eq("model", model.label()));
        }
        if let Some(provider) = self.provider {
            clauses.push(Filter::eq("provider", provider.name()));
        }
        if let Some(bound) = self.max_accuracy_m {
            clauses.push(Filter::lte("accuracy", bound));
        }
        if self.localized_only {
            clauses.push(Filter::eq("localized", true));
        }
        if let Some(mode) = self.mode {
            clauses.push(Filter::eq("mode", mode.name()));
        }
        if let Some(version) = self.app_version {
            clauses.push(Filter::eq("app_version", version.name()));
        }
        match clauses.pop() {
            None => Filter::True,
            Some(single) if clauses.is_empty() => single,
            Some(last) => {
                clauses.push(last);
                Filter::And(clauses)
            }
        }
    }
}

/// Output encoding for retrieved data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packaging {
    /// One JSON document per line (a "json stream").
    #[default]
    JsonLines,
    /// A single JSON array (a downloadable "file").
    JsonArray,
}

impl Packaging {
    /// Encodes documents in this packaging.
    pub fn encode(self, docs: &[Value]) -> String {
        match self {
            Packaging::JsonLines => docs
                .iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join("\n"),
            Packaging::JsonArray => Value::Array(docs.to_vec()).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(provider: &str, accuracy: f64, captured: i64) -> Value {
        json!({
            "model": "LGE NEXUS 5",
            "provider": provider,
            "accuracy": accuracy,
            "localized": true,
            "captured_ms": captured,
            "mode": "opportunistic",
            "lat": 48.85,
            "lon": 2.35,
        })
    }

    #[test]
    fn empty_query_matches_all() {
        let f = ObservationQuery::new().to_filter();
        assert_eq!(f, Filter::True);
        assert!(f.matches(&doc("gps", 10.0, 0)));
    }

    #[test]
    fn provider_and_accuracy() {
        let f = ObservationQuery::new()
            .provider(LocationProvider::Gps)
            .max_accuracy_m(20.0)
            .to_filter();
        assert!(f.matches(&doc("gps", 15.0, 0)));
        assert!(!f.matches(&doc("gps", 25.0, 0)));
        assert!(!f.matches(&doc("network", 15.0, 0)));
    }

    #[test]
    fn time_window_is_half_open() {
        let f = ObservationQuery::new()
            .captured_between(SimTime::from_millis(100), SimTime::from_millis(200))
            .to_filter();
        assert!(!f.matches(&doc("gps", 10.0, 99)));
        assert!(f.matches(&doc("gps", 10.0, 100)));
        assert!(f.matches(&doc("gps", 10.0, 199)));
        assert!(!f.matches(&doc("gps", 10.0, 200)));
    }

    #[test]
    fn bbox_filters_coordinates() {
        let f = ObservationQuery::new()
            .within(GeoBounds::paris())
            .to_filter();
        assert!(f.matches(&doc("gps", 10.0, 0)));
        let mut outside = doc("gps", 10.0, 0);
        outside["lat"] = json!(45.0);
        assert!(!f.matches(&outside));
        // Unlocalized docs (null lat) never match a bbox.
        let mut unlocalized = doc("gps", 10.0, 0);
        unlocalized["lat"] = Value::Null;
        assert!(!f.matches(&unlocalized));
    }

    #[test]
    fn model_mode_version_filters() {
        let f = ObservationQuery::new()
            .model(DeviceModel::LgeNexus5)
            .mode(SensingMode::Opportunistic)
            .to_filter();
        assert!(f.matches(&doc("gps", 10.0, 0)));
        let f = ObservationQuery::new()
            .model(DeviceModel::SonyD2303)
            .to_filter();
        assert!(!f.matches(&doc("gps", 10.0, 0)));
        let f = ObservationQuery::new()
            .app_version(AppVersion::V1_3)
            .to_filter();
        assert!(!f.matches(&doc("gps", 10.0, 0)), "doc has no app_version");
    }

    #[test]
    fn localized_only_filter() {
        let f = ObservationQuery::new().localized_only().to_filter();
        assert!(f.matches(&doc("gps", 10.0, 0)));
        assert!(!f.matches(&json!({"localized": false})));
    }

    #[test]
    fn limit_is_carried() {
        assert_eq!(ObservationQuery::new().limit(5).limit_value(), Some(5));
        assert_eq!(ObservationQuery::new().limit_value(), None);
    }

    #[test]
    fn packaging_json_lines() {
        let docs = vec![json!({"a": 1}), json!({"b": 2})];
        let out = Packaging::JsonLines.encode(&docs);
        assert_eq!(out.lines().count(), 2);
        let first: Value = serde_json::from_str(out.lines().next().unwrap()).unwrap();
        assert_eq!(first, json!({"a": 1}));
    }

    #[test]
    fn packaging_json_array() {
        let docs = vec![json!({"a": 1})];
        let out = Packaging::JsonArray.encode(&docs);
        let parsed: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed, json!([{"a": 1}]));
    }

    #[test]
    fn packaging_empty_inputs() {
        assert_eq!(Packaging::JsonLines.encode(&[]), "");
        assert_eq!(Packaging::JsonArray.encode(&[]), "[]");
    }
}
