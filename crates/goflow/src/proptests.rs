//! In-crate property tests over middleware invariants.

use crate::{AccountManager, PrivacyPolicy, Role};
use mps_types::AppId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn pseudonyms_are_injective_on_samples(key in any::<u64>(),
                                           ids in prop::collection::btree_set(any::<u64>(), 2..40)) {
        let policy = PrivacyPolicy::new(key);
        let pseudonyms: std::collections::BTreeSet<u64> =
            ids.iter().map(|id| policy.pseudonymize(*id).raw()).collect();
        prop_assert_eq!(pseudonyms.len(), ids.len(), "collision under key {}", key);
    }

    #[test]
    fn pseudonyms_depend_on_key(id in any::<u64>(), k1 in any::<u64>(), k2 in any::<u64>()) {
        prop_assume!(k1 != k2);
        let a = PrivacyPolicy::new(k1).pseudonymize(id);
        let b = PrivacyPolicy::new(k2).pseudonymize(id);
        // Not a strict guarantee for every pair, but collisions are
        // 2^-64; treat one as a failure worth investigating.
        prop_assert_ne!(a, b);
    }

    #[test]
    fn redaction_removes_exactly_the_private_paths(
        keep in "[a-m]{1,6}",
        private in "[n-z]{1,6}",
    ) {
        let policy = PrivacyPolicy::default().with_private_path(private.clone());
        let mut doc = serde_json::json!({
            keep.clone(): 1,
            private.clone(): 2,
        });
        policy.redact(&mut doc);
        prop_assert!(doc.get(&keep).is_some());
        prop_assert!(doc.get(&private).is_none());
    }

    #[test]
    fn tokens_are_unique_across_users(n in 1u64..40) {
        let m = AccountManager::new();
        let app = AppId::soundcity();
        m.register_app(&app);
        let mut tokens = std::collections::BTreeSet::new();
        for user in 0..n {
            let t = m.register_user(&app, user.into(), Role::Contributor).unwrap();
            prop_assert!(tokens.insert(t.as_str().to_owned()), "duplicate token");
        }
        prop_assert_eq!(m.user_count(&app), n as usize);
    }

    #[test]
    fn authentication_partitions_tokens(n in 1u64..20, revoke_mask in any::<u32>()) {
        let m = AccountManager::new();
        let app = AppId::soundcity();
        m.register_app(&app);
        let tokens: Vec<_> = (0..n)
            .map(|u| m.register_user(&app, u.into(), Role::Contributor).unwrap())
            .collect();
        for (i, t) in tokens.iter().enumerate() {
            if revoke_mask & (1 << (i % 32)) != 0 {
                m.revoke(t).unwrap();
            }
        }
        for (i, t) in tokens.iter().enumerate() {
            let revoked = revoke_mask & (1 << (i % 32)) != 0;
            prop_assert_eq!(m.authenticate(t).is_err(), revoked);
        }
    }
}
