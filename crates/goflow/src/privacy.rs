//! CNIL-style privacy: pseudonymisation and private-field policies.
//!
//! The GoFlow server "maintains data about the contributing users in an
//! anonymized way" and "implements the privacy policy set by the French
//! CNIL" (Sections 3, 3.1). Two mechanisms realise that here:
//!
//! * [`Pseudonym`] — contributor identifiers are replaced by keyed-hash
//!   pseudonyms before storage. The mapping is stable (so longitudinal,
//!   per-contributor analyses like Figures 15 and 19 remain possible) but
//!   not reversible without the server key.
//! * [`PrivacyPolicy`] — "contributing applications specify the data that
//!   they want to keep private and those that they agree to share": a
//!   per-app list of private document paths stripped when data is read by
//!   anyone other than the owning app.

use mps_docstore::unset_path;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;

/// A stable, keyed pseudonym for a contributor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Pseudonym(u64);

impl Pseudonym {
    /// The raw pseudonym value (safe to expose; it is the pseudonym).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pseudonym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "anon-{:016x}", self.0)
    }
}

/// Per-application privacy policy.
///
/// # Examples
///
/// ```
/// use mps_goflow::PrivacyPolicy;
/// use serde_json::json;
///
/// let policy = PrivacyPolicy::new(0xC011)
///     .with_private_path("location");
/// let p1 = policy.pseudonymize(42);
/// assert_eq!(p1, policy.pseudonymize(42), "stable mapping");
///
/// let mut doc = json!({"spl": 60.0, "location": {"lat": 48.85}});
/// policy.redact(&mut doc);
/// assert_eq!(doc, json!({"spl": 60.0}));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyPolicy {
    key: u64,
    private_paths: Vec<String>,
}

impl PrivacyPolicy {
    /// Creates a policy with a server-side pseudonymisation key and no
    /// private paths.
    pub fn new(key: u64) -> Self {
        Self {
            key,
            private_paths: Vec::new(),
        }
    }

    /// Marks a dotted document path as private: it is stripped by
    /// [`PrivacyPolicy::redact`].
    pub fn with_private_path(mut self, path: impl Into<String>) -> Self {
        self.private_paths.push(path.into());
        self
    }

    /// The private paths of this policy.
    pub fn private_paths(&self) -> &[String] {
        &self.private_paths
    }

    /// Maps a raw contributor identifier to its pseudonym (keyed
    /// SplitMix64-style mix; stable for a given policy key).
    pub fn pseudonymize(&self, raw_id: u64) -> Pseudonym {
        let mut x = raw_id ^ self.key.rotate_left(17);
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        Pseudonym(x ^ (x >> 31))
    }

    /// Strips every private path from `doc` (for sharing data outside the
    /// owning application — "open data in mind").
    pub fn redact(&self, doc: &mut Value) {
        for path in &self.private_paths {
            let _ = unset_path(doc, path);
        }
    }
}

impl Default for PrivacyPolicy {
    /// A policy with a fixed default key and no private paths. Production
    /// deployments should pick their own key with [`PrivacyPolicy::new`].
    fn default() -> Self {
        Self::new(0x5048_4f4e_4559_4d45)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn pseudonyms_are_stable() {
        let policy = PrivacyPolicy::new(7);
        assert_eq!(policy.pseudonymize(1), policy.pseudonymize(1));
    }

    #[test]
    fn pseudonyms_differ_per_id() {
        let policy = PrivacyPolicy::new(7);
        assert_ne!(policy.pseudonymize(1), policy.pseudonymize(2));
    }

    #[test]
    fn pseudonyms_differ_per_key() {
        let a = PrivacyPolicy::new(1);
        let b = PrivacyPolicy::new(2);
        assert_ne!(a.pseudonymize(42), b.pseudonymize(42));
    }

    #[test]
    fn pseudonym_does_not_leak_id() {
        // The pseudonym of small ids must not be the id itself.
        let policy = PrivacyPolicy::default();
        for id in 0..100 {
            assert_ne!(policy.pseudonymize(id).raw(), id);
        }
    }

    #[test]
    fn no_collisions_on_small_range() {
        let policy = PrivacyPolicy::default();
        let mut seen: Vec<u64> = (0..10_000).map(|i| policy.pseudonymize(i).raw()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn redact_strips_private_paths() {
        let policy = PrivacyPolicy::default()
            .with_private_path("user_email")
            .with_private_path("location.exact");
        let mut doc = json!({
            "spl": 61.0,
            "user_email": "x@example.org",
            "location": {"exact": [48.85, 2.35], "zone": "FR75013"},
        });
        policy.redact(&mut doc);
        assert_eq!(doc, json!({"spl": 61.0, "location": {"zone": "FR75013"}}));
        assert_eq!(policy.private_paths().len(), 2);
    }

    #[test]
    fn redact_tolerates_missing_paths() {
        let policy = PrivacyPolicy::default().with_private_path("ghost.path");
        let mut doc = json!({"a": 1});
        policy.redact(&mut doc);
        assert_eq!(doc, json!({"a": 1}));
    }

    #[test]
    fn display_is_prefixed_hex() {
        let p = PrivacyPolicy::default().pseudonymize(5);
        assert!(p.to_string().starts_with("anon-"));
    }
}
