//! Crowd-sensing usage analytics (Figure 2: "Crowd-sensing analytics").
//!
//! Lightweight counters over the ingest path: per-app, per-day totals of
//! stored and localized observations. These are the numbers behind the
//! paper's Figure 8 (cumulative contributed observations and the ~40 %
//! localized share).

use mps_types::{AppId, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DayCounts {
    total: u64,
    localized: u64,
}

/// Per-app, per-day contribution counters.
#[derive(Debug, Default)]
pub struct UsageAnalytics {
    days: Mutex<BTreeMap<(AppId, i64), DayCounts>>,
}

impl UsageAnalytics {
    /// Creates empty analytics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stored observation for `app` at time `now`.
    pub fn record(&self, app: &AppId, now: SimTime, localized: bool) {
        let mut days = self.days.lock();
        let entry = days.entry((app.clone(), now.day())).or_default();
        entry.total += 1;
        if localized {
            entry.localized += 1;
        }
    }

    /// Total observations recorded for `app`.
    pub fn total(&self, app: &AppId) -> u64 {
        self.days
            .lock()
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|(_, c)| c.total)
            .sum()
    }

    /// Total localized observations recorded for `app`.
    pub fn total_localized(&self, app: &AppId) -> u64 {
        self.days
            .lock()
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|(_, c)| c.localized)
            .sum()
    }

    /// Daily series `(day, total, localized)` for `app`, in day order —
    /// the data behind Figure 8.
    pub fn daily_series(&self, app: &AppId) -> Vec<(i64, u64, u64)> {
        self.days
            .lock()
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|((_, day), c)| (*day, c.total, c.localized))
            .collect()
    }

    /// Cumulative series `(day, cumulative_total, cumulative_localized)`.
    pub fn cumulative_series(&self, app: &AppId) -> Vec<(i64, u64, u64)> {
        let mut out = Vec::new();
        let mut total = 0;
        let mut localized = 0;
        for (day, t, l) in self.daily_series(app) {
            total += t;
            localized += l;
            out.push((day, total, localized));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: i64) -> SimTime {
        SimTime::from_hms(day, 12, 0, 0)
    }

    #[test]
    fn totals_accumulate() {
        let a = UsageAnalytics::new();
        let app = AppId::soundcity();
        a.record(&app, t(0), true);
        a.record(&app, t(0), false);
        a.record(&app, t(2), true);
        assert_eq!(a.total(&app), 3);
        assert_eq!(a.total_localized(&app), 2);
    }

    #[test]
    fn apps_are_separate() {
        let a = UsageAnalytics::new();
        let sc = AppId::soundcity();
        let other = AppId::new("OTHER");
        a.record(&sc, t(0), false);
        a.record(&other, t(0), false);
        assert_eq!(a.total(&sc), 1);
        assert_eq!(a.total(&other), 1);
        assert_eq!(a.total(&AppId::new("GHOST")), 0);
    }

    #[test]
    fn daily_series_in_order() {
        let a = UsageAnalytics::new();
        let app = AppId::soundcity();
        a.record(&app, t(5), false);
        a.record(&app, t(1), true);
        a.record(&app, t(5), true);
        assert_eq!(a.daily_series(&app), vec![(1, 1, 1), (5, 2, 1)]);
    }

    #[test]
    fn cumulative_series_monotone() {
        let a = UsageAnalytics::new();
        let app = AppId::soundcity();
        for day in 0..10 {
            for _ in 0..=day {
                a.record(&app, t(day), day % 2 == 0);
            }
        }
        let series = a.cumulative_series(&app);
        assert_eq!(series.len(), 10);
        for pair in series.windows(2) {
            assert!(pair[1].1 > pair[0].1, "strictly growing totals");
            assert!(pair[1].2 >= pair[0].2);
        }
        assert_eq!(series.last().unwrap().1, 55);
    }
}
