//! GoFlow's handles into the process-wide telemetry registry.
//!
//! Metric names follow the workspace convention
//! `<crate>_<subsystem>_<metric>`; everything registers lazily in
//! [`Registry::global`] so any layer (or the bench harness) can render a
//! combined health report.

use mps_telemetry::{Counter, Histogram, Registry};
use std::sync::OnceLock;

/// Shared GoFlow metric handles.
pub(crate) struct GoFlowTelemetry {
    /// Observations decoded and stored by ingest.
    pub(crate) ingest_stored: Counter,
    /// Messages ingest could not decode.
    pub(crate) ingest_malformed: Counter,
    /// Quarantined documents that exceeded the late-data threshold
    /// (`goflow_ingest_quarantined_total{reason="late"}`).
    pub(crate) ingest_quarantined_late: Counter,
    /// Quarantined documents that could not be decoded
    /// (`goflow_ingest_quarantined_total{reason="malformed"}`).
    pub(crate) ingest_quarantined_malformed: Counter,
    /// Storage failures that sent a message back for redelivery.
    pub(crate) ingest_storage_failures: Counter,
    /// Drain passes that attempted a batched (group-committed) store.
    pub(crate) ingest_batches: Counter,
    /// Drain passes that fell back to per-message storage after a batch
    /// insert failed.
    pub(crate) ingest_batch_fallbacks: Counter,
    /// End-to-end capture-to-storage delay, in milliseconds.
    pub(crate) ingest_delivery_delay_ms: Histogram,
    /// Broker-queue residence of traced messages (publish to ingest), in
    /// sim-time milliseconds.
    pub(crate) ingest_broker_wait_ms: Histogram,
    /// Wall-clock duration of one queue drain, in seconds.
    pub(crate) ingest_drain_seconds: Histogram,
    /// Ingest passes run by the server facade.
    pub(crate) server_ingest_passes: Counter,
    /// Queries answered by the server facade.
    pub(crate) server_queries: Counter,
    /// Background jobs that completed.
    pub(crate) jobs_completed: Counter,
    /// Background jobs that failed.
    pub(crate) jobs_failed: Counter,
    /// Wall-clock duration of one job script run, in seconds.
    pub(crate) jobs_run_seconds: Histogram,
}

/// The lazily-registered GoFlow metric set.
pub(crate) fn telemetry() -> &'static GoFlowTelemetry {
    static TELEMETRY: OnceLock<GoFlowTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        GoFlowTelemetry {
            ingest_stored: registry.counter(
                "goflow_ingest_stored_total",
                "Observations decoded and stored",
            ),
            ingest_malformed: registry.counter(
                "goflow_ingest_malformed_total",
                "Messages ingest could not decode",
            ),
            ingest_quarantined_late: registry.counter_labeled(
                "goflow_ingest_quarantined_total",
                &[("reason", "late")],
                "Documents parked in a quarantine collection, by reason",
            ),
            ingest_quarantined_malformed: registry.counter_labeled(
                "goflow_ingest_quarantined_total",
                &[("reason", "malformed")],
                "Documents parked in a quarantine collection, by reason",
            ),
            ingest_storage_failures: registry.counter(
                "goflow_ingest_storage_failures_total",
                "Storage failures that sent a message back for redelivery",
            ),
            ingest_batches: registry.counter(
                "goflow_ingest_batches_total",
                "Drain passes that attempted a batched store",
            ),
            ingest_batch_fallbacks: registry.counter(
                "goflow_ingest_batch_fallbacks_total",
                "Drain passes that fell back to per-message storage",
            ),
            ingest_delivery_delay_ms: registry.histogram(
                "goflow_ingest_delivery_delay_ms",
                "Capture-to-storage delay of stored observations (ms)",
                &Histogram::exponential_buckets(10.0, 4.0, 12),
            ),
            ingest_broker_wait_ms: registry.histogram(
                "goflow_ingest_broker_wait_ms",
                "Broker-queue residence of traced messages, publish to ingest (sim ms)",
                &Histogram::exponential_buckets(1.0, 4.0, 12),
            ),
            ingest_drain_seconds: registry.histogram(
                "goflow_ingest_drain_seconds",
                "Wall-clock duration of one GF queue drain (s)",
                &Histogram::exponential_buckets(1e-6, 10.0, 9),
            ),
            server_ingest_passes: registry.counter(
                "goflow_server_ingest_passes_total",
                "Ingest passes run by the GoFlow server",
            ),
            server_queries: registry.counter(
                "goflow_server_queries_total",
                "Observation queries answered by the GoFlow server",
            ),
            jobs_completed: registry.counter(
                "goflow_jobs_completed_total",
                "Background jobs that completed",
            ),
            jobs_failed: registry
                .counter("goflow_jobs_failed_total", "Background jobs that failed"),
            jobs_run_seconds: registry.histogram(
                "goflow_jobs_run_seconds",
                "Wall-clock duration of one background job run (s)",
                &Histogram::exponential_buckets(1e-6, 10.0, 9),
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_goflow_names() {
        let t = telemetry();
        t.ingest_stored.add(0);
        let names = Registry::global().names();
        for name in [
            "goflow_ingest_stored_total",
            "goflow_ingest_malformed_total",
            "goflow_ingest_quarantined_total",
            "goflow_ingest_storage_failures_total",
            "goflow_ingest_batches_total",
            "goflow_ingest_batch_fallbacks_total",
            "goflow_ingest_delivery_delay_ms",
            "goflow_ingest_broker_wait_ms",
            "goflow_ingest_drain_seconds",
            "goflow_server_ingest_passes_total",
            "goflow_server_queries_total",
            "goflow_jobs_completed_total",
            "goflow_jobs_failed_total",
            "goflow_jobs_run_seconds",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }

    #[test]
    fn quarantine_reasons_are_labeled_children_of_one_family() {
        let t = telemetry();
        t.ingest_quarantined_late.inc();
        t.ingest_quarantined_malformed.inc();
        let text = Registry::global().render_text();
        assert!(text.contains("goflow_ingest_quarantined_total{reason=\"late\"}"));
        assert!(text.contains("goflow_ingest_quarantined_total{reason=\"malformed\"}"));
        let total = Registry::global()
            .counter_value("goflow_ingest_quarantined_total")
            .expect("family registered");
        assert!(total >= 2, "family total sums labeled children");
    }
}
