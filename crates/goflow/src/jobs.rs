//! Background jobs (Figure 2: "Background jobs").
//!
//! Application managers submit named scripts that "perform various
//! operations on the crowd-sensed data stored on behalf of the
//! application". Here a script is a closure over the app's collection; the
//! registry tracks submission and completion status.

use crate::telemetry::telemetry;
use crate::GoFlowError;
use mps_docstore::CollectionHandle;
use mps_telemetry::SpanTimer;
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted, not yet run.
    Pending,
    /// Ran to completion; carries the script's JSON result.
    Done(Value),
    /// The script reported an error message.
    Failed(String),
}

/// A job script: runs over the application's observation collection
/// (via a [`CollectionHandle`], so the collection may live in-process or
/// behind a socket) and returns a JSON result or an error message.
pub type JobScript = Arc<dyn Fn(&CollectionHandle) -> Result<Value, String> + Send + Sync>;

struct Job {
    name: String,
    script: JobScript,
    status: JobStatus,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("status", &self.status)
            .finish()
    }
}

/// Registry of submitted background jobs.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<BTreeMap<u64, Job>>,
    next_id: Mutex<u64>,
}

impl JobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a named script; it stays [`JobStatus::Pending`] until
    /// [`JobRegistry::run_pending`] executes it.
    pub fn submit(
        &self,
        name: impl Into<String>,
        script: impl Fn(&CollectionHandle) -> Result<Value, String> + Send + Sync + 'static,
    ) -> JobId {
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        self.jobs.lock().insert(
            id,
            Job {
                name: name.into(),
                script: Arc::new(script),
                status: JobStatus::Pending,
            },
        );
        JobId(id)
    }

    /// Status of a job.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::JobNotFound`] for an unknown id.
    pub fn status(&self, id: JobId) -> Result<JobStatus, GoFlowError> {
        self.jobs
            .lock()
            .get(&id.0)
            .map(|j| j.status.clone())
            .ok_or(GoFlowError::JobNotFound(id.0))
    }

    /// Name of a job.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::JobNotFound`] for an unknown id.
    pub fn name(&self, id: JobId) -> Result<String, GoFlowError> {
        self.jobs
            .lock()
            .get(&id.0)
            .map(|j| j.name.clone())
            .ok_or(GoFlowError::JobNotFound(id.0))
    }

    /// Runs every pending job against `collection`; returns how many ran.
    pub fn run_pending(&self, collection: &CollectionHandle) -> usize {
        // Collect pending scripts first so user scripts run outside the
        // registry lock (they may be slow).
        let pending: Vec<(u64, JobScript)> = {
            let jobs = self.jobs.lock();
            jobs.iter()
                .filter(|(_, j)| j.status == JobStatus::Pending)
                .map(|(id, j)| (*id, Arc::clone(&j.script)))
                .collect()
        };
        let n = pending.len();
        let metrics = telemetry();
        for (id, script) in pending {
            let timer = SpanTimer::start(&metrics.jobs_run_seconds);
            let status = match script(collection) {
                Ok(value) => {
                    metrics.jobs_completed.inc();
                    JobStatus::Done(value)
                }
                Err(msg) => {
                    metrics.jobs_failed.inc();
                    JobStatus::Failed(msg)
                }
            };
            timer.stop();
            if let Some(job) = self.jobs.lock().get_mut(&id) {
                job.status = status;
            }
        }
        n
    }

    /// Number of jobs in each state: `(pending, done, failed)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let jobs = self.jobs.lock();
        let mut counts = (0, 0, 0);
        for job in jobs.values() {
            match job.status {
                JobStatus::Pending => counts.0 += 1,
                JobStatus::Done(_) => counts.1 += 1,
                JobStatus::Failed(_) => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_docstore::Collection;
    use serde_json::json;

    fn handle() -> CollectionHandle {
        CollectionHandle::from(Collection::new())
    }

    #[test]
    fn submit_run_status() {
        let registry = JobRegistry::new();
        let collection = handle();
        collection.insert_one(json!({"spl": 50.0})).unwrap();
        collection.insert_one(json!({"spl": 70.0})).unwrap();

        let id = registry.submit("count", |c: &CollectionHandle| Ok(json!({"n": c.len()})));
        assert_eq!(registry.status(id).unwrap(), JobStatus::Pending);
        assert_eq!(registry.name(id).unwrap(), "count");

        assert_eq!(registry.run_pending(&collection), 1);
        assert_eq!(
            registry.status(id).unwrap(),
            JobStatus::Done(json!({"n": 2}))
        );
        // Done jobs do not re-run.
        assert_eq!(registry.run_pending(&collection), 0);
    }

    #[test]
    fn failed_jobs_capture_message() {
        let registry = JobRegistry::new();
        let id = registry.submit("boom", |_: &CollectionHandle| Err("exploded".into()));
        registry.run_pending(&handle());
        assert_eq!(
            registry.status(id).unwrap(),
            JobStatus::Failed("exploded".into())
        );
    }

    #[test]
    fn unknown_job_errors() {
        let registry = JobRegistry::new();
        assert!(matches!(
            registry.status(JobId(99)),
            Err(GoFlowError::JobNotFound(99))
        ));
        assert!(registry.name(JobId(99)).is_err());
    }

    #[test]
    fn counts_track_states() {
        let registry = JobRegistry::new();
        registry.submit("a", |_: &CollectionHandle| Ok(json!(1)));
        registry.submit("b", |_: &CollectionHandle| Err("no".into()));
        registry.submit("c", |_: &CollectionHandle| Ok(json!(2)));
        assert_eq!(registry.counts(), (3, 0, 0));
        registry.run_pending(&handle());
        assert_eq!(registry.counts(), (0, 2, 1));
    }

    #[test]
    fn job_ids_are_sequential() {
        let registry = JobRegistry::new();
        let a = registry.submit("a", |_: &CollectionHandle| Ok(Value::Null));
        let b = registry.submit("b", |_: &CollectionHandle| Ok(Value::Null));
        assert!(a < b);
        assert_eq!(a.to_string(), "job-0");
    }

    #[test]
    fn scripts_can_mutate_collection() {
        let registry = JobRegistry::new();
        let collection = handle();
        collection.insert_one(json!({"stale": true})).unwrap();
        registry.submit("cleanup", |c: &CollectionHandle| {
            let n = c
                .delete_many(&mps_docstore::Filter::eq("stale", true))
                .map_err(|e| e.to_string())?;
            Ok(json!({"deleted": n}))
        });
        registry.run_pending(&collection);
        assert!(collection.is_empty());
    }
}
