//! Channel management: the messaging topology of Figure 3.
//!
//! GoFlow creates RabbitMQ exchanges, queues and bindings *on behalf of*
//! mobile clients and returns their identifiers for connection:
//!
//! * per application: an application exchange (e.g. `SC`), plus the GoFlow
//!   collection exchange/queue (`GF`) receiving every crowd-sensed message
//!   for storage;
//! * per logged-in client: a client exchange forwarding the client's
//!   messages into the application exchange — with the client id (a shared
//!   secret) as a binding filter so only authentic messages flow — and a
//!   client queue for incoming crowd-sensed messages;
//! * per subscription: a location/datatype exchange (e.g. `FR75013`,
//!   `Feedback`) bound from the application exchange, feeding subscribed
//!   client queues.

use crate::GoFlowError;
use mps_broker::{BrokerTransport, ExchangeType};
use mps_types::{AppId, ClientId, UserId};
use parking_lot::Mutex;
use std::sync::Arc;

/// The broker endpoints returned to a client at login.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSession {
    app: AppId,
    user: UserId,
    client_id: ClientId,
    exchange: String,
    queue: String,
}

impl ClientSession {
    /// The client id (shared secret with the server).
    pub fn client_id(&self) -> &ClientId {
        &self.client_id
    }

    /// The application this session belongs to.
    pub fn app(&self) -> &AppId {
        &self.app
    }

    /// The user this session was opened for.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Name of the client's exchange (publish observations here).
    pub fn exchange(&self) -> &str {
        &self.exchange
    }

    /// Name of the client's queue (consume notifications here).
    pub fn queue(&self) -> &str {
        &self.queue
    }

    /// The routing key for publishing an observation of `datatype` at
    /// `location` — prefixed with the client id so the client-exchange
    /// binding (the security filter) lets it through.
    pub fn observation_key(&self, datatype: &str, location: &str) -> String {
        format!("{}.obs.{datatype}.{location}", self.client_id)
    }
}

/// Creates and tears down the Figure 3 messaging topology.
///
/// Generic over [`BrokerTransport`], so the topology can be declared on
/// an in-process [`mps_broker::Broker`] or on a remote broker across a
/// socket, interchangeably.
pub struct ChannelManager {
    broker: Arc<dyn BrokerTransport>,
    next_client: Mutex<u64>,
}

impl std::fmt::Debug for ChannelManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelManager").finish_non_exhaustive()
    }
}

fn app_exchange(app: &AppId) -> String {
    format!("app-{app}")
}

fn gf_exchange(app: &AppId) -> String {
    format!("gf-{app}")
}

/// Name of the GoFlow collection queue for an application (the `GF` queue
/// of Figure 3, drained by the ingest component).
pub(crate) fn gf_queue(app: &AppId) -> String {
    format!("gf-{app}-queue")
}

/// Name of the dead-letter queue paired with the GF queue: messages whose
/// ingest keeps failing (e.g. repeated storage errors) are parked here for
/// operator inspection instead of cycling forever or being dropped.
pub(crate) fn gf_dlq(app: &AppId) -> String {
    format!("gf-{app}-dlq")
}

/// Delivery attempts a GF message gets before it is dead-lettered.
pub(crate) const GF_MAX_DELIVERY_ATTEMPTS: u32 = 5;

fn sub_exchange(app: &AppId, datatype: &str, location: &str) -> String {
    format!("sub-{app}-{datatype}-{location}")
}

impl ChannelManager {
    /// Creates a manager over a shared broker (in-process or remote).
    pub fn new(broker: Arc<dyn BrokerTransport>) -> Self {
        Self {
            broker,
            next_client: Mutex::new(0),
        }
    }

    /// Declares the per-application topology: application exchange, GF
    /// exchange and GF queue, with the app exchange forwarding everything
    /// into GF for storage. Also declares the GF dead-letter queue and
    /// points the GF queue's dead-letter policy at it, so messages that
    /// exhaust [`GF_MAX_DELIVERY_ATTEMPTS`] ingest attempts are parked
    /// there instead of dropped. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates broker errors (e.g. a name collision with a different
    /// exchange type).
    pub fn setup_app(&self, app: &AppId) -> Result<(), GoFlowError> {
        let app_ex = app_exchange(app);
        let gf_ex = gf_exchange(app);
        let gf_q = gf_queue(app);
        let gf_dlq = gf_dlq(app);
        self.broker.declare_exchange(&app_ex, ExchangeType::Topic)?;
        self.broker.declare_exchange(&gf_ex, ExchangeType::Topic)?;
        self.broker.declare_queue(&gf_q)?;
        self.broker.declare_queue(&gf_dlq)?;
        self.broker
            .configure_dead_letter(&gf_q, GF_MAX_DELIVERY_ATTEMPTS, &gf_dlq)?;
        self.broker.bind_exchange(&app_ex, &gf_ex, "#")?;
        self.broker.bind_queue(&gf_ex, &gf_q, "#")?;
        Ok(())
    }

    /// The GF queue name for an application (used by ingest).
    pub fn collection_queue(&self, app: &AppId) -> String {
        gf_queue(app)
    }

    /// The GF dead-letter queue name for an application (inspect it for
    /// messages whose ingest kept failing).
    pub fn dead_letter_queue(&self, app: &AppId) -> String {
        gf_dlq(app)
    }

    /// Opens a client session: declares the client exchange and queue and
    /// installs the client-id-filtered binding into the application
    /// exchange.
    ///
    /// # Errors
    ///
    /// Propagates broker errors from the declarations.
    pub fn open_client(&self, app: &AppId, user: UserId) -> Result<ClientSession, GoFlowError> {
        let serial = {
            let mut next = self.next_client.lock();
            let s = *next;
            *next += 1;
            s
        };
        // The client id doubles as the binding filter word; keep it to
        // routing-key-safe characters.
        let client_id = ClientId::new(format!("c{serial:08x}"));
        let exchange = format!("client-{client_id}-ex");
        let queue = format!("client-{client_id}-q");
        self.broker
            .declare_exchange(&exchange, ExchangeType::Topic)?;
        self.broker.declare_queue(&queue)?;
        // Security: only keys prefixed with the shared-secret client id
        // cross from the client exchange into the application exchange.
        self.broker
            .bind_exchange(&exchange, &app_exchange(app), &format!("{client_id}.#"))?;
        Ok(ClientSession {
            app: app.clone(),
            user,
            client_id,
            exchange,
            queue,
        })
    }

    /// Registers the client to receive `datatype` messages at `location`
    /// (e.g. `Feedback` at `FR75013`): ensures the location/datatype
    /// exchange exists, binds it from the application exchange, and binds
    /// the client's queue to it.
    ///
    /// # Errors
    ///
    /// Propagates broker errors from the declarations.
    pub fn subscribe(
        &self,
        session: &ClientSession,
        datatype: &str,
        location: &str,
    ) -> Result<(), GoFlowError> {
        let sub_ex = sub_exchange(&session.app, datatype, location);
        self.broker.declare_exchange(&sub_ex, ExchangeType::Topic)?;
        // Any client's message (first word = client id) of the right
        // datatype and location reaches the subscription exchange.
        self.broker.bind_exchange(
            &app_exchange(&session.app),
            &sub_ex,
            &format!("*.obs.{datatype}.{location}"),
        )?;
        self.broker.bind_queue(&sub_ex, &session.queue, "#")?;
        Ok(())
    }

    /// Closes a client session, deleting its exchange and queue (and any
    /// messages still buffered in the queue).
    ///
    /// # Errors
    ///
    /// Propagates broker errors if the endpoints were already removed.
    pub fn close_client(&self, session: &ClientSession) -> Result<(), GoFlowError> {
        self.broker.delete_exchange(&session.exchange)?;
        self.broker.delete_queue(&session.queue)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_broker::Broker;

    fn setup() -> (Arc<Broker>, ChannelManager, AppId) {
        let broker = Arc::new(Broker::new());
        let manager = ChannelManager::new(Arc::clone(&broker));
        let app = AppId::soundcity();
        manager.setup_app(&app).unwrap();
        (broker, manager, app)
    }

    #[test]
    fn setup_app_creates_topology() {
        let (broker, manager, app) = setup();
        assert!(broker.exchange_exists("app-SC"));
        assert!(broker.exchange_exists("gf-SC"));
        assert!(broker.queue_exists("gf-SC-queue"));
        assert!(broker.queue_exists("gf-SC-dlq"));
        assert_eq!(manager.collection_queue(&app), "gf-SC-queue");
        assert_eq!(manager.dead_letter_queue(&app), "gf-SC-dlq");
        let policy = broker.dead_letter_policy("gf-SC-queue").unwrap().unwrap();
        assert_eq!(policy.max_delivery_attempts, GF_MAX_DELIVERY_ATTEMPTS);
        assert_eq!(policy.target, "gf-SC-dlq");
        // Idempotent.
        manager.setup_app(&app).unwrap();
    }

    #[test]
    fn client_publish_reaches_gf_queue() {
        let (broker, manager, app) = setup();
        let session = manager.open_client(&app, 1.into()).unwrap();
        let key = session.observation_key("noise", "FR75013");
        let routed = broker
            .publish(session.exchange(), &key, &b"obs"[..])
            .unwrap();
        assert_eq!(routed, 1);
        assert_eq!(broker.queue_depth("gf-SC-queue").unwrap(), 1);
    }

    #[test]
    fn wrong_client_id_is_filtered() {
        let (broker, manager, app) = setup();
        let s1 = manager.open_client(&app, 1.into()).unwrap();
        let s2 = manager.open_client(&app, 2.into()).unwrap();
        // A message with s2's id published on s1's exchange must not pass
        // s1's binding filter.
        let forged = s2.observation_key("noise", "FR75013");
        let routed = broker
            .publish(s1.exchange(), &forged, &b"forged"[..])
            .unwrap();
        assert_eq!(routed, 0);
        assert_eq!(broker.queue_depth("gf-SC-queue").unwrap(), 0);
    }

    #[test]
    fn subscription_delivers_matching_messages() {
        let (broker, manager, app) = setup();
        let publisher = manager.open_client(&app, 1.into()).unwrap();
        let subscriber = manager.open_client(&app, 2.into()).unwrap();
        manager
            .subscribe(&subscriber, "Feedback", "FR75013")
            .unwrap();

        // Matching message: reaches GF and the subscriber queue.
        let key = publisher.observation_key("Feedback", "FR75013");
        let routed = broker
            .publish(publisher.exchange(), &key, &b"fb"[..])
            .unwrap();
        assert_eq!(routed, 2);
        assert_eq!(broker.queue_depth(subscriber.queue()).unwrap(), 1);

        // Wrong location: GF only.
        let key = publisher.observation_key("Feedback", "FR92120");
        let routed = broker
            .publish(publisher.exchange(), &key, &b"fb"[..])
            .unwrap();
        assert_eq!(routed, 1);
        assert_eq!(broker.queue_depth(subscriber.queue()).unwrap(), 1);

        // Wrong datatype: GF only.
        let key = publisher.observation_key("Journey", "FR75013");
        let routed = broker
            .publish(publisher.exchange(), &key, &b"j"[..])
            .unwrap();
        assert_eq!(routed, 1);
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let (broker, manager, app) = setup();
        let publisher = manager.open_client(&app, 1.into()).unwrap();
        let s2 = manager.open_client(&app, 2.into()).unwrap();
        let s3 = manager.open_client(&app, 3.into()).unwrap();
        manager.subscribe(&s2, "Feedback", "FR75013").unwrap();
        manager.subscribe(&s3, "Feedback", "FR75013").unwrap();
        let key = publisher.observation_key("Feedback", "FR75013");
        let routed = broker
            .publish(publisher.exchange(), &key, &b"fb"[..])
            .unwrap();
        assert_eq!(routed, 3, "GF + two subscribers");
    }

    #[test]
    fn paper_scenario_home_and_current_locations() {
        // mob1 subscribes to Feedback at its current location (FR75013)
        // and Journey notifications at its home location (FR92120).
        let (broker, manager, app) = setup();
        let mob1 = manager.open_client(&app, 1.into()).unwrap();
        let mob2 = manager.open_client(&app, 2.into()).unwrap();
        manager.subscribe(&mob1, "Feedback", "FR75013").unwrap();
        manager.subscribe(&mob1, "Journey", "FR92120").unwrap();

        broker
            .publish(
                mob2.exchange(),
                &mob2.observation_key("Feedback", "FR75013"),
                &b"noisy bar"[..],
            )
            .unwrap();
        broker
            .publish(
                mob2.exchange(),
                &mob2.observation_key("Journey", "FR92120"),
                &b"new map"[..],
            )
            .unwrap();
        broker
            .publish(
                mob2.exchange(),
                &mob2.observation_key("Journey", "FR75013"),
                &b"other map"[..],
            )
            .unwrap();
        assert_eq!(broker.queue_depth(mob1.queue()).unwrap(), 2);
    }

    #[test]
    fn close_client_removes_endpoints() {
        let (broker, manager, app) = setup();
        let session = manager.open_client(&app, 1.into()).unwrap();
        manager.close_client(&session).unwrap();
        assert!(!broker.exchange_exists(session.exchange()));
        assert!(!broker.queue_exists(session.queue()));
        assert!(manager.close_client(&session).is_err());
    }

    #[test]
    fn client_ids_are_unique() {
        let (_, manager, app) = setup();
        let a = manager.open_client(&app, 1.into()).unwrap();
        let b = manager.open_client(&app, 1.into()).unwrap();
        assert_ne!(a.client_id(), b.client_id());
        assert_eq!(a.user(), UserId::new(1));
        assert_eq!(a.app(), &app);
    }
}
