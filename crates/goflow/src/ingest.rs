//! Ingest: from the GF queue to storage.
//!
//! The ingest component drains the application's GF collection queue,
//! decodes the JSON payloads (a payload may carry a single observation or
//! a buffered batch, as sent by app v1.3), stamps the server arrival time,
//! pseudonymises contributor identifiers per the privacy policy, derives
//! the query fields the analyses need, and stores the result as one
//! document per observation.

use crate::channels::gf_queue;
use crate::telemetry::telemetry;
use crate::{PrivacyPolicy, UsageAnalytics};
use mps_broker::Broker;
use mps_docstore::Collection;
use mps_telemetry::SpanTimer;
use mps_types::{AppId, Observation, SimTime};
use serde_json::{json, Value};
use std::sync::Arc;

/// Result of one ingest pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestOutcome {
    /// Observations decoded and stored.
    pub stored: usize,
    /// Messages that could not be decoded (dropped, not requeued).
    pub malformed: usize,
}

/// Conversion of wire observations into stored documents.
///
/// The stored document keeps everything the empirical analyses (Figures
/// 9–21) need — including derived buckets (`hour`, `day`, `month`,
/// `delay_ms`) — while replacing the raw device/user identifiers with
/// pseudonyms.
#[derive(Debug, Clone, Copy)]
pub struct ObservationRecord;

impl ObservationRecord {
    /// Builds the stored document for an observation that arrived at
    /// `arrived_at`.
    pub fn to_document(obs: &Observation, arrived_at: SimTime, policy: &PrivacyPolicy) -> Value {
        let delay_ms = arrived_at.since(obs.captured_at).as_millis();
        let location = obs.location.as_ref();
        json!({
            "device": policy.pseudonymize(obs.device.raw()).raw(),
            "user": policy.pseudonymize(obs.user.raw()).raw(),
            "model": obs.model.label(),
            "captured_ms": obs.captured_at.as_millis(),
            "arrived_ms": arrived_at.as_millis(),
            "delay_ms": delay_ms,
            "hour": obs.captured_at.hour_of_day(),
            "day": obs.captured_at.day(),
            "month": obs.captured_at.month(),
            "spl": obs.spl.db(),
            "localized": location.is_some(),
            "provider": location.map(|l| l.provider.name()),
            "accuracy": location.map(|l| l.accuracy_m),
            "lat": location.map(|l| l.point.lat),
            "lon": location.map(|l| l.point.lon),
            "activity": obs.activity.name(),
            "mode": obs.mode.name(),
            "app_version": obs.app_version.name(),
        })
    }
}

/// Drains GF queues into storage.
#[derive(Debug)]
pub(crate) struct Ingestor {
    broker: Arc<Broker>,
    policy: PrivacyPolicy,
}

impl Ingestor {
    pub(crate) fn new(broker: Arc<Broker>, policy: PrivacyPolicy) -> Self {
        Self { broker, policy }
    }

    /// Decodes a payload into one or more observations (v1.3 clients send
    /// buffered batches as JSON arrays).
    fn decode(payload: &[u8]) -> Result<Vec<Observation>, serde_json::Error> {
        let value: Value = serde_json::from_slice(payload)?;
        if value.is_array() {
            serde_json::from_value(value)
        } else {
            serde_json::from_value::<Observation>(value).map(|obs| vec![obs])
        }
    }

    /// Drains up to `max_messages` from the app's GF queue into
    /// `collection`, stamping `now` as the arrival time and recording
    /// per-day counts in `analytics`.
    pub(crate) fn drain(
        &self,
        app: &AppId,
        collection: &Collection,
        analytics: &UsageAnalytics,
        now: SimTime,
        max_messages: usize,
    ) -> IngestOutcome {
        let queue = gf_queue(app);
        let metrics = telemetry();
        let _drain_timer = SpanTimer::start(&metrics.ingest_drain_seconds);
        let mut outcome = IngestOutcome::default();
        let Ok(deliveries) = self.broker.consume(&queue, max_messages) else {
            return outcome;
        };
        for delivery in deliveries {
            match Self::decode(delivery.payload()) {
                Ok(observations) => {
                    for obs in &observations {
                        let doc = ObservationRecord::to_document(obs, now, &self.policy);
                        if collection.insert_one(doc).is_ok() {
                            outcome.stored += 1;
                            metrics.ingest_stored.inc();
                            metrics
                                .ingest_delivery_delay_ms
                                .observe(now.since(obs.captured_at).as_millis() as f64);
                            analytics.record(app, now, obs.is_localized());
                        }
                    }
                    let _ = self.broker.ack(&queue, delivery.tag);
                }
                Err(err) => {
                    outcome.malformed += 1;
                    metrics.ingest_malformed.inc();
                    let _ = self.broker.nack(&queue, delivery.tag, false);
                    let _ = err; // decode errors are counted, not propagated
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{
        Activity, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, SensingMode,
        SimDuration, SoundLevel,
    };

    fn sample_obs() -> Observation {
        Observation::builder()
            .device(7.into())
            .user(3.into())
            .model(DeviceModel::OneplusA0001)
            .captured_at(SimTime::from_hms(40, 14, 5, 0))
            .spl(SoundLevel::new(63.0))
            .location(LocationFix::new(
                GeoPoint::PARIS,
                28.0,
                LocationProvider::Network,
            ))
            .activity(Activity::Foot)
            .mode(SensingMode::Journey)
            .app_version(AppVersion::V1_2_9)
            .build()
    }

    #[test]
    fn document_has_derived_fields() {
        let obs = sample_obs();
        let arrived = obs.captured_at + SimDuration::from_secs(9);
        let doc = ObservationRecord::to_document(&obs, arrived, &PrivacyPolicy::default());
        assert_eq!(doc["model"], "ONEPLUS A0001");
        assert_eq!(doc["hour"], 14);
        assert_eq!(doc["day"], 40);
        assert_eq!(doc["month"], 1);
        assert_eq!(doc["delay_ms"], 9_000);
        assert_eq!(doc["localized"], true);
        assert_eq!(doc["provider"], "network");
        assert_eq!(doc["accuracy"], 28.0);
        assert_eq!(doc["activity"], "foot");
        assert_eq!(doc["mode"], "journey");
        assert_eq!(doc["app_version"], "1.2.9");
    }

    #[test]
    fn document_pseudonymises_ids() {
        let obs = sample_obs();
        let doc = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_ne!(doc["device"], 7);
        assert_ne!(doc["user"], 3);
        // Stable across calls.
        let doc2 = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_eq!(doc["device"], doc2["device"]);
    }

    #[test]
    fn unlocalized_observation_has_null_location_fields() {
        let mut obs = sample_obs();
        obs.location = None;
        let doc = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_eq!(doc["localized"], false);
        assert!(doc["provider"].is_null());
        assert!(doc["accuracy"].is_null());
        assert!(doc["lat"].is_null());
    }

    #[test]
    fn decode_single_and_batch() {
        let obs = sample_obs();
        let single = serde_json::to_vec(&obs).unwrap();
        assert_eq!(Ingestor::decode(&single).unwrap().len(), 1);
        let batch = serde_json::to_vec(&vec![obs.clone(), obs]).unwrap();
        assert_eq!(Ingestor::decode(&batch).unwrap().len(), 2);
        assert!(Ingestor::decode(b"not json").is_err());
        assert!(Ingestor::decode(b"{\"bogus\": 1}").is_err());
    }
}
