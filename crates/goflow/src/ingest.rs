//! Ingest: from the GF queue to storage.
//!
//! The ingest component drains the application's GF collection queue,
//! decodes the JSON payloads (a payload may carry a single observation or
//! a buffered batch, as sent by app v1.3), stamps the server arrival time,
//! pseudonymises contributor identifiers per the privacy policy, derives
//! the query fields the analyses need, and stores the result as one
//! document per observation.
//!
//! Ingest degrades gracefully instead of losing data silently:
//!
//! * **malformed** payloads are parked in the app's quarantine collection
//!   (with the decode error and the raw payload) and acknowledged;
//! * **late** observations — older on arrival than an opt-in threshold —
//!   are quarantined the same way instead of polluting the analyses;
//! * **storage failures** nack the message back for redelivery, so the
//!   broker's dead-letter policy eventually parks repeat offenders in the
//!   GF dead-letter queue rather than cycling or dropping them.
//!
//! Storage is batched: a drain pass collects every on-time observation it
//! decoded and stores them with a single `insert_many` (one
//! group-committed WAL append on a durable store), then settles the
//! drained messages with a single `ack_many` (one group-committed append
//! on a durable broker). If the batch insert fails, the pass falls back to
//! the per-message path — one insert and one ack/nack per message — which
//! attributes the loss to individual messages exactly as ingest always
//! has. Both paths build documents from the same observations with the
//! same code, so they store byte-identical documents.

use crate::channels::gf_queue;
use crate::telemetry::telemetry;
use crate::{PrivacyPolicy, UsageAnalytics};
use mps_broker::BrokerTransport;
use mps_docstore::CollectionHandle;
use mps_telemetry::trace::{
    parse_contexts, FlightRecorder, Hop, Outcome, SpanRecord, TraceContext, SENT_MS_HEADER,
    TRACE_HEADER,
};
use mps_telemetry::{SimSpanTimer, SpanTimer};
use mps_types::{AppId, Observation, SimDuration, SimTime};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Result of one ingest pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestOutcome {
    /// Observations decoded and stored.
    pub stored: usize,
    /// Messages that could not be decoded (quarantined, not dropped).
    pub malformed: usize,
    /// Documents parked in the quarantine collection — malformed payloads
    /// plus observations that exceeded the late-data threshold.
    pub quarantined: usize,
    /// Messages nacked back for redelivery after a storage failure (they
    /// dead-letter once the queue's delivery attempts are exhausted).
    pub requeued: usize,
}

/// Conversion of wire observations into stored documents.
///
/// The stored document keeps everything the empirical analyses (Figures
/// 9–21) need — including derived buckets (`hour`, `day`, `month`,
/// `delay_ms`) — while replacing the raw device/user identifiers with
/// pseudonyms.
#[derive(Debug, Clone, Copy)]
pub struct ObservationRecord;

impl ObservationRecord {
    /// Builds the stored document for an observation that arrived at
    /// `arrived_at`.
    pub fn to_document(obs: &Observation, arrived_at: SimTime, policy: &PrivacyPolicy) -> Value {
        let delay_ms = arrived_at.since(obs.captured_at).as_millis();
        let location = obs.location.as_ref();
        json!({
            "device": policy.pseudonymize(obs.device.raw()).raw(),
            "user": policy.pseudonymize(obs.user.raw()).raw(),
            "model": obs.model.label(),
            "captured_ms": obs.captured_at.as_millis(),
            "arrived_ms": arrived_at.as_millis(),
            "delay_ms": delay_ms,
            "hour": obs.captured_at.hour_of_day(),
            "day": obs.captured_at.day(),
            "month": obs.captured_at.month(),
            "spl": obs.spl.db(),
            "localized": location.is_some(),
            "provider": location.map(|l| l.provider.name()),
            "accuracy": location.map(|l| l.accuracy_m),
            "lat": location.map(|l| l.point.lat),
            "lon": location.map(|l| l.point.lon),
            "activity": obs.activity.name(),
            "mode": obs.mode.name(),
            "app_version": obs.app_version.name(),
        })
    }
}

/// Drains GF queues into storage. Works over any [`BrokerTransport`]
/// and [`CollectionHandle`], so the same drain loop runs against an
/// in-process broker/store pair or across sockets.
pub(crate) struct Ingestor {
    broker: Arc<dyn BrokerTransport>,
    policy: PrivacyPolicy,
    /// Late-data threshold in milliseconds; negative means disabled.
    late_threshold_ms: AtomicI64,
    /// Test hook: number of upcoming inserts to fail artificially (also
    /// fails the batched store attempt while non-zero, without counting
    /// down, so the per-message fallback attributes each failure).
    #[cfg(test)]
    pub(crate) force_storage_failures: std::sync::atomic::AtomicUsize,
    /// Test hook: skip the batched store attempt entirely, exercising the
    /// per-message path with storage still healthy.
    #[cfg(test)]
    pub(crate) force_batch_fallback: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for Ingestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingestor")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Ingestor {
    pub(crate) fn new(broker: Arc<dyn BrokerTransport>, policy: PrivacyPolicy) -> Self {
        Self {
            broker,
            policy,
            late_threshold_ms: AtomicI64::new(-1),
            #[cfg(test)]
            force_storage_failures: std::sync::atomic::AtomicUsize::new(0),
            #[cfg(test)]
            force_batch_fallback: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Sets (or clears, with `None`) the late-data threshold: observations
    /// older than this on arrival are quarantined instead of stored.
    pub(crate) fn set_late_quarantine(&self, threshold: Option<SimDuration>) {
        let ms = threshold.map_or(-1, |d| d.as_millis());
        self.late_threshold_ms.store(ms, Ordering::Relaxed);
    }

    fn late_threshold(&self) -> Option<SimDuration> {
        let ms = self.late_threshold_ms.load(Ordering::Relaxed);
        (ms >= 0).then(|| SimDuration::from_millis(ms))
    }

    /// Inserts a stored-observation document, honouring the test hook that
    /// simulates storage failures.
    fn insert_observation(
        &self,
        collection: &CollectionHandle,
        doc: Value,
    ) -> Result<mps_docstore::DocId, mps_docstore::StoreError> {
        #[cfg(test)]
        if self
            .force_storage_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(mps_docstore::StoreError::NotAnObject);
        }
        collection.insert_one(doc)
    }

    /// Decodes a payload into one or more observations (v1.3 clients send
    /// buffered batches as JSON arrays).
    fn decode(payload: &[u8]) -> Result<Vec<Observation>, serde_json::Error> {
        let value: Value = serde_json::from_slice(payload)?;
        if value.is_array() {
            serde_json::from_value(value)
        } else {
            serde_json::from_value::<Observation>(value).map(|obs| vec![obs])
        }
    }

    /// Drains up to `max_messages` from the app's GF queue into
    /// `collection`, stamping `now` as the arrival time and recording
    /// per-day counts in `analytics`. Malformed payloads and late
    /// observations are parked in `quarantine`; storage failures nack the
    /// message back for redelivery (and, eventually, dead-lettering).
    ///
    /// On-time observations are stored with one batched insert and the
    /// drained messages settled with one batched ack per pass; a failed
    /// batch falls back to per-message storage (see the [module
    /// docs](self)).
    pub(crate) fn drain(
        &self,
        app: &AppId,
        collection: &CollectionHandle,
        quarantine: &CollectionHandle,
        analytics: &UsageAnalytics,
        now: SimTime,
        max_messages: usize,
    ) -> IngestOutcome {
        let queue = gf_queue(app);
        let metrics = telemetry();
        let _drain_timer = SpanTimer::start(&metrics.ingest_drain_seconds);
        let mut outcome = IngestOutcome::default();
        let pass = DrainPass {
            app,
            queue: &queue,
            collection,
            quarantine,
            analytics,
            late_threshold: self.late_threshold(),
            now,
        };
        let Ok(deliveries) = self.broker.consume(&queue, max_messages) else {
            return outcome;
        };

        // Decode pass. Malformed payloads are quarantined and settled
        // immediately — both storage paths treat them identically —
        // while decoded messages join the batch.
        let mut decoded = Vec::new();
        for delivery in deliveries {
            // Trace context: one entry per observation in the payload, in
            // payload order, re-parented under a `broker_queue` span that
            // covers the message's residence in the GF queue.
            let contexts = ingest_contexts(&delivery.message, now);
            match Self::decode(delivery.payload()) {
                Ok(observations) => decoded.push(DecodedMessage {
                    tag: delivery.tag,
                    observations,
                    contexts,
                }),
                Err(err) => {
                    outcome.malformed += 1;
                    metrics.ingest_malformed.inc();
                    let parked = quarantine.insert_one(json!({
                        "reason": "malformed",
                        "error": err.to_string(),
                        "payload": String::from_utf8_lossy(delivery.payload()),
                        "arrived_ms": now.as_millis(),
                    }));
                    if parked.is_ok() {
                        outcome.quarantined += 1;
                        metrics.ingest_quarantined_malformed.inc();
                        for ctx in &contexts {
                            record_ingest_span(
                                Some(*ctx),
                                Hop::Quarantine,
                                Outcome::Quarantined,
                                "malformed",
                                now,
                            );
                        }
                    }
                    // The payload is preserved in quarantine, so the broker
                    // copy can be discarded without silent loss.
                    let _ = self.broker.nack(&queue, delivery.tag, false);
                }
            }
        }
        if decoded.is_empty() {
            return outcome;
        }

        metrics.ingest_batches.inc();
        if let Some(batch) = self.try_store_batch(&pass, &decoded) {
            for late in batch.late {
                self.quarantine_late(&pass, late, &mut outcome);
            }
            for stored in batch.stored {
                outcome.stored += 1;
                metrics.ingest_stored.inc();
                metrics
                    .ingest_delivery_delay_ms
                    .observe(stored.delay.as_millis() as f64);
                analytics.record(app, now, stored.localized);
                record_ingest_span(stored.ctx, Hop::DocstoreWrite, Outcome::Ok, "stored", now);
            }
            let tags: Vec<u64> = decoded.iter().map(|m| m.tag).collect();
            let _ = self.broker.ack_many(&queue, &tags);
            return outcome;
        }

        metrics.ingest_batch_fallbacks.inc();
        for message in decoded {
            self.store_per_message(&pass, message, &mut outcome);
        }
        outcome
    }

    /// Attempts the batched store: classifies every decoded observation
    /// (without side effects) and inserts all on-time documents with one
    /// `insert_many`. `None` means the batch insert failed and the caller
    /// must fall back to per-message storage.
    fn try_store_batch(
        &self,
        pass: &DrainPass<'_>,
        decoded: &[DecodedMessage],
    ) -> Option<StoredBatch> {
        #[cfg(test)]
        if self.force_storage_failures.load(Ordering::SeqCst) > 0
            || self.force_batch_fallback.load(Ordering::Relaxed)
        {
            return None;
        }
        let mut docs = Vec::new();
        let mut batch = StoredBatch::default();
        for message in decoded {
            for (i, obs) in message.observations.iter().enumerate() {
                let ctx = message.contexts.get(i).copied();
                let delay = pass.now.saturating_since(obs.captured_at);
                if pass.late_threshold.is_some_and(|limit| delay > limit) {
                    batch.late.push(LateObservation {
                        ctx,
                        delay,
                        document: ObservationRecord::to_document(obs, pass.now, &self.policy),
                    });
                    continue;
                }
                let mut doc = ObservationRecord::to_document(obs, pass.now, &self.policy);
                if let Some(ctx) = ctx {
                    doc["trace"] = json!(ctx.trace.to_string());
                }
                docs.push(doc);
                batch.stored.push(StoredObservation {
                    ctx,
                    delay,
                    localized: obs.is_localized(),
                });
            }
        }
        if !docs.is_empty() {
            pass.collection.insert_many(docs).ok()?;
        }
        Some(batch)
    }

    /// The per-message storage path: one insert per observation, one
    /// ack/nack per message. This is both the fallback after a failed
    /// batch insert and the reference semantics the batched path must
    /// match.
    fn store_per_message(
        &self,
        pass: &DrainPass<'_>,
        message: DecodedMessage,
        outcome: &mut IngestOutcome,
    ) {
        let metrics = telemetry();
        let mut storage_failed = false;
        for (i, obs) in message.observations.iter().enumerate() {
            let ctx = message.contexts.get(i).copied();
            let delay = pass.now.saturating_since(obs.captured_at);
            if pass.late_threshold.is_some_and(|limit| delay > limit) {
                let late = LateObservation {
                    ctx,
                    delay,
                    document: ObservationRecord::to_document(obs, pass.now, &self.policy),
                };
                self.quarantine_late(pass, late, outcome);
                continue;
            }
            let mut doc = ObservationRecord::to_document(obs, pass.now, &self.policy);
            if let Some(ctx) = ctx {
                doc["trace"] = json!(ctx.trace.to_string());
            }
            if self.insert_observation(pass.collection, doc).is_ok() {
                outcome.stored += 1;
                metrics.ingest_stored.inc();
                metrics
                    .ingest_delivery_delay_ms
                    .observe(delay.as_millis() as f64);
                pass.analytics
                    .record(pass.app, pass.now, obs.is_localized());
                record_ingest_span(ctx, Hop::DocstoreWrite, Outcome::Ok, "stored", pass.now);
            } else {
                storage_failed = true;
                break;
            }
        }
        if storage_failed {
            // Redeliver the whole message: the broker counts the
            // attempt and dead-letters it once the queue's policy
            // is exhausted, so nothing is lost silently. This is
            // at-least-once — observations stored before the
            // failure may be stored again on redelivery.
            outcome.requeued += 1;
            metrics.ingest_storage_failures.inc();
            let _ = self.broker.nack(pass.queue, message.tag, true);
        } else {
            let _ = self.broker.ack(pass.queue, message.tag);
        }
    }

    /// Parks one late observation in the quarantine collection.
    fn quarantine_late(
        &self,
        pass: &DrainPass<'_>,
        late: LateObservation,
        outcome: &mut IngestOutcome,
    ) {
        let parked = pass.quarantine.insert_one(json!({
            "reason": "late",
            "delay_ms": late.delay.as_millis(),
            "arrived_ms": pass.now.as_millis(),
            "trace": late.ctx.map(|c| c.trace.to_string()),
            "observation": late.document,
        }));
        if parked.is_ok() {
            outcome.quarantined += 1;
            telemetry().ingest_quarantined_late.inc();
            record_ingest_span(
                late.ctx,
                Hop::Quarantine,
                Outcome::Quarantined,
                "late",
                pass.now,
            );
        }
    }
}

/// Shared context of one drain pass.
struct DrainPass<'a> {
    app: &'a AppId,
    queue: &'a str,
    collection: &'a CollectionHandle,
    quarantine: &'a CollectionHandle,
    analytics: &'a UsageAnalytics,
    late_threshold: Option<SimDuration>,
    now: SimTime,
}

/// A decoded GF message awaiting storage: the broker tag to settle, the
/// observations it carried and their trace contexts (payload order).
struct DecodedMessage {
    tag: u64,
    observations: Vec<Observation>,
    contexts: Vec<TraceContext>,
}

/// Classification result of a successful batched store attempt.
#[derive(Default)]
struct StoredBatch {
    late: Vec<LateObservation>,
    stored: Vec<StoredObservation>,
}

/// A late observation to park in quarantine.
struct LateObservation {
    ctx: Option<TraceContext>,
    delay: SimDuration,
    document: Value,
}

/// Bookkeeping for one observation stored by the batched path.
struct StoredObservation {
    ctx: Option<TraceContext>,
    delay: SimDuration,
    localized: bool,
}

/// Parses the trace contexts off a delivered message and closes each
/// one's `broker_queue` span (publish → this drain), re-parenting the
/// context under it. The queue wait also feeds the
/// `goflow_ingest_broker_wait_ms` histogram via a [`SimSpanTimer`], so
/// the waterfall and the metrics agree. Untraced messages yield an
/// empty vector.
fn ingest_contexts(message: &mps_broker::Message, now: SimTime) -> Vec<TraceContext> {
    let Some(header) = message.header(TRACE_HEADER) else {
        return Vec::new();
    };
    let contexts = parse_contexts(header);
    if contexts.is_empty() {
        return Vec::new();
    }
    let sent_ms = message
        .header(SENT_MS_HEADER)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| now.as_millis());
    let timer = SimSpanTimer::start_at(&telemetry().ingest_broker_wait_ms, sent_ms);
    timer.stop_at(now.as_millis());
    let recorder = FlightRecorder::global();
    contexts
        .iter()
        .map(|ctx| {
            let span = recorder.record(
                SpanRecord::new(ctx.trace, Hop::BrokerQueue, now.as_millis())
                    .started_at(sent_ms)
                    .parent(ctx.parent)
                    .duplicate(ctx.duplicate),
            );
            ctx.child_of(span)
        })
        .collect()
}

/// Records one ingest-side span for an observation's context, if it has
/// one: the terminal `docstore_write` / `quarantine` ends of a trace.
fn record_ingest_span(
    ctx: Option<TraceContext>,
    hop: Hop,
    outcome: Outcome,
    reason: &str,
    now: SimTime,
) {
    let Some(ctx) = ctx else { return };
    FlightRecorder::global().record(
        SpanRecord::new(ctx.trace, hop, now.as_millis())
            .parent(ctx.parent)
            .duplicate(ctx.duplicate)
            .outcome(outcome)
            .attr("reason", reason.to_owned()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{
        Activity, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, SensingMode,
        SimDuration, SoundLevel,
    };

    fn sample_obs() -> Observation {
        Observation::builder()
            .device(7.into())
            .user(3.into())
            .model(DeviceModel::OneplusA0001)
            .captured_at(SimTime::from_hms(40, 14, 5, 0))
            .spl(SoundLevel::new(63.0))
            .location(LocationFix::new(
                GeoPoint::PARIS,
                28.0,
                LocationProvider::Network,
            ))
            .activity(Activity::Foot)
            .mode(SensingMode::Journey)
            .app_version(AppVersion::V1_2_9)
            .build()
    }

    #[test]
    fn document_has_derived_fields() {
        let obs = sample_obs();
        let arrived = obs.captured_at + SimDuration::from_secs(9);
        let doc = ObservationRecord::to_document(&obs, arrived, &PrivacyPolicy::default());
        assert_eq!(doc["model"], "ONEPLUS A0001");
        assert_eq!(doc["hour"], 14);
        assert_eq!(doc["day"], 40);
        assert_eq!(doc["month"], 1);
        assert_eq!(doc["delay_ms"], 9_000);
        assert_eq!(doc["localized"], true);
        assert_eq!(doc["provider"], "network");
        assert_eq!(doc["accuracy"], 28.0);
        assert_eq!(doc["activity"], "foot");
        assert_eq!(doc["mode"], "journey");
        assert_eq!(doc["app_version"], "1.2.9");
    }

    #[test]
    fn document_pseudonymises_ids() {
        let obs = sample_obs();
        let doc = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_ne!(doc["device"], 7);
        assert_ne!(doc["user"], 3);
        // Stable across calls.
        let doc2 = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_eq!(doc["device"], doc2["device"]);
    }

    #[test]
    fn unlocalized_observation_has_null_location_fields() {
        let mut obs = sample_obs();
        obs.location = None;
        let doc = ObservationRecord::to_document(&obs, obs.captured_at, &PrivacyPolicy::default());
        assert_eq!(doc["localized"], false);
        assert!(doc["provider"].is_null());
        assert!(doc["accuracy"].is_null());
        assert!(doc["lat"].is_null());
    }

    #[test]
    fn decode_single_and_batch() {
        let obs = sample_obs();
        let single = serde_json::to_vec(&obs).unwrap();
        assert_eq!(Ingestor::decode(&single).unwrap().len(), 1);
        let batch = serde_json::to_vec(&vec![obs.clone(), obs]).unwrap();
        assert_eq!(Ingestor::decode(&batch).unwrap().len(), 2);
        assert!(Ingestor::decode(b"not json").is_err());
        assert!(Ingestor::decode(b"{\"bogus\": 1}").is_err());
    }
}
