//! # mps-goflow — the GoFlow crowd-sensing middleware server
//!
//! GoFlow (Section 3 of the paper) is the server side of the SoundCity
//! deployment: it stores the crowd's contributions, manages accounts and
//! privacy, and wires the RabbitMQ messaging topology on behalf of mobile
//! clients. This crate implements its components on top of
//! [`mps_broker`] (messaging) and [`mps_docstore`] (storage):
//!
//! * [`AccountManager`] — register apps/users with roles, token auth
//!   (Figure 2: "Account and access management").
//! * [`PrivacyPolicy`] — CNIL-style pseudonymisation of contributor
//!   identifiers and per-app private-field stripping for open data
//!   ("GoFlow implements the privacy policy set by the French CNIL").
//! * [`ChannelManager`] — creates the exchanges, queues and bindings of
//!   Figure 3 on behalf of clients ("Channel management").
//! * ingest — drains the GF queue, validates, stamps arrival times,
//!   pseudonymises and stores observations ("Data storage"). It degrades
//!   gracefully: malformed payloads and (opt-in) late observations are
//!   parked in a per-app quarantine collection, and storage failures are
//!   redelivered until the broker's dead-letter policy parks them in the
//!   GF dead-letter queue — never silent loss (see
//!   [`GoFlowServer::quarantine`] and [`GoFlowServer::set_late_quarantine`]).
//! * [`ObservationQuery`] — filtered retrieval with packaging
//!   ("Crowd-sensed data management").
//! * [`JobRegistry`] — background jobs over stored data
//!   ("Background jobs").
//! * [`UsageAnalytics`] — per-app/per-day contribution counters
//!   ("Crowd-sensing analytics", the source of Figure 8).
//! * [`GoFlowServer`] — the facade tying the components together, plus a
//!   typed REST-like [`api`] surface.
//!
//! # Examples
//!
//! ```
//! use mps_broker::Broker;
//! use mps_docstore::Store;
//! use mps_goflow::{GoFlowServer, Role};
//! use mps_types::{AppId, SimTime};
//! use std::sync::Arc;
//!
//! let broker = Arc::new(Broker::new());
//! let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
//! server.register_app(&AppId::soundcity())?;
//! let token = server.register_user(&AppId::soundcity(), 1.into(), Role::Contributor)?;
//! let session = server.login(&token)?;
//! assert!(broker.queue_exists(session.queue()));
//! # Ok::<(), mps_goflow::GoFlowError>(())
//! ```

mod accounts;
mod analytics;
pub mod api;
mod channels;
mod data;
mod error;
mod ingest;
mod jobs;
mod privacy;
#[cfg(test)]
mod proptests;
mod server;
mod telemetry;

pub use accounts::{AccountManager, Role, Token};
pub use analytics::UsageAnalytics;
pub use channels::{ChannelManager, ClientSession};
pub use data::{ObservationQuery, Packaging};
pub use error::GoFlowError;
pub use ingest::{IngestOutcome, ObservationRecord};
pub use jobs::{JobId, JobRegistry, JobStatus};
pub use privacy::{PrivacyPolicy, Pseudonym};
pub use server::GoFlowServer;
