//! REST-like typed API surface.
//!
//! The paper's GoFlow exposes a REST API "for clients and administrators
//! to: authenticate and register subscribers and publishers, retrieve
//! crowd-sensed data based on various filtering parameters, manage user
//! accounts for an app, and submit and manage background jobs" (Figure 2).
//!
//! This module models that surface as typed request/response values (the
//! in-process analogue of HTTP endpoints), dispatched by
//! [`handle`]. Transport-independent by design: a real deployment would
//! put an HTTP layer in front of exactly this dispatch.

use crate::accounts::{Role, Token};
use crate::data::{ObservationQuery, Packaging};
use crate::jobs::{JobId, JobStatus};
use crate::server::GoFlowServer;
use crate::GoFlowError;
use mps_types::{AppId, SimTime, UserId};

/// A request to the GoFlow API.
#[derive(Debug, Clone)]
pub enum ApiRequest {
    /// Register an application (administrative).
    RegisterApp {
        /// Application to register.
        app: AppId,
    },
    /// Register a user account and obtain a token.
    RegisterUser {
        /// Target application.
        app: AppId,
        /// User identifier.
        user: UserId,
        /// Granted role.
        role: Role,
    },
    /// Authenticate and open a messaging session.
    Login {
        /// The user's token.
        token: Token,
    },
    /// Revoke a token.
    Revoke {
        /// Token to revoke.
        token: Token,
    },
    /// Retrieve crowd-sensed data with filters and packaging.
    Export {
        /// Owning application.
        app: AppId,
        /// Typed filter parameters.
        query: ObservationQuery,
        /// Output encoding.
        packaging: Packaging,
    },
    /// Drain pending contributions into storage (operations endpoint).
    Ingest {
        /// Owning application.
        app: AppId,
        /// Server arrival timestamp to stamp.
        now: SimTime,
        /// Upper bound on drained messages.
        max_messages: usize,
    },
    /// Query the status of a background job.
    JobStatus {
        /// Job identifier.
        id: JobId,
    },
    /// Contribution statistics for an app.
    Stats {
        /// Application to report on.
        app: AppId,
    },
}

/// A response from the GoFlow API.
#[derive(Debug, Clone)]
pub enum ApiResponse {
    /// The operation completed with no payload.
    Ok,
    /// A token was issued.
    Token(Token),
    /// A session was opened; carries the broker endpoints.
    Session {
        /// Client identifier (shared secret).
        client_id: String,
        /// Exchange to publish to.
        exchange: String,
        /// Queue to consume notifications from.
        queue: String,
    },
    /// Packaged query results.
    Package(String),
    /// Ingest outcome: stored and malformed counts.
    Ingested {
        /// Observations stored.
        stored: usize,
        /// Messages dropped as malformed.
        malformed: usize,
    },
    /// A job status.
    Job(JobStatus),
    /// Contribution statistics.
    Stats {
        /// Total stored observations.
        total: u64,
        /// Localized stored observations.
        localized: u64,
        /// Active user accounts.
        users: usize,
    },
}

/// Dispatches a request against a server.
///
/// # Errors
///
/// Propagates the underlying [`GoFlowError`] of the invoked operation.
pub fn handle(server: &GoFlowServer, request: ApiRequest) -> Result<ApiResponse, GoFlowError> {
    match request {
        ApiRequest::RegisterApp { app } => {
            server.register_app(&app)?;
            Ok(ApiResponse::Ok)
        }
        ApiRequest::RegisterUser { app, user, role } => {
            let token = server.register_user(&app, user, role)?;
            Ok(ApiResponse::Token(token))
        }
        ApiRequest::Login { token } => {
            let session = server.login(&token)?;
            Ok(ApiResponse::Session {
                client_id: session.client_id().to_string(),
                exchange: session.exchange().to_owned(),
                queue: session.queue().to_owned(),
            })
        }
        ApiRequest::Revoke { token } => {
            server.revoke(&token)?;
            Ok(ApiResponse::Ok)
        }
        ApiRequest::Export {
            app,
            query,
            packaging,
        } => Ok(ApiResponse::Package(
            server.export(&app, &query, packaging)?,
        )),
        ApiRequest::Ingest {
            app,
            now,
            max_messages,
        } => {
            let outcome = server.ingest_pending(&app, now, max_messages)?;
            Ok(ApiResponse::Ingested {
                stored: outcome.stored,
                malformed: outcome.malformed,
            })
        }
        ApiRequest::JobStatus { id } => Ok(ApiResponse::Job(server.job_status(id)?)),
        ApiRequest::Stats { app } => Ok(ApiResponse::Stats {
            total: server.observation_total(&app),
            localized: server.observation_total_localized(&app),
            users: server.user_count(&app),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_broker::Broker;
    use mps_docstore::Store;
    use std::sync::Arc;

    fn server() -> GoFlowServer {
        GoFlowServer::new(Arc::new(Broker::new()), Store::new())
    }

    #[test]
    fn register_login_flow_via_api() {
        let server = server();
        let app = AppId::soundcity();
        assert!(matches!(
            handle(&server, ApiRequest::RegisterApp { app: app.clone() }).unwrap(),
            ApiResponse::Ok
        ));
        let token = match handle(
            &server,
            ApiRequest::RegisterUser {
                app: app.clone(),
                user: 1.into(),
                role: Role::Contributor,
            },
        )
        .unwrap()
        {
            ApiResponse::Token(t) => t,
            other => panic!("expected token, got {other:?}"),
        };
        let response = handle(&server, ApiRequest::Login { token }).unwrap();
        match response {
            ApiResponse::Session {
                exchange,
                queue,
                client_id,
            } => {
                assert!(exchange.contains(&client_id));
                assert!(server.broker().queue_exists(&queue));
            }
            other => panic!("expected session, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_export_endpoints() {
        let server = server();
        let app = AppId::soundcity();
        handle(&server, ApiRequest::RegisterApp { app: app.clone() }).unwrap();
        match handle(&server, ApiRequest::Stats { app: app.clone() }).unwrap() {
            ApiResponse::Stats {
                total,
                localized,
                users,
            } => {
                assert_eq!((total, localized, users), (0, 0, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        match handle(
            &server,
            ApiRequest::Export {
                app,
                query: ObservationQuery::new(),
                packaging: Packaging::JsonArray,
            },
        )
        .unwrap()
        {
            ApiResponse::Package(s) => assert_eq!(s, "[]"),
            other => panic!("expected package, got {other:?}"),
        }
    }

    #[test]
    fn errors_propagate() {
        let server = server();
        let ghost = AppId::new("GHOST");
        assert!(handle(&server, ApiRequest::Stats { app: ghost.clone() }).is_ok()); // stats on unknown app reports zeros
        assert!(handle(
            &server,
            ApiRequest::Ingest {
                app: ghost,
                now: SimTime::EPOCH,
                max_messages: 1
            }
        )
        .is_err());
        assert!(handle(&server, ApiRequest::JobStatus { id: JobId(9) }).is_err());
        assert!(handle(
            &server,
            ApiRequest::Revoke {
                token: Token::from_raw("nope")
            }
        )
        .is_err());
    }
}
