//! The GoFlow server facade.

use crate::accounts::{AccountManager, Role, Token};
use crate::analytics::UsageAnalytics;
use crate::channels::{ChannelManager, ClientSession};
use crate::data::{ObservationQuery, Packaging};
use crate::ingest::{IngestOutcome, Ingestor};
use crate::jobs::{JobId, JobRegistry, JobStatus};
use crate::privacy::PrivacyPolicy;
use crate::telemetry::telemetry;
use crate::GoFlowError;
use mps_broker::{Broker, BrokerTransport};
use mps_docstore::{CollectionHandle, DocstoreTransport, FindOptions, Store};
use mps_types::{AppId, SimDuration, SimTime, UserId};
use serde_json::Value;
use std::sync::Arc;

/// The GoFlow crowd-sensing server (Figure 2 of the paper): one object
/// wiring accounts, privacy, channel management, ingest, data management,
/// background jobs and usage analytics over a shared broker and store.
///
/// The broker and store are held as [`BrokerTransport`] and
/// [`DocstoreTransport`] objects, so the same server runs over in-process
/// components ([`GoFlowServer::new`]) or over remote ones behind sockets
/// ([`GoFlowServer::over`]) without code changes.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct GoFlowServer {
    broker: Arc<dyn BrokerTransport>,
    store: Arc<dyn DocstoreTransport>,
    accounts: AccountManager,
    channels: ChannelManager,
    privacy: PrivacyPolicy,
    jobs: JobRegistry,
    analytics: UsageAnalytics,
    ingestor: Ingestor,
}

impl std::fmt::Debug for GoFlowServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoFlowServer")
            .field("accounts", &self.accounts)
            .field("privacy", &self.privacy)
            .field("jobs", &self.jobs)
            .field("analytics", &self.analytics)
            .finish_non_exhaustive()
    }
}

fn collection_name(app: &AppId) -> String {
    format!("obs-{app}")
}

fn quarantine_name(app: &AppId) -> String {
    format!("quarantine-{app}")
}

impl GoFlowServer {
    /// Creates a server over an in-process broker and store, with the
    /// default privacy policy (pseudonymisation on, no private paths).
    pub fn new(broker: Arc<Broker>, store: Store) -> Self {
        Self::with_policy(broker, store, PrivacyPolicy::default())
    }

    /// Creates a server over an in-process broker and store with an
    /// explicit privacy policy.
    pub fn with_policy(broker: Arc<Broker>, store: Store, policy: PrivacyPolicy) -> Self {
        Self::over_with_policy(broker, Arc::new(store), policy)
    }

    /// Creates a server over *any* transports — e.g. an
    /// `mps_net::RemoteBroker` and `mps_net::RemoteStore` when the broker
    /// and docstore run as separate processes — with the default privacy
    /// policy.
    pub fn over(broker: Arc<dyn BrokerTransport>, store: Arc<dyn DocstoreTransport>) -> Self {
        Self::over_with_policy(broker, store, PrivacyPolicy::default())
    }

    /// Creates a server over any transports with an explicit privacy
    /// policy.
    pub fn over_with_policy(
        broker: Arc<dyn BrokerTransport>,
        store: Arc<dyn DocstoreTransport>,
        policy: PrivacyPolicy,
    ) -> Self {
        Self {
            channels: ChannelManager::new(Arc::clone(&broker)),
            ingestor: Ingestor::new(Arc::clone(&broker), policy.clone()),
            broker,
            store,
            accounts: AccountManager::new(),
            privacy: policy,
            jobs: JobRegistry::new(),
            analytics: UsageAnalytics::new(),
        }
    }

    /// The shared broker transport.
    pub fn broker(&self) -> &Arc<dyn BrokerTransport> {
        &self.broker
    }

    /// The backing store transport.
    pub fn store(&self) -> &Arc<dyn DocstoreTransport> {
        &self.store
    }

    /// The active privacy policy.
    pub fn privacy(&self) -> &PrivacyPolicy {
        &self.privacy
    }

    /// Usage analytics counters.
    pub fn analytics(&self) -> &UsageAnalytics {
        &self.analytics
    }

    // ----- application lifecycle -------------------------------------------

    /// Registers an application: account namespace, messaging topology
    /// (Figure 3) and storage collection with the standard indexes.
    ///
    /// # Errors
    ///
    /// Propagates broker errors from the topology declarations.
    pub fn register_app(&self, app: &AppId) -> Result<(), GoFlowError> {
        self.accounts.register_app(app);
        self.channels.setup_app(app)?;
        let collection = self.store.collection(&collection_name(app));
        collection.create_index("model")?;
        collection.create_index("provider")?;
        collection.create_index("captured_ms")?;
        Ok(())
    }

    /// The observation collection of an app.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app.
    pub fn collection(&self, app: &AppId) -> Result<CollectionHandle, GoFlowError> {
        if !self.accounts.has_app(app) {
            return Err(GoFlowError::UnknownApp(app.to_string()));
        }
        Ok(self.store.collection(&collection_name(app)))
    }

    /// The quarantine collection of an app: malformed payloads and late
    /// observations parked by ingest, each with a `reason` field.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app.
    pub fn quarantine(&self, app: &AppId) -> Result<CollectionHandle, GoFlowError> {
        if !self.accounts.has_app(app) {
            return Err(GoFlowError::UnknownApp(app.to_string()));
        }
        Ok(self.store.collection(&quarantine_name(app)))
    }

    /// The GF dead-letter queue name of an app (messages whose ingest
    /// kept failing are parked there by the broker).
    pub fn dead_letter_queue(&self, app: &AppId) -> String {
        self.channels.dead_letter_queue(app)
    }

    // ----- accounts ---------------------------------------------------------

    /// Registers a user for an app, returning their authentication token.
    ///
    /// # Errors
    ///
    /// See [`AccountManager::register_user`].
    pub fn register_user(
        &self,
        app: &AppId,
        user: UserId,
        role: Role,
    ) -> Result<Token, GoFlowError> {
        self.accounts.register_user(app, user, role)
    }

    /// Revokes a token.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::InvalidToken`] for an unknown token.
    pub fn revoke(&self, token: &Token) -> Result<(), GoFlowError> {
        self.accounts.revoke(token)
    }

    /// Number of active accounts for an app.
    pub fn user_count(&self, app: &AppId) -> usize {
        self.accounts.user_count(app)
    }

    /// CNIL right to erasure: revokes the user's credentials and deletes
    /// every observation they contributed to the app (located via their
    /// stable pseudonym). Returns how many documents were deleted.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app.
    pub fn erase_user(&self, app: &AppId, user: UserId) -> Result<usize, GoFlowError> {
        let collection = self.collection(app)?;
        self.accounts.revoke_user(app, user);
        let pseudonym = self.privacy.pseudonymize(user.raw()).raw();
        Ok(collection.delete_many(&mps_docstore::Filter::eq("user", pseudonym))?)
    }

    // ----- sessions -----------------------------------------------------------

    /// Authenticates a token and opens a client session: the per-client
    /// exchange/queue of Figure 3 are created and returned.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::InvalidToken`] or broker errors.
    pub fn login(&self, token: &Token) -> Result<ClientSession, GoFlowError> {
        let (app, user, _) = self.accounts.authenticate(token)?;
        self.channels.open_client(&app, user)
    }

    /// Closes a client session, removing its broker endpoints.
    ///
    /// # Errors
    ///
    /// Propagates broker errors.
    pub fn logout(&self, session: &ClientSession) -> Result<(), GoFlowError> {
        self.channels.close_client(session)
    }

    /// Subscribes the session to `datatype` messages at `location`.
    ///
    /// # Errors
    ///
    /// Propagates broker errors.
    pub fn subscribe(
        &self,
        session: &ClientSession,
        datatype: &str,
        location: &str,
    ) -> Result<(), GoFlowError> {
        self.channels.subscribe(session, datatype, location)
    }

    // ----- ingest -------------------------------------------------------------

    /// Drains up to `max_messages` pending messages from the app's GF
    /// queue into storage, stamping `now` as the arrival time. Malformed
    /// payloads and late observations land in the app's
    /// [quarantine](GoFlowServer::quarantine) collection; messages hit by
    /// storage failures are redelivered and eventually dead-lettered.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app.
    pub fn ingest_pending(
        &self,
        app: &AppId,
        now: SimTime,
        max_messages: usize,
    ) -> Result<IngestOutcome, GoFlowError> {
        let collection = self.collection(app)?;
        let quarantine = self.quarantine(app)?;
        telemetry().server_ingest_passes.inc();
        Ok(self.ingestor.drain(
            app,
            &collection,
            &quarantine,
            &self.analytics,
            now,
            max_messages,
        ))
    }

    /// Enables (or, with `None`, disables) late-data quarantine:
    /// observations older than `threshold` on arrival are parked in the
    /// quarantine collection instead of stored. Disabled by default.
    pub fn set_late_quarantine(&self, threshold: Option<SimDuration>) {
        self.ingestor.set_late_quarantine(threshold);
    }

    // ----- data management ------------------------------------------------------

    /// Runs a typed query over an app's observations.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] or storage errors.
    pub fn query(&self, app: &AppId, query: &ObservationQuery) -> Result<Vec<Value>, GoFlowError> {
        let collection = self.collection(app)?;
        telemetry().server_queries.inc();
        let mut options = FindOptions::new();
        if let Some(limit) = query.limit_value() {
            options = options.limit(limit);
        }
        Ok(collection.find_with_options(&query.to_filter(), &options)?)
    }

    /// Runs a query and encodes the result for download.
    ///
    /// # Errors
    ///
    /// See [`GoFlowServer::query`].
    pub fn export(
        &self,
        app: &AppId,
        query: &ObservationQuery,
        packaging: Packaging,
    ) -> Result<String, GoFlowError> {
        Ok(packaging.encode(&self.query(app, query)?))
    }

    /// Runs a query on behalf of *another* application ("open data"):
    /// private paths of the owning app's policy are stripped from each
    /// document.
    ///
    /// # Errors
    ///
    /// See [`GoFlowServer::query`].
    pub fn query_shared(
        &self,
        owner: &AppId,
        query: &ObservationQuery,
    ) -> Result<Vec<Value>, GoFlowError> {
        let mut docs = self.query(owner, query)?;
        for doc in &mut docs {
            self.privacy.redact(doc);
        }
        Ok(docs)
    }

    // ----- background jobs ---------------------------------------------------------

    /// Submits a background job (requires a Manager token for the app).
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::PermissionDenied`] for insufficient role or
    /// [`GoFlowError::InvalidToken`].
    pub fn submit_job(
        &self,
        token: &Token,
        name: impl Into<String>,
        script: impl Fn(&CollectionHandle) -> Result<Value, String> + Send + Sync + 'static,
    ) -> Result<JobId, GoFlowError> {
        self.accounts
            .require_role(token, Role::Manager, "submit job")?;
        Ok(self.jobs.submit(name, script))
    }

    /// Runs pending jobs against an app's collection; returns how many ran.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::UnknownApp`] for an unregistered app.
    pub fn run_jobs(&self, app: &AppId) -> Result<usize, GoFlowError> {
        let collection = self.collection(app)?;
        Ok(self.jobs.run_pending(&collection))
    }

    /// Status of a job.
    ///
    /// # Errors
    ///
    /// Returns [`GoFlowError::JobNotFound`] for an unknown id.
    pub fn job_status(&self, id: JobId) -> Result<JobStatus, GoFlowError> {
        self.jobs.status(id)
    }

    // ----- analytics ------------------------------------------------------------------

    /// Total observations stored for an app.
    pub fn observation_total(&self, app: &AppId) -> u64 {
        self.analytics.total(app)
    }

    /// Total localized observations stored for an app.
    pub fn observation_total_localized(&self, app: &AppId) -> u64 {
        self.analytics.total_localized(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{DeviceModel, Observation, SoundLevel};
    use serde_json::json;

    fn server() -> (Arc<Broker>, GoFlowServer, AppId) {
        let broker = Arc::new(Broker::new());
        let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
        let app = AppId::soundcity();
        server.register_app(&app).unwrap();
        (broker, server, app)
    }

    fn obs(user: u64, spl: f64, at: SimTime) -> Observation {
        Observation::builder()
            .device(user.into())
            .user(user.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(at)
            .spl(SoundLevel::new(spl))
            .build()
    }

    #[test]
    fn end_to_end_publish_ingest_query() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();

        let o = obs(1, 61.0, SimTime::from_hms(0, 10, 0, 0));
        let payload = serde_json::to_vec(&o).unwrap();
        let key = session.observation_key("noise", "FR75013");
        broker.publish(session.exchange(), &key, payload).unwrap();

        let now = SimTime::from_hms(0, 10, 0, 20);
        let outcome = server.ingest_pending(&app, now, 100).unwrap();
        assert_eq!(outcome.stored, 1);
        assert_eq!(outcome.malformed, 0);

        let docs = server.query(&app, &ObservationQuery::new()).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0]["spl"], json!(61.0));
        assert_eq!(docs[0]["delay_ms"], json!(20_000));
        assert_eq!(server.observation_total(&app), 1);
    }

    #[test]
    fn malformed_payloads_are_quarantined_not_stored() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        broker
            .publish(
                session.exchange(),
                &session.observation_key("noise", "FR75013"),
                &b"garbage"[..],
            )
            .unwrap();
        let outcome = server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
        assert_eq!(outcome.stored, 0);
        assert_eq!(outcome.malformed, 1);
        assert_eq!(outcome.quarantined, 1);
        assert_eq!(server.observation_total(&app), 0);
        // The payload survives in the quarantine collection.
        let parked = server.quarantine(&app).unwrap().all();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0]["reason"], "malformed");
        assert_eq!(parked[0]["payload"], "garbage");
        assert!(parked[0]["error"].is_string());
        // The broker copy is gone — quarantine owns it now.
        assert_eq!(broker.queue_depth("gf-SC-queue").unwrap(), 0);
    }

    #[test]
    fn late_observations_are_quarantined_when_enabled() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let key = session.observation_key("noise", "FR75013");
        // One fresh observation, one captured two days before arrival.
        let fresh = obs(1, 55.0, SimTime::from_hms(2, 9, 59, 0));
        let stale = obs(1, 60.0, SimTime::from_hms(0, 10, 0, 0));
        for o in [&fresh, &stale] {
            broker
                .publish(session.exchange(), &key, serde_json::to_vec(o).unwrap())
                .unwrap();
        }
        server.set_late_quarantine(Some(SimDuration::from_hours(24)));
        let now = SimTime::from_hms(2, 10, 0, 0);
        let outcome = server.ingest_pending(&app, now, 10).unwrap();
        assert_eq!(outcome.stored, 1);
        assert_eq!(outcome.quarantined, 1);
        assert_eq!(server.observation_total(&app), 1);
        let parked = server.quarantine(&app).unwrap().all();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0]["reason"], "late");
        assert_eq!(parked[0]["delay_ms"], json!(48 * 3_600_000));
        assert_eq!(parked[0]["observation"]["spl"], json!(60.0));

        // Disabled again: stale data is stored normally.
        server.set_late_quarantine(None);
        broker
            .publish(
                session.exchange(),
                &key,
                serde_json::to_vec(&stale).unwrap(),
            )
            .unwrap();
        let outcome = server.ingest_pending(&app, now, 10).unwrap();
        assert_eq!(outcome.stored, 1);
        assert_eq!(outcome.quarantined, 0);
    }

    #[test]
    fn storage_failures_requeue_then_dead_letter() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let o = obs(1, 58.0, SimTime::EPOCH);
        broker
            .publish(
                session.exchange(),
                &session.observation_key("noise", "FR75013"),
                serde_json::to_vec(&o).unwrap(),
            )
            .unwrap();

        // Persistent storage failure: every ingest pass nacks the message
        // back, and the broker's dead-letter policy caps the cycling.
        server
            .ingestor
            .force_storage_failures
            .store(usize::MAX, std::sync::atomic::Ordering::SeqCst);
        for attempt in 1..=5 {
            let outcome = server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
            assert_eq!(outcome.requeued, 1, "attempt {attempt} should nack");
            assert_eq!(outcome.stored, 0);
        }
        // Attempts exhausted: parked in the DLQ, not cycling, not dropped.
        assert_eq!(broker.queue_depth("gf-SC-queue").unwrap(), 0);
        assert_eq!(
            broker.queue_depth(&server.dead_letter_queue(&app)).unwrap(),
            1
        );
        let outcome = server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
        assert_eq!(outcome, IngestOutcome::default());

        // The dead-lettered payload is intact for operator replay.
        server
            .ingestor
            .force_storage_failures
            .store(0, std::sync::atomic::Ordering::SeqCst);
        let dlq = server.dead_letter_queue(&app);
        let deliveries = broker.consume(&dlq, 10).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(
            deliveries[0].payload().as_ref(),
            serde_json::to_vec(&o).unwrap().as_slice()
        );
    }

    #[test]
    fn batched_payload_stores_each_observation() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let batch: Vec<Observation> = (0..10)
            .map(|i| obs(1, 50.0 + i as f64, SimTime::from_hms(0, 9, i as u32, 0)))
            .collect();
        broker
            .publish(
                session.exchange(),
                &session.observation_key("noise", "FR75013"),
                serde_json::to_vec(&batch).unwrap(),
            )
            .unwrap();
        let outcome = server
            .ingest_pending(&app, SimTime::from_hms(0, 11, 0, 0), 10)
            .unwrap();
        assert_eq!(outcome.stored, 10);
    }

    /// The batched storage path is an optimisation, not a behaviour
    /// change: same outcome, byte-identical documents in the same order,
    /// same quarantine, same analytics as the per-message path.
    #[test]
    fn batched_ingest_matches_per_message_ingest() {
        let make = || {
            let (broker, server, app) = server();
            let token = server
                .register_user(&app, 1.into(), Role::Contributor)
                .unwrap();
            let session = server.login(&token).unwrap();
            let key = session.observation_key("noise", "FR75013");
            // Mixed traffic: singles, a buffered batch payload, a
            // malformed payload and a late observation.
            for i in 0..3 {
                let o = obs(1, 50.0 + i as f64, SimTime::from_hms(2, 9, i as u32, 0));
                broker
                    .publish(session.exchange(), &key, serde_json::to_vec(&o).unwrap())
                    .unwrap();
            }
            let batch: Vec<Observation> = (0..5)
                .map(|i| obs(1, 60.0 + i as f64, SimTime::from_hms(2, 8, i as u32, 0)))
                .collect();
            broker
                .publish(
                    session.exchange(),
                    &key,
                    serde_json::to_vec(&batch).unwrap(),
                )
                .unwrap();
            broker
                .publish(session.exchange(), &key, &b"garbage"[..])
                .unwrap();
            let stale = obs(1, 70.0, SimTime::from_hms(0, 0, 0, 0));
            broker
                .publish(
                    session.exchange(),
                    &key,
                    serde_json::to_vec(&stale).unwrap(),
                )
                .unwrap();
            server.set_late_quarantine(Some(SimDuration::from_hours(24)));
            (broker, server, app)
        };
        let (_, batched, app) = make();
        let (_, per_message, _) = make();
        per_message
            .ingestor
            .force_batch_fallback
            .store(true, std::sync::atomic::Ordering::Relaxed);

        let now = SimTime::from_hms(2, 10, 0, 0);
        let a = batched.ingest_pending(&app, now, 100).unwrap();
        let b = per_message.ingest_pending(&app, now, 100).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.stored, 8);
        assert_eq!(a.malformed, 1);
        assert_eq!(a.quarantined, 2);
        assert_eq!(
            batched.collection(&app).unwrap().all(),
            per_message.collection(&app).unwrap().all()
        );
        assert_eq!(
            batched.quarantine(&app).unwrap().all(),
            per_message.quarantine(&app).unwrap().all()
        );
        assert_eq!(
            batched.observation_total(&app),
            per_message.observation_total(&app)
        );
        assert_eq!(
            batched.observation_total_localized(&app),
            per_message.observation_total_localized(&app)
        );
    }

    /// A failed batch insert degrades to the per-message path, which
    /// attributes the loss to individual messages — transient failures
    /// requeue exactly the affected message, and nothing is lost.
    #[test]
    fn batch_fallback_preserves_loss_attribution() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let key = session.observation_key("noise", "FR75013");
        for i in 0..2 {
            let o = obs(1, 50.0 + i as f64, SimTime::EPOCH);
            broker
                .publish(session.exchange(), &key, serde_json::to_vec(&o).unwrap())
                .unwrap();
        }
        // One transient storage failure: the batched attempt steps aside
        // and the per-message path pins the failure on the first message.
        server
            .ingestor
            .force_storage_failures
            .store(1, std::sync::atomic::Ordering::SeqCst);
        let outcome = server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
        assert_eq!(outcome.stored, 1);
        assert_eq!(outcome.requeued, 1);
        // The nacked message is redelivered and stored by the (healthy
        // again) batched path — nothing lost, nothing duplicated.
        let outcome = server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
        assert_eq!(outcome.stored, 1);
        assert_eq!(outcome.requeued, 0);
        assert_eq!(server.collection(&app).unwrap().len(), 2);
        assert_eq!(broker.queue_depth("gf-SC-queue").unwrap(), 0);
    }

    #[test]
    fn query_filters_apply() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        for i in 0..5 {
            let o = obs(1, 40.0 + 10.0 * i as f64, SimTime::from_hms(i, 12, 0, 0));
            broker
                .publish(
                    session.exchange(),
                    &session.observation_key("noise", "FR75013"),
                    serde_json::to_vec(&o).unwrap(),
                )
                .unwrap();
        }
        server
            .ingest_pending(&app, SimTime::from_hms(5, 0, 0, 0), 100)
            .unwrap();
        let q = ObservationQuery::new()
            .captured_between(SimTime::from_hms(1, 0, 0, 0), SimTime::from_hms(3, 0, 0, 0));
        assert_eq!(server.query(&app, &q).unwrap().len(), 2);
        let q = ObservationQuery::new().limit(3);
        assert_eq!(server.query(&app, &q).unwrap().len(), 3);
    }

    #[test]
    fn export_packages_json() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        let o = obs(1, 55.0, SimTime::EPOCH);
        broker
            .publish(
                session.exchange(),
                &session.observation_key("noise", "FR75013"),
                serde_json::to_vec(&o).unwrap(),
            )
            .unwrap();
        server.ingest_pending(&app, SimTime::EPOCH, 10).unwrap();
        let lines = server
            .export(&app, &ObservationQuery::new(), Packaging::JsonLines)
            .unwrap();
        assert_eq!(lines.lines().count(), 1);
        let array = server
            .export(&app, &ObservationQuery::new(), Packaging::JsonArray)
            .unwrap();
        assert!(array.starts_with('['));
    }

    #[test]
    fn query_shared_redacts_private_paths() {
        let broker = Arc::new(Broker::new());
        let policy = PrivacyPolicy::default()
            .with_private_path("lat")
            .with_private_path("lon");
        let server = GoFlowServer::with_policy(Arc::clone(&broker), Store::new(), policy);
        let app = AppId::soundcity();
        server.register_app(&app).unwrap();
        server
            .collection(&app)
            .unwrap()
            .insert_one(json!({"spl": 60.0, "lat": 48.85, "lon": 2.35}))
            .unwrap();
        let own = server.query(&app, &ObservationQuery::new()).unwrap();
        assert!(own[0].get("lat").is_some());
        let shared = server.query_shared(&app, &ObservationQuery::new()).unwrap();
        assert!(shared[0].get("lat").is_none());
        assert!(shared[0].get("spl").is_some());
    }

    #[test]
    fn jobs_require_manager_role() {
        let (_, server, app) = server();
        let contrib = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let manager = server.register_user(&app, 2.into(), Role::Manager).unwrap();
        assert!(matches!(
            server.submit_job(&contrib, "x", |_| Ok(Value::Null)),
            Err(GoFlowError::PermissionDenied { .. })
        ));
        let id = server
            .submit_job(&manager, "count", |c| Ok(json!(c.len())))
            .unwrap();
        assert_eq!(server.run_jobs(&app).unwrap(), 1);
        assert_eq!(server.job_status(id).unwrap(), JobStatus::Done(json!(0)));
    }

    #[test]
    fn unknown_app_is_rejected_everywhere() {
        let (_, server, _) = server();
        let ghost = AppId::new("GHOST");
        assert!(server.collection(&ghost).is_err());
        assert!(server.ingest_pending(&ghost, SimTime::EPOCH, 1).is_err());
        assert!(server.query(&ghost, &ObservationQuery::new()).is_err());
        assert!(server.run_jobs(&ghost).is_err());
    }

    #[test]
    fn erase_user_removes_data_and_credentials() {
        let (broker, server, app) = server();
        let t1 = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let t2 = server
            .register_user(&app, 2.into(), Role::Contributor)
            .unwrap();
        for (token, user) in [(&t1, 1u64), (&t2, 2u64)] {
            let session = server.login(token).unwrap();
            for i in 0..3 {
                let o = obs(user, 50.0 + i as f64, SimTime::from_hms(i, 10, 0, 0));
                broker
                    .publish(
                        session.exchange(),
                        &session.observation_key("noise", "FR75001"),
                        serde_json::to_vec(&o).unwrap(),
                    )
                    .unwrap();
            }
        }
        server
            .ingest_pending(&app, SimTime::from_hms(3, 0, 0, 0), 100)
            .unwrap();
        assert_eq!(
            server.query(&app, &ObservationQuery::new()).unwrap().len(),
            6
        );

        // Erase user 1: their 3 documents go, user 2's stay.
        let deleted = server.erase_user(&app, 1.into()).unwrap();
        assert_eq!(deleted, 3);
        assert_eq!(
            server.query(&app, &ObservationQuery::new()).unwrap().len(),
            3
        );
        // Credentials are gone too.
        assert!(matches!(server.login(&t1), Err(GoFlowError::InvalidToken)));
        assert!(server.login(&t2).is_ok());
        // Idempotent: nothing left to erase.
        assert_eq!(server.erase_user(&app, 1.into()).unwrap(), 0);
        // Unknown app is rejected.
        assert!(server.erase_user(&AppId::new("GHOST"), 1.into()).is_err());
    }

    #[test]
    fn login_requires_valid_token() {
        let (_, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        server.revoke(&token).unwrap();
        assert!(matches!(
            server.login(&token),
            Err(GoFlowError::InvalidToken)
        ));
        assert_eq!(server.user_count(&app), 0);
    }

    #[test]
    fn logout_removes_session_endpoints() {
        let (broker, server, app) = server();
        let token = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let session = server.login(&token).unwrap();
        server.logout(&session).unwrap();
        assert!(!broker.queue_exists(session.queue()));
    }

    #[test]
    fn collections_are_indexed() {
        let (_, server, app) = server();
        let c = server.collection(&app).unwrap();
        assert!(c.has_index("model"));
        assert!(c.has_index("provider"));
        assert!(c.has_index("captured_ms"));
    }

    #[test]
    fn subscriptions_route_between_clients() {
        let (broker, server, app) = server();
        let t1 = server
            .register_user(&app, 1.into(), Role::Contributor)
            .unwrap();
        let t2 = server
            .register_user(&app, 2.into(), Role::Contributor)
            .unwrap();
        let publisher = server.login(&t1).unwrap();
        let subscriber = server.login(&t2).unwrap();
        server
            .subscribe(&subscriber, "Feedback", "FR75013")
            .unwrap();
        broker
            .publish(
                publisher.exchange(),
                &publisher.observation_key("Feedback", "FR75013"),
                &b"hello"[..],
            )
            .unwrap();
        let deliveries = broker.consume(subscriber.queue(), 10).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].payload().as_ref(), b"hello");
    }
}
