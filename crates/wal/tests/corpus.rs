//! Recovery over the committed torn-write corpus.
//!
//! Each file in `tests/corpus/` is a hand-built segment exercising one
//! corruption shape. The test copies the file into a scratch log
//! directory (recovery repairs torn tails in place, and the corpus must
//! stay pristine), opens it, and checks exactly which prefix survives —
//! then opens it again to confirm the repair left a clean log.

use mps_wal::{Wal, WalConfig};
use std::path::{Path, PathBuf};

struct Case {
    file: &'static str,
    /// Payloads the recovery scan must hand back, in order.
    expect: &'static [&'static [u8]],
    torn: bool,
}

const CASES: &[Case] = &[
    Case {
        file: "clean.log",
        expect: &[
            br#"{"op":"insert","id":1}"#,
            br#"{"op":"insert","id":2}"#,
            br#"{"op":"delete","id":1}"#,
        ],
        torn: false,
    },
    Case {
        file: "torn-mid-record.log",
        expect: &[br#"{"op":"insert","id":1}"#, br#"{"op":"insert","id":2}"#],
        torn: true,
    },
    Case {
        file: "bad-crc.log",
        expect: &[br#"{"op":"insert","id":1}"#, br#"{"op":"insert","id":2}"#],
        torn: true,
    },
    Case {
        file: "torn-header.log",
        expect: &[br#"{"op":"insert","id":1}"#],
        torn: true,
    },
    Case {
        file: "absurd-length.log",
        expect: &[br#"{"op":"insert","id":1}"#],
        torn: true,
    },
    Case {
        file: "empty.log",
        expect: &[],
        torn: false,
    },
];

fn scratch_log_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-wal-corpus-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn open_copy(case: &Case) -> (PathBuf, mps_wal::Recovered) {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(case.file);
    let dir = scratch_log_dir(case.file.trim_end_matches(".log"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(&src, dir.join(format!("wal-{:020}.log", 1))).unwrap();
    let (_wal, recovered) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
    (dir, recovered)
}

#[test]
fn corpus_recovers_exactly_the_valid_prefix() {
    for case in CASES {
        let (dir, recovered) = open_copy(case);
        let payloads: Vec<&[u8]> = recovered
            .entries
            .iter()
            .map(|(_, p)| p.as_slice())
            .collect();
        assert_eq!(payloads, case.expect, "{}", case.file);
        assert_eq!(recovered.report.torn_tail, case.torn, "{}", case.file);
        if case.torn {
            assert!(
                recovered.report.torn_bytes_truncated > 0,
                "{}: truncation must be accounted",
                case.file
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn recovery_repairs_the_corpus_in_place() {
    for case in CASES {
        let (dir, first) = open_copy(case);
        let (_wal, second) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
        assert!(
            !second.report.torn_tail,
            "{}: second open must be clean",
            case.file
        );
        assert_eq!(
            second.entries.len(),
            first.entries.len(),
            "{}: repair must not lose valid records",
            case.file
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn appends_continue_after_corpus_recovery() {
    for case in CASES {
        let (dir, recovered) = open_copy(case);
        drop(recovered);
        {
            let (mut wal, recovered) =
                Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
            let before = recovered.entries.len();
            wal.append(b"appended after repair").unwrap();
            drop(wal);
            let (_wal, after) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
            assert_eq!(after.entries.len(), before + 1, "{}", case.file);
            assert_eq!(
                after.entries.last().map(|(_, p)| p.as_slice()),
                Some(&b"appended after repair"[..]),
                "{}",
                case.file
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
