//! In-crate property tests: record framing roundtrip and recovery
//! under arbitrary truncation.

use crate::{decode_one, encode_into, Decoded, Wal, WalConfig};
use proptest::prelude::*;

fn temp_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-wal-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The single segment file of a freshly created log.
fn first_segment(dir: &std::path::Path) -> std::path::PathBuf {
    dir.join(format!("wal-{:020}.log", 1))
}

proptest! {
    /// Any sequence of payloads encodes to a buffer that decodes back to
    /// exactly those payloads.
    #[test]
    fn record_encode_decode_roundtrip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20),
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_into(&mut buf, p);
        }
        let mut rest = buf.as_slice();
        let mut seen = Vec::new();
        loop {
            match decode_one(rest) {
                Decoded::End => break,
                Decoded::Record { payload, consumed } => {
                    seen.push(payload.to_vec());
                    rest = &rest[consumed..];
                }
                Decoded::Torn => panic!("valid buffer decoded as torn"),
            }
        }
        prop_assert_eq!(seen, payloads);
    }

    /// Truncating the segment at *any* byte offset never panics the
    /// recovery scan, and what survives is always an exact prefix of
    /// what was appended.
    #[test]
    fn any_truncation_recovers_a_prefix_without_panic(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..12),
        cut_fraction in 0.0f64..=1.0,
    ) {
        let dir = temp_dir();
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
            wal.append_batch(&payloads).unwrap();
        }
        let segment = first_segment(&dir);
        let full = std::fs::metadata(&segment).unwrap().len();
        let cut = ((full as f64) * cut_fraction) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let (_wal, recovered) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
        prop_assert!(recovered.entries.len() <= payloads.len());
        for (i, (lsn, payload)) in recovered.entries.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        // A cut landing exactly on a record boundary is a clean (shorter)
        // tail; anywhere else it is torn and gets truncated back to the
        // previous boundary.
        let boundaries: Vec<u64> = std::iter::once(0)
            .chain(payloads.iter().scan(0u64, |acc, p| {
                *acc += (crate::RECORD_HEADER_BYTES + p.len()) as u64;
                Some(*acc)
            }))
            .collect();
        let records_covered = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        prop_assert_eq!(recovered.entries.len(), records_covered);
        prop_assert_eq!(recovered.report.torn_tail, !boundaries.contains(&cut));

        // Recovery repaired the tail in place: a second open is clean
        // and sees the same prefix.
        let (_wal2, again) = Wal::open(&dir, WalConfig::default().telemetry(false)).unwrap();
        prop_assert!(!again.report.torn_tail);
        prop_assert_eq!(again.entries.len(), recovered.entries.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
