//! Read-only log inspection, for `cargo run -p xtask -- wal-inspect`.
//!
//! Unlike [`Wal::open`], inspection never mutates the directory: torn
//! tails are reported, not truncated; orphan temp files are listed, not
//! removed. This is the debugging view of a log someone shipped you.
//!
//! [`Wal::open`]: crate::Wal::open

use crate::record::{decode_one, Decoded};
use crate::WalError;
use std::path::{Path, PathBuf};

/// One segment file's health.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// The file.
    pub path: PathBuf,
    /// First LSN in the segment (from the file name).
    pub start_lsn: u64,
    /// Checksum-valid records found.
    pub records: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// Bytes covered by valid records.
    pub valid_bytes: u64,
    /// True when the file ends in a torn or corrupt record.
    pub torn: bool,
}

/// One snapshot file's health.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// The file.
    pub path: PathBuf,
    /// The LSN the snapshot covers through (from the file name).
    pub lsn: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// True when the framing and checksum are intact.
    pub valid: bool,
}

/// Everything [`inspect`] found in a log directory.
#[derive(Debug, Clone, Default)]
pub struct InspectReport {
    /// Segment files, in LSN order.
    pub segments: Vec<SegmentInfo>,
    /// Snapshot files, newest first.
    pub snapshots: Vec<SnapshotInfo>,
    /// Orphaned `.tmp` files (crash mid-snapshot debris).
    pub orphan_tmp: Vec<PathBuf>,
}

impl InspectReport {
    /// Total checksum-valid records across all segments.
    pub fn total_records(&self) -> usize {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// True when every segment is clean and a valid snapshot chain
    /// exists (or none is needed).
    pub fn healthy(&self) -> bool {
        let torn_before_tail = self.segments.iter().rev().skip(1).any(|s| s.torn);
        let bad_snapshot = self.snapshots.first().is_some_and(|s| !s.valid);
        !torn_before_tail && !bad_snapshot
    }
}

/// Scans `dir` without modifying anything; see the module docs.
pub fn inspect(dir: impl AsRef<Path>) -> Result<InspectReport, WalError> {
    let dir = dir.as_ref();
    let mut report = InspectReport::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            report.orphan_tmp.push(path);
        } else if let Some(start) = parse(name, "wal-", ".log") {
            let bytes = std::fs::read(&path)?;
            let mut offset = 0usize;
            let mut records = 0usize;
            let mut torn = false;
            loop {
                match decode_one(&bytes[offset..]) {
                    Decoded::End => break,
                    Decoded::Record { consumed, .. } => {
                        offset += consumed;
                        records += 1;
                    }
                    Decoded::Torn => {
                        torn = true;
                        break;
                    }
                }
            }
            report.segments.push(SegmentInfo {
                path,
                start_lsn: start,
                records,
                bytes: bytes.len() as u64,
                valid_bytes: offset as u64,
                torn,
            });
        } else if let Some(lsn) = parse(name, "snap-", ".snap") {
            let bytes = std::fs::read(&path)?;
            let valid = matches!(
                decode_one(&bytes),
                Decoded::Record { consumed, .. } if consumed == bytes.len()
            );
            report.snapshots.push(SnapshotInfo {
                path,
                lsn,
                bytes: bytes.len() as u64,
                valid,
            });
        }
    }
    report.segments.sort_by_key(|s| s.start_lsn);
    report.snapshots.sort_by_key(|s| std::cmp::Reverse(s.lsn));
    Ok(report)
}

fn parse(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Wal, WalConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-wal-inspect-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn inspect_reports_segments_snapshots_and_tears() {
        let dir = temp_dir();
        let config = WalConfig::default().telemetry(false).segment_max_bytes(64);
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for batch in 0..4u64 {
            let records: Vec<Vec<u8>> = (0..4)
                .map(|i| format!("r-{batch}-{i}").into_bytes())
                .collect();
            wal.append_batch(&records).unwrap();
        }
        wal.snapshot(b"covering-16").unwrap();
        wal.append(b"after").unwrap();
        drop(wal);

        let report = inspect(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.snapshots.len(), 1);
        assert!(report.snapshots[0].valid);
        assert_eq!(report.snapshots[0].lsn, 16);
        assert!(report.total_records() >= 1);

        // Tear the last segment: still "healthy" (a torn tail is
        // recoverable), but reported.
        let last = report.segments.last().unwrap();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&last.path)
            .unwrap();
        file.set_len(last.bytes - 2).unwrap();
        drop(file);
        let report = inspect(&dir).unwrap();
        assert!(report.segments.last().unwrap().torn);
        assert!(report.healthy());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
