//! Crash-kill fault injection: die exactly where a process crash would.
//!
//! A [`KillSwitch`] is shared between the test harness and a [`Wal`]
//! instance. Armed with a [`KillPoint`] and a countdown, it fires once
//! at the matching site; from then on the WAL instance is **dead** —
//! every operation returns [`WalError::Killed`] — mimicking a process
//! that never came back. Recovery is exercised by reopening the
//! directory with a fresh instance.
//!
//! [`Wal`]: crate::Wal
//! [`WalError::Killed`]: crate::WalError::Killed

use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Where a crash-kill fault fires inside the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillPoint {
    /// Mid-way through writing a batch: the tail record is torn and
    /// must be truncated on recovery.
    MidAppend,
    /// After the batch is written *and* fsynced, but before the caller
    /// observes success: the data is durable, the acknowledgement is
    /// lost (the at-least-once window).
    PostAppendPreAck,
    /// Mid-way through writing a snapshot: an orphan `.tmp` file is
    /// left behind; the committed snapshot (if any) is untouched.
    MidSnapshot,
    /// Mid-way through compaction: only some covered segments were
    /// deleted. Recovery must tolerate the survivors.
    MidCompaction,
}

impl KillPoint {
    /// Every kill point, in pipeline order — the CI crash-kill matrix
    /// iterates this.
    pub const ALL: [KillPoint; 4] = [
        KillPoint::MidAppend,
        KillPoint::PostAppendPreAck,
        KillPoint::MidSnapshot,
        KillPoint::MidCompaction,
    ];

    /// The snake_case name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            KillPoint::MidAppend => "mid_append",
            KillPoint::PostAppendPreAck => "post_append_pre_ack",
            KillPoint::MidSnapshot => "mid_snapshot",
            KillPoint::MidCompaction => "mid_compaction",
        }
    }
}

impl fmt::Display for KillPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Default)]
struct SwitchState {
    /// The armed kill point and how many matching sites to let pass
    /// before firing.
    armed: Option<(KillPoint, u64)>,
    /// Set once a kill fired; the instance never recovers.
    dead: Option<KillPoint>,
}

/// A shared crash trigger, cheaply clonable; see the module docs.
///
/// The default switch is unarmed and never fires.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch {
    state: Arc<Mutex<SwitchState>>,
}

impl KillSwitch {
    /// A fresh, unarmed switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the switch: the kill fires at the `(skip + 1)`-th time the
    /// WAL reaches `point`.
    pub fn arm(&self, point: KillPoint, skip: u64) {
        self.lock().armed = Some((point, skip));
    }

    /// Disarms the switch without clearing an already-fired kill.
    pub fn disarm(&self) {
        self.lock().armed = None;
    }

    /// The kill point that fired, if the instance is dead.
    pub fn dead(&self) -> Option<KillPoint> {
        self.lock().dead
    }

    /// Checks whether `point` fires now (and decrements the countdown).
    /// Firing marks the switch dead.
    pub(crate) fn should_fire(&self, point: KillPoint) -> bool {
        let mut state = self.lock();
        match state.armed {
            Some((armed, 0)) if armed == point => {
                state.armed = None;
                state.dead = Some(point);
                true
            }
            Some((armed, ref mut skip)) if armed == point => {
                *skip -= 1;
                false
            }
            _ => false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SwitchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_never_fires() {
        let switch = KillSwitch::new();
        for point in KillPoint::ALL {
            assert!(!switch.should_fire(point));
        }
        assert_eq!(switch.dead(), None);
    }

    #[test]
    fn fires_once_after_skip_then_stays_dead() {
        let switch = KillSwitch::new();
        switch.arm(KillPoint::MidAppend, 2);
        assert!(!switch.should_fire(KillPoint::MidAppend));
        assert!(!switch.should_fire(KillPoint::MidSnapshot));
        assert!(!switch.should_fire(KillPoint::MidAppend));
        assert!(switch.should_fire(KillPoint::MidAppend));
        assert_eq!(switch.dead(), Some(KillPoint::MidAppend));
        // Disarmed after firing: no double kill.
        assert!(!switch.should_fire(KillPoint::MidAppend));
    }

    #[test]
    fn clones_share_state() {
        let switch = KillSwitch::new();
        let clone = switch.clone();
        switch.arm(KillPoint::MidSnapshot, 0);
        assert!(clone.should_fire(KillPoint::MidSnapshot));
        assert_eq!(switch.dead(), Some(KillPoint::MidSnapshot));
    }
}
