//! # mps-wal — an append-only write-ahead log
//!
//! The paper's deployment collected ~23M observations; its central
//! "don'ts" are about losing or silently corrupting data between device
//! and server. A production sink cannot be memory-only, so this crate
//! gives the document store and the broker a shared durability
//! substrate: an append-only segment log with length-prefixed,
//! CRC-checksummed records, **group commit** (one fsync per batch of
//! appends), **torn-tail detection** (the log is truncated at the first
//! bad checksum on open), periodic **snapshots**, and **segment
//! compaction** once a snapshot covers them.
//!
//! The log stores opaque byte payloads; each append is assigned a
//! monotonically increasing [`Lsn`]. Callers (see `mps-docstore` and
//! `mps-broker`) serialise their own deltas, replay
//! [`Recovered::entries`] on open, and periodically hand a full-state
//! snapshot back via [`Wal::snapshot`].
//!
//! Crash faults are first-class: a [`KillSwitch`] armed at one of the
//! [`KillPoint`]s makes the instance die exactly the way a process
//! crash would — a half-written batch, a durable-but-unacknowledged
//! batch, an orphaned snapshot temp file, or a half-finished
//! compaction — which is what the CI crash-kill recovery matrix
//! exercises.
//!
//! # Examples
//!
//! ```
//! use mps_wal::{Wal, WalConfig};
//!
//! let dir = std::env::temp_dir().join(format!("mps-wal-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (mut wal, recovered) = Wal::open(&dir, WalConfig::default())?;
//! assert!(recovered.entries.is_empty());
//! wal.append_batch(&[b"insert a".to_vec(), b"insert b".to_vec()])?;
//! drop(wal);
//!
//! let (_wal, recovered) = Wal::open(&dir, WalConfig::default())?;
//! let payloads: Vec<&[u8]> = recovered.entries.iter().map(|(_, p)| p.as_slice()).collect();
//! assert_eq!(payloads, vec![b"insert a".as_slice(), b"insert b".as_slice()]);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod inspect;
mod kill;
#[cfg(test)]
mod proptests;
mod record;
mod telemetry;
mod wal;

pub use error::WalError;
pub use inspect::{inspect, InspectReport, SegmentInfo, SnapshotInfo};
pub use kill::{KillPoint, KillSwitch};
pub use record::{crc32, decode_one, encode_into, Decoded, RECORD_HEADER_BYTES};
pub use wal::{Lsn, Recovered, RecoveryReport, Wal, WalConfig};
