//! The on-disk record framing: `[u32 len LE][u32 crc LE][payload]`.
//!
//! The checksum covers the payload only; the length is implicitly
//! validated by the checksum (a flipped length either reads past the
//! buffer — torn — or frames bytes whose checksum cannot match). The
//! framing is deliberately minimal: LSNs are positional (segment start
//! LSN + record index), so records carry no header beyond the eight
//! framing bytes.

/// Bytes of framing before each payload: `u32` length + `u32` CRC.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Upper bound on a single record's payload, so a corrupt length field
/// is classified as a torn tail instead of attempting a huge read.
pub(crate) const MAX_RECORD_BYTES: usize = 1 << 26; // 64 MiB

/// The CRC-32 (IEEE 802.3) lookup table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of `bytes` — the polynomial every torn-tail
/// scanner and external inspector of this log format must agree on.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Appends one framed record to `out`.
pub fn encode_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The outcome of decoding the record at the start of `buf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// The buffer is empty: a clean record boundary.
    End,
    /// One checksum-valid record; `consumed` bytes cover it.
    Record {
        /// The record's payload, borrowed from the buffer.
        payload: &'a [u8],
        /// Total bytes of the record including framing.
        consumed: usize,
    },
    /// The buffer ends mid-record, declares an absurd length, or fails
    /// its checksum — a torn tail.
    Torn,
}

/// Decodes the record at the start of `buf`.
pub fn decode_one(buf: &[u8]) -> Decoded<'_> {
    if buf.is_empty() {
        return Decoded::End;
    }
    if buf.len() < RECORD_HEADER_BYTES {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_RECORD_BYTES {
        return Decoded::Torn;
    }
    let end = RECORD_HEADER_BYTES + len;
    if buf.len() < end {
        return Decoded::Torn;
    }
    let payload = &buf[RECORD_HEADER_BYTES..end];
    if crc32(payload) != crc {
        return Decoded::Torn;
    }
    Decoded::Record {
        payload,
        consumed: end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // Standard CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_single_record() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"hello");
        match decode_one(&buf) {
            Decoded::Record { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roundtrip_batch_of_records() {
        let mut buf = Vec::new();
        let payloads: [&[u8]; 3] = [b"", b"a", b"a longer payload with some bytes"];
        for p in payloads {
            encode_into(&mut buf, p);
        }
        let mut rest = buf.as_slice();
        let mut seen = Vec::new();
        loop {
            match decode_one(rest) {
                Decoded::End => break,
                Decoded::Record { payload, consumed } => {
                    seen.push(payload.to_vec());
                    rest = &rest[consumed..];
                }
                Decoded::Torn => panic!("torn"),
            }
        }
        assert_eq!(seen, payloads.map(<[u8]>::to_vec).to_vec());
    }

    #[test]
    fn every_truncation_point_is_end_or_torn_never_a_record() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"payload one");
        encode_into(&mut buf, b"two");
        for cut in 0..buf.len() {
            match decode_one(&buf[..cut]) {
                Decoded::End => assert_eq!(cut, 0),
                Decoded::Torn => assert!(cut > 0),
                Decoded::Record { consumed, .. } => {
                    // A full first record may survive the cut; it must
                    // be byte-exact.
                    assert!(cut >= consumed);
                }
            }
        }
    }

    #[test]
    fn corrupted_byte_is_torn() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"sensitive");
        for i in 0..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            match decode_one(&copy) {
                Decoded::Record { payload, .. } => {
                    panic!("bit flip at {i} went undetected: {payload:?}")
                }
                Decoded::End => panic!("non-empty buffer decoded as End"),
                Decoded::Torn => {}
            }
        }
    }

    #[test]
    fn absurd_length_is_torn_not_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 32]);
        assert_eq!(decode_one(&buf), Decoded::Torn);
    }
}
