//! The log itself: segments, group commit, snapshots, recovery.

use crate::kill::{KillPoint, KillSwitch};
use crate::record::{decode_one, encode_into, Decoded};
use crate::telemetry::telemetry;
use crate::WalError;
use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceId};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A log sequence number: the 1-based position of a record in the log.
/// `0` means "nothing" (no snapshot, empty log).
pub type Lsn = u64;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
const SNAPSHOT_PREFIX: &str = "snap-";
const SNAPSHOT_SUFFIX: &str = ".snap";
const TMP_SUFFIX: &str = ".tmp";

/// Tuning and instrumentation knobs for a [`Wal`] instance.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Roll to a new segment once the active one exceeds this size.
    pub segment_max_bytes: u64,
    /// Fsync after every batch (group commit). Disable only for
    /// benchmarks that measure the in-memory cost of the write path.
    pub fsync: bool,
    /// Mirror activity into the global telemetry registry (`wal_*`
    /// series). The benchmark's attributable-numbers mode disables it.
    pub telemetry: bool,
    /// When set, [`Wal::open`] records a `wal_recovery` span at this
    /// sim-clock time in the global flight recorder.
    pub recovery_span_at_ms: Option<i64>,
    /// Crash-kill fault trigger shared with the test harness.
    pub kill: KillSwitch,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 1 << 20,
            fsync: true,
            telemetry: true,
            recovery_span_at_ms: None,
            kill: KillSwitch::default(),
        }
    }
}

impl WalConfig {
    /// Sets the segment roll threshold.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// Enables or disables the global-registry metric mirrors.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Enables or disables per-batch fsync.
    pub fn fsync(mut self, on: bool) -> Self {
        self.fsync = on;
        self
    }

    /// Requests a recovery span at `at_ms` (sim-clock) on open.
    pub fn recovery_span_at_ms(mut self, at_ms: i64) -> Self {
        self.recovery_span_at_ms = Some(at_ms);
        self
    }

    /// Installs a crash-kill switch.
    pub fn kill(mut self, kill: KillSwitch) -> Self {
        self.kill = kill;
        self
    }
}

/// What [`Wal::open`] found on disk, for the caller to replay.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid snapshot payload, if any.
    pub snapshot: Option<Vec<u8>>,
    /// The LSN the snapshot covers through (`0` when none).
    pub snapshot_lsn: Lsn,
    /// Log records *after* the snapshot, in LSN order.
    pub entries: Vec<(Lsn, Vec<u8>)>,
    /// What the recovery scan did.
    pub report: RecoveryReport,
}

/// Statistics from one recovery scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files read (fully covered segments are skipped).
    pub segments_scanned: usize,
    /// Records handed back in [`Recovered::entries`].
    pub records_replayed: usize,
    /// True when a torn tail was truncated off the last segment.
    pub torn_tail: bool,
    /// Bytes removed by the torn-tail truncation.
    pub torn_bytes_truncated: u64,
}

/// One closed (no longer written) segment.
#[derive(Debug)]
struct ClosedSegment {
    /// LSN of the segment's last record (compaction deletes the
    /// segment once a snapshot covers it).
    end: Lsn,
    path: PathBuf,
}

/// An append-only, checksummed, segmented write-ahead log.
///
/// See the [crate docs](crate) for the design; [`Wal::open`] is the
/// only constructor — creating and recovering are the same operation.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    active: File,
    active_start: Lsn,
    active_bytes: u64,
    closed: Vec<ClosedSegment>,
    next_lsn: Lsn,
    snapshot_lsn: Lsn,
    /// The segment count this instance last contributed to the
    /// process-wide `wal_open_segments` gauge (withdrawn on drop).
    gauge_segments: i64,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir` and scans it:
    /// orphan temp files are removed, the newest valid snapshot is
    /// loaded, records after it are collected, and a torn tail on the
    /// last segment is truncated. Returns the instance plus everything
    /// the caller must replay to rebuild its state.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<(Self, Recovered), WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let mut segments: Vec<(Lsn, PathBuf)> = Vec::new();
        let mut snapshots: Vec<(Lsn, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(TMP_SUFFIX) {
                // Orphaned by a crash mid-snapshot; never committed.
                std::fs::remove_file(&path)?;
            } else if let Some(start) = parse_name(name, SEGMENT_PREFIX, SEGMENT_SUFFIX) {
                segments.push((start, path));
            } else if let Some(lsn) = parse_name(name, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX) {
                snapshots.push((lsn, path));
            }
        }
        segments.sort_by_key(|(start, _)| *start);
        snapshots.sort_by_key(|(lsn, _)| std::cmp::Reverse(*lsn));

        // Newest snapshot whose framing checks out wins; damaged ones
        // are skipped (an uncommitted snapshot never gets renamed into
        // place, so damage here means external corruption).
        let mut snapshot: Option<Vec<u8>> = None;
        let mut snapshot_lsn: Lsn = 0;
        for (lsn, path) in &snapshots {
            let bytes = std::fs::read(path)?;
            if let Decoded::Record { payload, consumed } = decode_one(&bytes) {
                if consumed == bytes.len() {
                    snapshot = Some(payload.to_vec());
                    snapshot_lsn = *lsn;
                    break;
                }
            }
        }
        let replay_from = snapshot_lsn + 1;

        let mut report = RecoveryReport::default();
        let mut entries: Vec<(Lsn, Vec<u8>)> = Vec::new();
        let mut expected: Option<Lsn> = None;
        let mut max_lsn: Lsn = 0;
        let mut closed: Vec<ClosedSegment> = Vec::new();
        let last_index = segments.len().saturating_sub(1);
        for (i, (start, path)) in segments.iter().enumerate() {
            if let Some(exp) = expected {
                if *start != exp {
                    return Err(WalError::Corrupt(format!(
                        "segment gap: expected lsn {exp}, found segment starting at {start}",
                    )));
                }
            }
            let next_start = segments.get(i + 1).map(|(s, _)| *s);
            if let Some(ns) = next_start {
                if ns <= replay_from {
                    // Fully covered by the snapshot: skip the read.
                    expected = Some(ns);
                    max_lsn = max_lsn.max(ns - 1);
                    closed.push(ClosedSegment {
                        end: ns - 1,
                        path: path.clone(),
                    });
                    continue;
                }
            }
            let bytes = std::fs::read(path)?;
            report.segments_scanned += 1;
            let mut offset = 0usize;
            let mut lsn = *start;
            loop {
                match decode_one(&bytes[offset..]) {
                    Decoded::End => break,
                    Decoded::Record { payload, consumed } => {
                        if lsn >= replay_from {
                            entries.push((lsn, payload.to_vec()));
                        }
                        offset += consumed;
                        lsn += 1;
                    }
                    Decoded::Torn => {
                        if i != last_index {
                            return Err(WalError::Corrupt(format!(
                                "bad record at lsn {lsn} in non-final segment {}",
                                path.display()
                            )));
                        }
                        report.torn_tail = true;
                        report.torn_bytes_truncated = (bytes.len() - offset) as u64;
                        let file = OpenOptions::new().write(true).open(path)?;
                        file.set_len(offset as u64)?;
                        file.sync_all()?;
                        break;
                    }
                }
            }
            if lsn > *start {
                max_lsn = max_lsn.max(lsn - 1);
            }
            expected = Some(lsn);
            if i != last_index {
                closed.push(ClosedSegment {
                    end: lsn - 1,
                    path: path.clone(),
                });
            }
        }
        if let Some((first, _)) = entries.first() {
            if *first != replay_from {
                return Err(WalError::Corrupt(format!(
                    "log starts at lsn {first} but the snapshot only covers through \
                     {snapshot_lsn}"
                )));
            }
        }
        report.records_replayed = entries.len();

        let next_lsn = max_lsn.max(snapshot_lsn) + 1;
        let (active, active_start, active_bytes) = match segments.last() {
            Some((start, path)) => {
                let file = OpenOptions::new().append(true).open(path)?;
                let bytes = file.metadata()?.len();
                (file, *start, bytes)
            }
            None => {
                let path = segment_path(&dir, next_lsn);
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(path)?;
                sync_dir(&dir);
                (file, next_lsn, 0)
            }
        };

        if config.telemetry {
            telemetry().recoveries.inc();
            if report.torn_tail {
                telemetry().torn_tail_truncations.inc();
            }
        }
        if let Some(at_ms) = config.recovery_span_at_ms {
            emit_recovery_span(&dir, at_ms, &report, snapshot_lsn);
        }

        let mut wal = Self {
            dir,
            config,
            active,
            active_start,
            active_bytes,
            closed,
            next_lsn,
            snapshot_lsn,
            gauge_segments: 0,
        };
        wal.publish_segment_gauge();
        let recovered = Recovered {
            snapshot,
            snapshot_lsn,
            entries,
            report,
        };
        Ok((wal, recovered))
    }

    /// Appends a batch of records with **one** fsync (group commit) and
    /// returns the LSN of the last record. An empty batch is a no-op
    /// and returns the current last LSN.
    pub fn append_batch(&mut self, payloads: &[Vec<u8>]) -> Result<Lsn, WalError> {
        self.check_alive()?;
        if payloads.is_empty() {
            return Ok(self.next_lsn - 1);
        }
        self.maybe_roll()?;

        let mut buf = Vec::new();
        let mut last_offset = 0usize;
        for payload in payloads {
            last_offset = buf.len();
            encode_into(&mut buf, payload);
        }

        if self.config.kill.should_fire(KillPoint::MidAppend) {
            // Half of the final record reaches the disk: the classic
            // torn write a recovery scan must truncate.
            let cut = last_offset + (buf.len() - last_offset) / 2;
            self.active.write_all(&buf[..cut])?;
            self.active.sync_all()?;
            return Err(WalError::Killed(KillPoint::MidAppend));
        }

        self.active.write_all(&buf)?;
        if self.config.fsync {
            self.active.sync_all()?;
            if self.config.telemetry {
                telemetry().fsyncs.inc();
            }
        }
        if self.config.kill.should_fire(KillPoint::PostAppendPreAck) {
            // The batch is durable, but the caller never learns it.
            return Err(WalError::Killed(KillPoint::PostAppendPreAck));
        }

        self.active_bytes += buf.len() as u64;
        self.next_lsn += payloads.len() as u64;
        if self.config.telemetry {
            telemetry().appends.add(payloads.len() as u64);
            telemetry().bytes_written.add(buf.len() as u64);
        }
        Ok(self.next_lsn - 1)
    }

    /// Appends a single record; see [`Wal::append_batch`].
    pub fn append(&mut self, payload: &[u8]) -> Result<Lsn, WalError> {
        let batch = [payload.to_vec()];
        self.append_batch(&batch)
    }

    /// Writes a snapshot covering every record appended so far, then
    /// compacts: older snapshots and fully covered closed segments are
    /// deleted. The snapshot is committed atomically (temp file, fsync,
    /// rename), so a crash mid-snapshot leaves the previous one
    /// intact. Returns the LSN the snapshot covers through.
    pub fn snapshot(&mut self, state: &[u8]) -> Result<Lsn, WalError> {
        self.check_alive()?;
        let covered = self.next_lsn - 1;
        if covered == 0 {
            return Ok(0);
        }
        let final_path = snapshot_path(&self.dir, covered);
        let tmp_path = final_path.with_extension("snap.tmp");
        let mut buf = Vec::with_capacity(state.len() + crate::RECORD_HEADER_BYTES);
        encode_into(&mut buf, state);

        let mut tmp = File::create(&tmp_path)?;
        if self.config.kill.should_fire(KillPoint::MidSnapshot) {
            // Orphan the temp file half-written; recovery removes it.
            tmp.write_all(&buf[..buf.len() / 2])?;
            tmp.sync_all()?;
            return Err(WalError::Killed(KillPoint::MidSnapshot));
        }
        tmp.write_all(&buf)?;
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir);

        let previous = self.snapshot_lsn;
        self.snapshot_lsn = covered;
        if previous > 0 {
            let _ = std::fs::remove_file(snapshot_path(&self.dir, previous));
        }
        self.compact()?;
        Ok(covered)
    }

    /// Deletes closed segments fully covered by the current snapshot.
    /// Called by [`Wal::snapshot`]; public so recovery tooling can
    /// re-run an interrupted compaction.
    pub fn compact(&mut self) -> Result<(), WalError> {
        self.check_alive()?;
        let covered = self.snapshot_lsn;
        let mut kept = Vec::new();
        let mut killed = false;
        for segment in self.closed.drain(..) {
            if killed || segment.end > covered {
                kept.push(segment);
                continue;
            }
            std::fs::remove_file(&segment.path)?;
            if self.config.kill.should_fire(KillPoint::MidCompaction) {
                // Some covered segments deleted, some left behind.
                killed = true;
            }
        }
        self.closed = kept;
        sync_dir(&self.dir);
        self.publish_segment_gauge();
        if self.config.kill.dead() == Some(KillPoint::MidCompaction) {
            return Err(WalError::Killed(KillPoint::MidCompaction));
        }
        Ok(())
    }

    /// Forces an fsync of the active segment (for `fsync: false`
    /// configurations that still want durability barriers).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.check_alive()?;
        self.active.sync_all()?;
        if self.config.telemetry {
            telemetry().fsyncs.inc();
        }
        Ok(())
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// The LSN covered by the newest committed snapshot (`0` if none).
    pub fn snapshot_lsn(&self) -> Lsn {
        self.snapshot_lsn
    }

    /// Number of segment files (closed + active).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + 1
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The crash-kill switch shared with this instance.
    pub fn kill_switch(&self) -> &KillSwitch {
        &self.config.kill
    }

    fn check_alive(&self) -> Result<(), WalError> {
        match self.config.kill.dead() {
            Some(point) => Err(WalError::Killed(point)),
            None => Ok(()),
        }
    }

    /// Rolls to a fresh segment when the active one is over budget.
    fn maybe_roll(&mut self) -> Result<(), WalError> {
        let has_records = self.next_lsn > self.active_start;
        if !has_records || self.active_bytes < self.config.segment_max_bytes {
            return Ok(());
        }
        self.active.sync_all()?;
        let path = segment_path(&self.dir, self.next_lsn);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        sync_dir(&self.dir);
        self.closed.push(ClosedSegment {
            end: self.next_lsn - 1,
            path: segment_path(&self.dir, self.active_start),
        });
        self.active = file;
        self.active_start = self.next_lsn;
        self.active_bytes = 0;
        self.publish_segment_gauge();
        Ok(())
    }

    /// Reconciles this instance's contribution to the process-wide
    /// `wal_open_segments` gauge with its current segment count. Delta
    /// accounting keeps the gauge correct with several live logs in one
    /// process (broker and docstore each own one).
    fn publish_segment_gauge(&mut self) {
        if !self.config.telemetry {
            return;
        }
        let now = self.segment_count() as i64;
        telemetry().open_segments.add(now - self.gauge_segments);
        self.gauge_segments = now;
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.config.telemetry && self.gauge_segments != 0 {
            telemetry().open_segments.sub(self.gauge_segments);
        }
    }
}

/// `wal-{start:020}.log` under `dir`.
fn segment_path(dir: &Path, start: Lsn) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{start:020}{SEGMENT_SUFFIX}"))
}

/// `snap-{lsn:020}.snap` under `dir`.
fn snapshot_path(dir: &Path, lsn: Lsn) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{lsn:020}{SNAPSHOT_SUFFIX}"))
}

/// Parses `prefix{lsn}suffix` file names.
fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<Lsn> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Best-effort directory fsync (makes renames and creations durable on
/// platforms that support opening directories; a no-op elsewhere).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Records the recovery in the global flight recorder so the latency
/// waterfall and the loss-attribution exhibits see restarts.
fn emit_recovery_span(dir: &Path, at_ms: i64, report: &RecoveryReport, snapshot_lsn: Lsn) {
    // FNV-1a over the directory path, salted with the sim time: a
    // stable trace id distinct per recovered store.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in dir.to_string_lossy().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash ^= (at_ms as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let trace = TraceId::from_raw(if hash == 0 { 1 } else { hash });
    FlightRecorder::global().record(
        SpanRecord::new(trace, Hop::WalRecovery, at_ms)
            .outcome(Outcome::Ok)
            .attr("dir", dir.display().to_string())
            .attr("records_replayed", report.records_replayed.to_string())
            .attr("torn_tail", report.torn_tail.to_string())
            .attr("snapshot_lsn", snapshot_lsn.to_string()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quiet() -> WalConfig {
        WalConfig::default().telemetry(false)
    }

    fn payloads(range: std::ops::Range<u64>) -> Vec<Vec<u8>> {
        range.map(|i| format!("record-{i}").into_bytes()).collect()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = temp_dir("basic");
        let (mut wal, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(recovered.entries.len(), 0);
        assert_eq!(wal.append_batch(&payloads(0..3)).unwrap(), 3);
        assert_eq!(wal.append(b"solo").unwrap(), 4);
        drop(wal);

        let (wal, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(wal.next_lsn(), 5);
        let lsns: Vec<Lsn> = recovered.entries.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4]);
        assert_eq!(recovered.entries[3].1, b"solo");
        assert!(!recovered.report.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_across_files() {
        let dir = temp_dir("roll");
        let config = quiet().segment_max_bytes(64);
        let (mut wal, _) = Wal::open(&dir, config.clone()).unwrap();
        for batch in 0..10u64 {
            wal.append_batch(&payloads(batch * 4..batch * 4 + 4))
                .unwrap();
        }
        assert!(wal.segment_count() > 1, "64-byte budget must roll");
        drop(wal);
        let (wal, recovered) = Wal::open(&dir, config).unwrap();
        assert_eq!(recovered.entries.len(), 40);
        assert_eq!(wal.next_lsn(), 41);
        for (i, (lsn, payload)) in recovered.entries.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(payload, format!("record-{i}").as_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, quiet()).unwrap();
        wal.append_batch(&payloads(0..5)).unwrap();
        drop(wal);
        // Tear the tail by hand: chop 3 bytes off the only segment.
        let seg = segment_path(&dir, 1);
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (wal, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert!(recovered.report.torn_tail);
        assert_eq!(recovered.entries.len(), 4, "last record lost, rest intact");
        assert_eq!(wal.next_lsn(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = temp_dir("snap");
        let config = quiet().segment_max_bytes(64);
        let (mut wal, _) = Wal::open(&dir, config.clone()).unwrap();
        wal.append_batch(&payloads(0..12)).unwrap();
        for batch in 3..6u64 {
            wal.append_batch(&payloads(batch * 4..batch * 4 + 4))
                .unwrap();
        }
        let covered = wal.snapshot(b"state-at-24").unwrap();
        assert_eq!(covered, 24);
        assert_eq!(wal.segment_count(), 1, "covered segments deleted");
        wal.append_batch(&payloads(24..26)).unwrap();
        drop(wal);

        let (wal, recovered) = Wal::open(&dir, config).unwrap();
        assert_eq!(
            recovered.snapshot.as_deref(),
            Some(b"state-at-24".as_slice())
        );
        assert_eq!(recovered.snapshot_lsn, 24);
        let lsns: Vec<Lsn> = recovered.entries.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![25, 26]);
        assert_eq!(wal.next_lsn(), 27);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_segments_gauge_tracks_rolls_compaction_and_drop() {
        let registry = mps_telemetry::Registry::global();
        let gauge = |r: &mps_telemetry::Registry| r.gauge_value("wal_open_segments").unwrap_or(0);

        let dir = temp_dir("gauge");
        let config = WalConfig::default().segment_max_bytes(64);
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        wal.append_batch(&payloads(0..12)).unwrap();
        for batch in 3..6u64 {
            wal.append_batch(&payloads(batch * 4..batch * 4 + 4))
                .unwrap();
        }
        assert!(wal.segment_count() > 1, "64-byte budget must roll");
        // Other tests run in parallel against the same global gauge, so
        // assert only on this instance's guaranteed contribution.
        assert!(gauge(registry) >= wal.segment_count() as i64);

        wal.snapshot(b"covered").unwrap();
        assert_eq!(wal.segment_count(), 1, "compaction reclaims segments");
        let while_alive = gauge(registry);
        assert!(while_alive >= 1);
        drop(wal);
        assert!(
            gauge(registry) < while_alive,
            "drop withdraws the instance's contribution"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_costs_one_fsync_per_batch() {
        let registry = mps_telemetry::Registry::global();
        let count = |r: &mps_telemetry::Registry| r.counter_value("wal_fsyncs_total").unwrap_or(0);

        let dir = temp_dir("fsyncs");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        let before = count(registry);
        wal.append_batch(&payloads(0..16)).unwrap();
        // Other tests share the global counter, so assert only a lower
        // bound plus the single-batch delta being possible: one batch of
        // 16 records adds exactly one barrier from *this* instance.
        assert!(count(registry) >= before + 1);
        drop(wal);

        // fsync: false skips the barrier (and the counter); an explicit
        // sync() still counts.
        let dir2 = temp_dir("fsyncs-off");
        let (mut wal, _) = Wal::open(&dir2, WalConfig::default().fsync(false)).unwrap();
        let before = count(registry);
        wal.append_batch(&payloads(0..16)).unwrap();
        wal.sync().unwrap();
        assert!(count(registry) >= before + 1);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = temp_dir("empty");
        let (mut wal, _) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(wal.append_batch(&[]).unwrap(), 0);
        assert_eq!(wal.next_lsn(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_append_kill_tears_the_tail_and_recovery_heals_it() {
        let dir = temp_dir("kill-append");
        let kill = KillSwitch::new();
        let (mut wal, _) = Wal::open(&dir, quiet().kill(kill.clone())).unwrap();
        wal.append_batch(&payloads(0..3)).unwrap();
        kill.arm(KillPoint::MidAppend, 0);
        let err = wal.append_batch(&payloads(3..6)).unwrap_err();
        assert!(matches!(err, WalError::Killed(KillPoint::MidAppend)));
        // Dead: every further call fails the same way.
        assert!(matches!(
            wal.append(b"x").unwrap_err(),
            WalError::Killed(KillPoint::MidAppend)
        ));
        drop(wal);

        let (_, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert!(recovered.report.torn_tail, "half-written batch must tear");
        // The first three records and the durable prefix of the batch
        // survive; the torn final record does not.
        assert!(recovered.entries.len() >= 3 && recovered.entries.len() < 6);
        for (i, (lsn, payload)) in recovered.entries.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(payload, format!("record-{i}").as_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn post_append_pre_ack_kill_is_durable_but_unacknowledged() {
        let dir = temp_dir("kill-ack");
        let kill = KillSwitch::new();
        let (mut wal, _) = Wal::open(&dir, quiet().kill(kill.clone())).unwrap();
        kill.arm(KillPoint::PostAppendPreAck, 0);
        let err = wal.append_batch(&payloads(0..4)).unwrap_err();
        assert!(matches!(err, WalError::Killed(KillPoint::PostAppendPreAck)));
        drop(wal);

        let (_, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert!(!recovered.report.torn_tail);
        assert_eq!(recovered.entries.len(), 4, "the batch was durable");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_snapshot_kill_preserves_the_previous_snapshot() {
        let dir = temp_dir("kill-snap");
        let kill = KillSwitch::new();
        let (mut wal, _) = Wal::open(&dir, quiet().kill(kill.clone())).unwrap();
        wal.append_batch(&payloads(0..4)).unwrap();
        wal.snapshot(b"first").unwrap();
        wal.append_batch(&payloads(4..6)).unwrap();
        kill.arm(KillPoint::MidSnapshot, 0);
        let err = wal.snapshot(b"second").unwrap_err();
        assert!(matches!(err, WalError::Killed(KillPoint::MidSnapshot)));
        drop(wal);

        let (_, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(recovered.snapshot.as_deref(), Some(b"first".as_slice()));
        assert_eq!(recovered.snapshot_lsn, 4);
        assert_eq!(recovered.entries.len(), 2, "records after snapshot replay");
        // The orphan temp file is gone.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "orphan tmp must be removed"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_compaction_kill_leaves_recoverable_survivors() {
        let dir = temp_dir("kill-compact");
        let kill = KillSwitch::new();
        let config = quiet().segment_max_bytes(48).kill(kill.clone());
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for batch in 0..8u64 {
            wal.append_batch(&payloads(batch * 3..batch * 3 + 3))
                .unwrap();
        }
        assert!(wal.segment_count() > 2, "need several segments to compact");
        kill.arm(KillPoint::MidCompaction, 0);
        let err = wal.snapshot(b"covering").unwrap_err();
        assert!(matches!(err, WalError::Killed(KillPoint::MidCompaction)));
        drop(wal);

        // The snapshot committed before compaction died, so recovery
        // sees it and ignores the surviving covered segments.
        let (wal, recovered) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(recovered.snapshot.as_deref(), Some(b"covering".as_slice()));
        assert_eq!(recovered.snapshot_lsn, 24);
        assert!(recovered.entries.is_empty());
        assert_eq!(wal.next_lsn(), 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_replay_is_deterministic() {
        let dir = temp_dir("determinism");
        let (mut wal, _) = Wal::open(&dir, quiet().segment_max_bytes(96)).unwrap();
        for batch in 0..6u64 {
            wal.append_batch(&payloads(batch * 5..batch * 5 + 5))
                .unwrap();
        }
        wal.snapshot(b"mid").unwrap();
        wal.append_batch(&payloads(100..104)).unwrap();
        drop(wal);

        let (_, first) = Wal::open(&dir, quiet()).unwrap();
        let (_, second) = Wal::open(&dir, quiet()).unwrap();
        assert_eq!(first.snapshot, second.snapshot);
        assert_eq!(first.snapshot_lsn, second.snapshot_lsn);
        assert_eq!(first.entries, second.entries);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_span_reaches_the_flight_recorder() {
        let dir = temp_dir("span");
        let (mut wal, _) = Wal::open(&dir, quiet()).unwrap();
        wal.append(b"one").unwrap();
        drop(wal);
        let recorder = FlightRecorder::global();
        let before = recorder.snapshot().len();
        let (_, _) = Wal::open(&dir, quiet().recovery_span_at_ms(42_000)).unwrap();
        let spans = recorder.snapshot();
        let span = spans[before..]
            .iter()
            .find(|s| s.hop == Hop::WalRecovery)
            .expect("recovery span recorded");
        assert_eq!(span.outcome, Outcome::Ok);
        assert_eq!(span.start_ms, 42_000);
        assert!(span
            .attrs
            .iter()
            .any(|(k, v)| *k == "records_replayed" && v == "1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
