//! The WAL error taxonomy.

use crate::kill::KillPoint;
use std::fmt;

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The log is structurally damaged beyond torn-tail repair: a bad
    /// checksum *before* the tail, or a gap in the LSN sequence (e.g. a
    /// covered segment deleted without a snapshot to replace it).
    Corrupt(String),
    /// A crash-kill fault fired at this point — the instance behaves as
    /// if the process died and refuses every further operation.
    Killed(KillPoint),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(why) => write!(f, "wal corrupt: {why}"),
            WalError::Killed(point) => write!(f, "wal crash-killed at {point}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let io = WalError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("i/o"));
        assert!(WalError::Corrupt("gap".into()).to_string().contains("gap"));
        assert!(WalError::Killed(KillPoint::MidAppend)
            .to_string()
            .contains("mid_append"));
    }
}
