//! The WAL's handles into the process-wide telemetry registry.
//!
//! Series follow the workspace convention and register lazily in
//! [`Registry::global`]. Instances opened with
//! [`WalConfig::telemetry`] set to `false` (the benchmark's
//! attributable-numbers mode) skip these mirrors entirely.
//!
//! [`WalConfig::telemetry`]: crate::WalConfig

use mps_telemetry::{Counter, Gauge, Registry};
use std::sync::OnceLock;

/// Shared WAL metric handles.
pub(crate) struct WalTelemetry {
    /// Records appended (one per payload, not per batch).
    pub(crate) appends: Counter,
    /// Bytes written to segment files, framing included.
    pub(crate) bytes_written: Counter,
    /// Successful recovery scans (one per `Wal::open`).
    pub(crate) recoveries: Counter,
    /// Recoveries that truncated a torn tail off the last segment.
    pub(crate) torn_tail_truncations: Counter,
    /// Durability barriers issued on the append path (one per group
    /// commit) — the denominator the batching benches divide stored
    /// observations by.
    pub(crate) fsyncs: Counter,
    /// Segment files (closed + active) across live `Wal` instances —
    /// each instance contributes deltas and withdraws them on drop, so
    /// the readiness probe sees compaction keeping the count bounded.
    pub(crate) open_segments: Gauge,
}

/// The lazily-registered WAL metric set.
pub(crate) fn telemetry() -> &'static WalTelemetry {
    static TELEMETRY: OnceLock<WalTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        WalTelemetry {
            appends: registry.counter("wal_appends_total", "Records appended to the log"),
            bytes_written: registry.counter(
                "wal_bytes_written_total",
                "Bytes written to segment files, framing included",
            ),
            recoveries: registry.counter(
                "wal_recoveries_total",
                "Recovery scans completed by Wal::open",
            ),
            torn_tail_truncations: registry.counter(
                "wal_torn_tail_truncations_total",
                "Recoveries that truncated a torn tail off the last segment",
            ),
            fsyncs: registry.counter(
                "wal_fsyncs_total",
                "Group-commit durability barriers issued on the append path",
            ),
            open_segments: registry.gauge(
                "wal_open_segments",
                "Segment files (closed + active) across live WAL instances",
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_wal_names() {
        let t = telemetry();
        t.appends.add(0);
        let names = Registry::global().names();
        t.open_segments.add(0);
        for name in [
            "wal_appends_total",
            "wal_bytes_written_total",
            "wal_recoveries_total",
            "wal_torn_tail_truncations_total",
            "wal_fsyncs_total",
            "wal_open_segments",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
        let _ = (
            &t.bytes_written,
            &t.recoveries,
            &t.torn_tail_truncations,
            &t.fsyncs,
        );
    }
}
