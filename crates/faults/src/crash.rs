//! The crash-kill fault: a seeded process death at a WAL boundary.
//!
//! The other faults in this crate corrupt the *network*; this one kills
//! the *process* — the middleware host dying mid-batch, the failure the
//! paper's server-side restarts produced. A [`CrashSpec`] is drawn into
//! a deterministic [`CrashPlan`] (same seed → same kill, independent of
//! unrelated randomness, like [`crate::FaultPlan`]), and
//! [`CrashPlan::arm`] cocks an [`mps_wal::KillSwitch`] so the victim's
//! log dies exactly at the chosen [`mps_wal::KillPoint`]:
//! a half-written batch, a durable-but-unacknowledged batch, an
//! orphaned snapshot temp file, or a half-finished compaction.
//!
//! The CI recovery matrix drives every kill point through both durable
//! stores and asserts recovery-on-reopen loses nothing it should not.

use mps_simcore::SimRng;
use mps_wal::{KillPoint, KillSwitch};

/// Which durable component the crash targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTarget {
    /// The document store's log.
    Docstore,
    /// The broker's log.
    Broker,
}

impl CrashTarget {
    /// Stable label, used for RNG splitting and reporting.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashTarget::Docstore => "docstore",
            CrashTarget::Broker => "broker",
        }
    }
}

/// The declarative crash fault: kill `target` at one of the WAL's kill
/// points, after a seeded number of safe passes through that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Which component dies.
    pub target: CrashTarget,
    /// Inclusive lower bound on the safe passes before the kill fires.
    pub min_skip: u64,
    /// Inclusive upper bound on the safe passes before the kill fires.
    pub max_skip: u64,
}

impl CrashSpec {
    /// A crash landing somewhere in the first `within` passes.
    pub fn within(target: CrashTarget, within: u64) -> Self {
        Self {
            target,
            min_skip: 0,
            max_skip: within.saturating_sub(1),
        }
    }
}

/// A seeded, reproducible crash decision: the kill point and how many
/// operations survive before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    spec: CrashSpec,
    point: KillPoint,
    skip: u64,
}

impl CrashPlan {
    /// Draws the kill point and skip count from `seed`. The stream is
    /// split per target, so a docstore crash and a broker crash under
    /// the same seed are independent decisions.
    pub fn new(seed: u64, spec: CrashSpec) -> Self {
        let mut rng = SimRng::new(seed).split("faults.crash", spec.target as u64);
        let point = KillPoint::ALL[rng.index(KillPoint::ALL.len())];
        let span = spec.max_skip.saturating_sub(spec.min_skip) as usize + 1;
        let skip = spec.min_skip + rng.index(span) as u64;
        Self { spec, point, skip }
    }

    /// A plan that fires a *specific* kill point after `skip` safe
    /// passes — the recovery matrix enumerates all four this way.
    pub fn at(target: CrashTarget, point: KillPoint, skip: u64) -> Self {
        Self {
            spec: CrashSpec {
                target,
                min_skip: skip,
                max_skip: skip,
            },
            point,
            skip,
        }
    }

    /// The component this plan kills.
    pub fn target(&self) -> CrashTarget {
        self.spec.target
    }

    /// The chosen kill point.
    pub fn point(&self) -> KillPoint {
        self.point
    }

    /// Safe passes through the kill point before it fires.
    pub fn skip(&self) -> u64 {
        self.skip
    }

    /// Arms `kill` with this plan's decision. The switch can be handed
    /// to the victim's `WalConfig` before or after arming.
    pub fn arm(&self, kill: &KillSwitch) {
        kill.arm(self.point, self.skip);
    }

    /// Creates and arms a fresh switch in one step.
    pub fn armed_switch(&self) -> KillSwitch {
        let kill = KillSwitch::new();
        self.arm(&kill);
        kill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = CrashSpec::within(CrashTarget::Docstore, 16);
        let a = CrashPlan::new(7, spec);
        let b = CrashPlan::new(7, spec);
        assert_eq!(a, b);
        assert!(a.skip() < 16);
    }

    #[test]
    fn targets_draw_independent_streams() {
        let doc = CrashPlan::new(7, CrashSpec::within(CrashTarget::Docstore, 1_000));
        let broker = CrashPlan::new(7, CrashSpec::within(CrashTarget::Broker, 1_000));
        assert!(doc.skip() != broker.skip() || doc.point() != broker.point());
    }

    #[test]
    fn explicit_plan_kills_a_wal_at_the_requested_point() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-faults-crash-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let plan = CrashPlan::at(CrashTarget::Broker, KillPoint::MidAppend, 1);
        let kill = plan.armed_switch();
        let config = mps_wal::WalConfig::default()
            .telemetry(false)
            .kill(kill.clone());
        let (mut wal, _) = mps_wal::Wal::open(&dir, config).unwrap();
        // One safe pass, then the kill fires and the instance is dead.
        wal.append(b"survives").unwrap();
        assert!(matches!(
            wal.append(b"torn").unwrap_err(),
            mps_wal::WalError::Killed(KillPoint::MidAppend)
        ));
        assert_eq!(kill.dead(), Some(KillPoint::MidAppend));
        assert!(wal.append(b"after").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
