//! Shared `faults_*` series in the process-wide telemetry registry.

use mps_telemetry::{Counter, Registry};
use std::sync::OnceLock;

/// Shared fault-injection metric handles, under the workspace naming
/// convention `faults_<subsystem>_<metric>`.
pub(crate) struct FaultTelemetry {
    /// Messages a plan decided on.
    pub(crate) decisions: Counter,
    /// Messages lost to the drop dice.
    pub(crate) dropped: Counter,
    /// Messages swallowed by black-hole windows.
    pub(crate) blackholed: Counter,
    /// Messages held back by the delay dice.
    pub(crate) delayed: Counter,
    /// Messages nudged by the reorder dice.
    pub(crate) reordered: Counter,
    /// Extra copies produced by the duplicate dice.
    pub(crate) duplicated: Counter,
    /// Connectivity checks answered "down" by an outage window.
    pub(crate) outage_denials: Counter,
    /// Delayed messages released to the inner link.
    pub(crate) released: Counter,
}

/// The lazily-registered fault metric set.
pub(crate) fn telemetry() -> &'static FaultTelemetry {
    static TELEMETRY: OnceLock<FaultTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        FaultTelemetry {
            decisions: registry.counter(
                "faults_plan_decisions_total",
                "Messages a fault plan decided on",
            ),
            dropped: registry.counter(
                "faults_injected_drops_total",
                "Messages lost to the injected drop dice",
            ),
            blackholed: registry.counter(
                "faults_injected_blackholed_total",
                "Messages swallowed by an injected black-hole window",
            ),
            delayed: registry.counter(
                "faults_injected_delays_total",
                "Messages held back by the injected delay dice",
            ),
            reordered: registry.counter(
                "faults_injected_reorders_total",
                "Messages nudged out of order by the injected reorder dice",
            ),
            duplicated: registry.counter(
                "faults_injected_duplicates_total",
                "Extra message copies produced by the injected duplicate dice",
            ),
            outage_denials: registry.counter(
                "faults_outage_denials_total",
                "Connectivity checks answered down by an injected outage window",
            ),
            released: registry.counter(
                "faults_link_released_total",
                "Delayed messages released to the inner link",
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_faults_names() {
        let t = telemetry();
        t.decisions.add(0);
        let names = Registry::global().names();
        for name in [
            "faults_plan_decisions_total",
            "faults_injected_drops_total",
            "faults_injected_blackholed_total",
            "faults_injected_delays_total",
            "faults_injected_reorders_total",
            "faults_injected_duplicates_total",
            "faults_outage_denials_total",
            "faults_link_released_total",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }
}
