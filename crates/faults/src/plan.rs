//! The seeded decision stream over a fault spec.

use crate::spec::FaultSpec;
use crate::telemetry::telemetry;
use mps_simcore::SimRng;
use mps_types::{SimDuration, SimTime};

/// Why a message was swallowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random in-flight loss (the `drop_prob` dice).
    Random,
    /// The route fell into an active black-hole window.
    Blackhole,
}

/// What the plan decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the message through unmodified.
    Deliver,
    /// Lose the message (counted — the conservation invariant includes it).
    Drop(DropReason),
    /// Hold the message back for this long, then deliver it.
    Delay(SimDuration),
    /// Deliver the message now, plus this many extra copies.
    Duplicate(u32),
}

/// Monotonic conservation counters of one [`FaultPlan`].
///
/// `decisions == delivered + dropped + blackholed + delayed + reordered +
/// duplicated_messages`, where `duplicated` below counts *extra copies*
/// (so a duplicated message contributes 1 decision and ≥ 1 extra copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages the plan decided on.
    pub decisions: u64,
    /// Messages passed through unmodified.
    pub delivered: u64,
    /// Messages lost to the `drop_prob` dice.
    pub dropped: u64,
    /// Messages swallowed by a black-hole window.
    pub blackholed: u64,
    /// Messages held back by the delay dice.
    pub delayed: u64,
    /// Messages nudged by the reorder dice (a small delay).
    pub reordered: u64,
    /// Extra copies produced by the duplicate dice.
    pub duplicated: u64,
    /// Connectivity checks answered "down" because of an outage window.
    pub outage_denials: u64,
}

/// A deterministic fault plan: a [`FaultSpec`] plus a seeded decision
/// stream.
///
/// Two plans built from the same `(seed, spec)` produce the same decision
/// sequence; the per-device outage schedule depends only on
/// `(seed, device)`, not on how many messages were decided, so churn is
/// stable under refactoring (the same property [`SimRng::split`] gives
/// the simulator).
///
/// # Examples
///
/// ```
/// use mps_faults::{FaultPlan, FaultSpec};
/// use mps_types::SimTime;
///
/// let mut a = FaultPlan::new(7, FaultSpec::stress());
/// let mut b = FaultPlan::new(7, FaultSpec::stress());
/// for i in 0..50 {
///     let now = SimTime::from_millis(i);
///     assert_eq!(a.decide("obs.x", now), b.decide("obs.x", now));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan from an experiment seed and a spec.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        Self {
            seed,
            spec,
            rng: SimRng::new(seed).split("faults.decision", 0),
            stats: FaultStats::default(),
        }
    }

    /// The seed this plan was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec this plan draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The conservation counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one message on `route` sent at `now`.
    ///
    /// Black-hole windows are checked first (they are deterministic in
    /// time, not probabilistic), then the drop, duplicate, delay and
    /// reorder dice, in that order; at most one action fires per message.
    pub fn decide(&mut self, route: &str, now: SimTime) -> FaultAction {
        let shared = telemetry();
        self.stats.decisions += 1;
        shared.decisions.inc();

        if self.spec.blackholes.iter().any(|w| w.covers(route, now)) {
            self.stats.blackholed += 1;
            shared.blackholed.inc();
            return FaultAction::Drop(DropReason::Blackhole);
        }
        if self.rng.chance(self.spec.drop_prob) {
            self.stats.dropped += 1;
            shared.dropped.inc();
            return FaultAction::Drop(DropReason::Random);
        }
        if self.rng.chance(self.spec.duplicate_prob) {
            let max = self.spec.max_duplicates.max(1);
            let extra = 1 + self.rng.index(max as usize) as u32;
            self.stats.duplicated += u64::from(extra);
            shared.duplicated.add(u64::from(extra));
            return FaultAction::Duplicate(extra);
        }
        if self.rng.chance(self.spec.delay_prob) {
            let mean_ms = self.spec.mean_delay.as_millis().max(1) as f64;
            let delay_ms = self.rng.exponential(mean_ms).max(1.0) as i64;
            self.stats.delayed += 1;
            shared.delayed.inc();
            return FaultAction::Delay(SimDuration::from_millis(delay_ms));
        }
        if self.rng.chance(self.spec.reorder_prob) {
            let window_ms = self.spec.reorder_window.as_millis().max(1) as f64;
            let nudge_ms = self.rng.uniform_in(1.0, window_ms.max(2.0)) as i64;
            self.stats.reordered += 1;
            shared.reordered.inc();
            return FaultAction::Delay(SimDuration::from_millis(nudge_ms.max(1)));
        }
        self.stats.delivered += 1;
        FaultAction::Deliver
    }

    /// Whether device `device` is online at `now` under the plan's churn
    /// model.
    ///
    /// The schedule is derived from `(seed, device)` alone: alternating
    /// exponential up/down periods starting at the epoch. Devices outside
    /// the affected share are always online. Counted in
    /// [`FaultStats::outage_denials`] only through the shared registry
    /// (this method is `&self` and replayable).
    pub fn device_online(&self, device: u64, now: SimTime) -> bool {
        let Some(outages) = self.spec.outages else {
            return true;
        };
        let mut rng = SimRng::new(self.seed).split("faults.outage", device);
        if !rng.chance(outages.affected_share) {
            return true;
        }
        let up_ms = outages.mean_uptime.as_millis().max(1) as f64;
        let down_ms = outages.mean_downtime.as_millis().max(1) as f64;
        let now_ms = now.as_millis();
        let mut t: i64 = 0;
        loop {
            t += rng.exponential(up_ms).max(1.0) as i64;
            if t > now_ms {
                return true;
            }
            t += rng.exponential(down_ms).max(1.0) as i64;
            if t > now_ms {
                telemetry().outage_denials.inc();
                return false;
            }
        }
    }

    /// Records an outage denial in the plan's own counters (callers that
    /// defer an upload because [`FaultPlan::device_online`] said "down"
    /// use this to keep [`FaultStats`] exact).
    pub fn note_outage_denial(&mut self) {
        self.stats.outage_denials += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OutageSpec;

    fn count_actions(plan: &mut FaultPlan, n: usize) -> FaultStats {
        for i in 0..n {
            let _ = plan.decide("obs.paris.noise", SimTime::from_millis(i as i64));
        }
        plan.stats()
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::new(11, FaultSpec::stress());
        let mut b = FaultPlan::new(11, FaultSpec::stress());
        for i in 0..500 {
            let now = SimTime::from_millis(i);
            assert_eq!(a.decide("r.k", now), b.decide("r.k", now));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(1, FaultSpec::stress());
        let mut b = FaultPlan::new(2, FaultSpec::stress());
        let mut differed = false;
        for i in 0..200 {
            let now = SimTime::from_millis(i);
            if a.decide("r.k", now) != b.decide("r.k", now) {
                differed = true;
            }
        }
        assert!(differed);
    }

    #[test]
    fn none_spec_always_delivers() {
        let mut plan = FaultPlan::new(3, FaultSpec::none());
        for i in 0..100 {
            assert_eq!(
                plan.decide("any.route", SimTime::from_millis(i)),
                FaultAction::Deliver
            );
        }
        let stats = plan.stats();
        assert_eq!(stats.decisions, 100);
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.dropped + stats.delayed + stats.duplicated, 0);
    }

    #[test]
    fn stats_partition_decisions() {
        let mut plan = FaultPlan::new(17, FaultSpec::stress());
        let stats = count_actions(&mut plan, 2_000);
        assert_eq!(stats.decisions, 2_000);
        // `duplicated` counts extra copies, so re-derive duplicated
        // *messages* from the partition identity.
        let dup_messages = stats.decisions
            - stats.delivered
            - stats.dropped
            - stats.blackholed
            - stats.delayed
            - stats.reordered;
        assert!(stats.duplicated >= dup_messages);
        assert!(stats.dropped > 0, "stress spec should drop");
        assert!(stats.delayed > 0, "stress spec should delay");
        assert!(stats.duplicated > 0, "stress spec should duplicate");
    }

    #[test]
    fn blackhole_overrides_dice() {
        let spec = FaultSpec::none().with_blackhole(
            "obs.paris",
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        let mut plan = FaultPlan::new(5, spec);
        assert_eq!(
            plan.decide("obs.paris.noise", SimTime::from_millis(15)),
            FaultAction::Drop(DropReason::Blackhole)
        );
        assert_eq!(
            plan.decide("obs.paris.noise", SimTime::from_millis(25)),
            FaultAction::Deliver
        );
        assert_eq!(
            plan.decide("obs.lyon.noise", SimTime::from_millis(15)),
            FaultAction::Deliver
        );
        assert_eq!(plan.stats().blackholed, 1);
    }

    #[test]
    fn delays_are_positive() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            mean_delay: SimDuration::from_secs(60),
            ..FaultSpec::none()
        };
        let mut plan = FaultPlan::new(23, spec);
        for i in 0..200 {
            match plan.decide("r", SimTime::from_millis(i)) {
                FaultAction::Delay(d) => assert!(d > SimDuration::ZERO),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicates_respect_max() {
        let spec = FaultSpec {
            duplicate_prob: 1.0,
            max_duplicates: 3,
            ..FaultSpec::none()
        };
        let mut plan = FaultPlan::new(29, spec);
        for i in 0..200 {
            match plan.decide("r", SimTime::from_millis(i)) {
                FaultAction::Duplicate(extra) => assert!((1..=3).contains(&extra)),
                other => panic!("expected duplicate, got {other:?}"),
            }
        }
    }

    #[test]
    fn outage_schedule_is_deterministic_and_alternates() {
        let spec = FaultSpec::none().with_outages(OutageSpec {
            affected_share: 1.0,
            mean_uptime: SimDuration::from_mins(30),
            mean_downtime: SimDuration::from_mins(30),
        });
        let plan = FaultPlan::new(31, spec.clone());
        let again = FaultPlan::new(31, spec);
        let mut saw_up = false;
        let mut saw_down = false;
        for hour in 0..200 {
            let now = SimTime::from_hms(0, 0, 0, 0) + SimDuration::from_mins(hour * 13);
            let online = plan.device_online(42, now);
            assert_eq!(online, again.device_online(42, now), "deterministic");
            if online {
                saw_up = true;
            } else {
                saw_down = true;
            }
        }
        assert!(saw_up && saw_down, "schedule should alternate");
    }

    #[test]
    fn unaffected_devices_stay_online() {
        let spec = FaultSpec::none().with_outages(OutageSpec {
            affected_share: 0.0,
            mean_uptime: SimDuration::from_mins(1),
            mean_downtime: SimDuration::from_hours(10),
        });
        let plan = FaultPlan::new(37, spec);
        for day in 0..50 {
            assert!(plan.device_online(7, SimTime::from_hms(day, 12, 0, 0)));
        }
    }

    #[test]
    fn no_outage_spec_means_always_online() {
        let plan = FaultPlan::new(41, FaultSpec::none());
        assert!(plan.device_online(0, SimTime::from_hms(100, 0, 0, 0)));
    }

    #[test]
    fn note_outage_denial_counts() {
        let mut plan = FaultPlan::new(43, FaultSpec::none());
        plan.note_outage_denial();
        plan.note_outage_denial();
        assert_eq!(plan.stats().outage_denials, 2);
    }
}
