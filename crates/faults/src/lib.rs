//! # mps-faults — deterministic fault injection and the resilient link
//!
//! The paper's "don'ts" are almost all resilience failures: a 10-month
//! urban deployment (Section 6) survives on flaky cellular links, device
//! churn and server-side hiccups, and every message the middleware loses
//! silently is an observation the analyses never see. This crate is the
//! workspace's controlled adversary: a **seeded, replayable fault model**
//! that the pipeline is driven through so loss is always *injected,
//! counted and accounted for* — never accidental.
//!
//! Components:
//!
//! * [`FaultSpec`] — the declarative fault mix: drop / delay / duplicate /
//!   reorder probabilities, black-hole windows per route prefix, and
//!   device churn (outage) behaviour.
//! * [`FaultPlan`] — a seeded decision stream over a spec (built on
//!   [`mps_simcore::SimRng`], so decisions are bit-reproducible and
//!   independent of unrelated randomness). [`FaultPlan::decide`] maps
//!   each send to a [`FaultAction`]; [`FaultPlan::device_online`] derives
//!   deterministic per-device outage windows.
//! * [`Link`] — the trait at the transmission boundary (the mobile upload
//!   path and the broker publish boundary both implement it), and
//!   [`FaultyLink`] — the wrapper that applies a plan to any link,
//!   holding delayed messages in an internal delay line until
//!   [`FaultyLink::advance_to`] releases them.
//! * [`FaultStats`] — per-plan conservation counters (everything is also
//!   mirrored into the global [`mps_telemetry::Registry`] under
//!   `faults_*` series).
//! * [`CrashSpec`] / [`CrashPlan`] — the crash-kill fault: a seeded
//!   process death at a WAL kill point, armed onto an
//!   [`mps_wal::KillSwitch`] for the durable docstore or broker.
//!
//! The conservation contract the end-to-end tests assert: for every
//! message offered to a faulty link,
//! `delivered + dropped(counted) + still_pending == offered + duplicated`.
//!
//! # Examples
//!
//! ```
//! use mps_faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError, LinkReceipt};
//! use mps_types::SimTime;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! /// A link that counts what reaches the far side.
//! #[derive(Default)]
//! struct Sink(AtomicUsize);
//! impl Link for Sink {
//!     fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
//!         self.0.fetch_add(1, Ordering::Relaxed);
//!         Ok(1)
//!     }
//! }
//!
//! let plan = FaultPlan::new(42, FaultSpec::flaky_cellular());
//! let link = FaultyLink::new(Sink::default(), plan);
//! for i in 0..100u32 {
//!     let now = SimTime::from_millis(i as i64 * 1_000);
//!     link.advance_to(now).unwrap();
//!     link.send_at("obs.paris.noise", b"{}", now).unwrap();
//! }
//! link.drain_pending().unwrap();
//! let stats = link.stats();
//! let arrived = link.inner().0.load(Ordering::Relaxed) as u64;
//! // Zero silent loss: every send is delivered, duplicated or counted as dropped.
//! assert_eq!(arrived + stats.dropped + stats.blackholed, 100 + stats.duplicated);
//! ```

mod crash;
mod link;
mod plan;
#[cfg(test)]
mod proptests;
mod spec;
mod telemetry;

pub use crash::{CrashPlan, CrashSpec, CrashTarget};
pub use link::{FaultyLink, FaultyLinkAt, Link, LinkError, LinkReceipt, SendTrace};
pub use plan::{DropReason, FaultAction, FaultPlan, FaultStats};
pub use spec::{BlackholeWindow, FaultSpec, OutageSpec};
