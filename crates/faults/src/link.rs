//! The transmission boundary: the [`Link`] trait and the fault-applying
//! [`FaultyLink`] wrapper.

use crate::plan::{DropReason, FaultAction, FaultPlan, FaultStats};
use crate::telemetry::telemetry;
use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceContext};
use mps_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// A visible transmission failure: the sender *knows* the send did not
/// happen (unlike an injected drop, which is silent in-flight loss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The far side refused or is unreachable; the message should be
    /// retried by the sender's resilience layer.
    Unavailable(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Unavailable(why) => write!(f, "link unavailable: {why}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Anything a message can be sent over: the mobile upload path publishes
/// observations through it, and the broker publish boundary implements it
/// so server-side hops can be fault-injected too.
///
/// `send` returns the number of destinations the message reached (broker
/// adapters report the routed-queue count; plain transports report 1).
/// A returned [`LinkError`] is a *visible* failure — the caller's
/// retry/backoff machinery reacts to it. Silent in-flight loss is the
/// business of [`FaultyLink`], never of `Link` implementations.
pub trait Link {
    /// Transmits `payload` along `route`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Unavailable`] when the far side cannot accept
    /// the message (the sender should retry later).
    fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError>;

    /// Transmits `payload` along `route`, carrying trace context for the
    /// observation copies inside the payload.
    ///
    /// The default implementation ignores the context and delegates to
    /// [`Link::send`], so existing links stay correct; trace-aware links
    /// (the broker adapter, [`FaultyLink`]) override it to propagate the
    /// context — via message headers or span recording — alongside the
    /// payload.
    ///
    /// # Errors
    ///
    /// Same contract as [`Link::send`].
    fn send_traced(
        &self,
        route: &str,
        payload: &[u8],
        trace: &SendTrace<'_>,
    ) -> Result<usize, LinkError> {
        let _ = trace;
        self.send(route, payload)
    }
}

impl<T: Link + ?Sized> Link for &T {
    fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError> {
        (**self).send(route, payload)
    }

    fn send_traced(
        &self,
        route: &str,
        payload: &[u8],
        trace: &SendTrace<'_>,
    ) -> Result<usize, LinkError> {
        (**self).send_traced(route, payload, trace)
    }
}

/// The trace side-channel of a traced send: the sim-clock send time and
/// one [`TraceContext`] per observation copy carried in the payload.
#[derive(Debug, Clone, Copy)]
pub struct SendTrace<'a> {
    /// Sim-clock send time, milliseconds since the epoch.
    pub now_ms: i64,
    /// One context per observation in the payload (a v1.3 batch upload
    /// carries several).
    pub contexts: &'a [TraceContext],
}

impl<'a> SendTrace<'a> {
    /// Bundles a send time with the payload's trace contexts.
    pub fn new(now_ms: i64, contexts: &'a [TraceContext]) -> Self {
        Self { now_ms, contexts }
    }
}

/// What a faulty send did, from the *omniscient* test harness view (the
/// sender in the simulation only sees `Ok`/`Err`; the receipt exists so
/// conservation tests can account for every message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkReceipt {
    /// The message (and `copies - 1` extra duplicates) reached the inner
    /// link now, reaching `routed` destinations in total.
    Delivered {
        /// Total destinations reached across all copies.
        routed: usize,
        /// Copies sent (1 = no duplication).
        copies: u32,
    },
    /// The message was lost in flight — counted in [`FaultStats`].
    Dropped(DropReason),
    /// The message sits in the delay line until `due`.
    Delayed {
        /// When [`FaultyLink::advance_to`] will release it.
        due: SimTime,
    },
}

/// A message held in the delay line.
#[derive(Debug)]
struct Held {
    due_ms: i64,
    seq: u64,
    route: String,
    payload: Vec<u8>,
    /// When the message entered the delay line (sim-clock ms) — the
    /// start of its `link_delay` span.
    sent_ms: i64,
    /// Trace contexts riding with the payload, released with it.
    contexts: Vec<TraceContext>,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due_ms == other.due_ms && self.seq == other.seq
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-due first,
        // FIFO among equals.
        (other.due_ms, other.seq).cmp(&(self.due_ms, self.seq))
    }
}

/// A [`Link`] wrapped with a [`FaultPlan`]: every send is first judged by
/// the plan, then delivered, dropped (counted), duplicated, or parked in
/// a delay line until [`FaultyLink::advance_to`] reaches its due time.
///
/// Thread-safe: the plan and delay line sit behind mutexes so a crowd of
/// simulated devices can share one uplink.
///
/// See the [crate documentation](crate) for a conservation example.
#[derive(Debug)]
pub struct FaultyLink<L> {
    inner: L,
    plan: Mutex<FaultPlan>,
    held: Mutex<BinaryHeap<Held>>,
    seq: Mutex<u64>,
}

impl<L: Link> FaultyLink<L> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan: Mutex::new(plan),
            held: Mutex::new(BinaryHeap::new()),
            seq: Mutex::new(0),
        }
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The plan's conservation counters so far.
    pub fn stats(&self) -> FaultStats {
        self.plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// Messages currently parked in the delay line.
    pub fn pending(&self) -> usize {
        self.held
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether device `device` is online at `now` (delegates to
    /// [`FaultPlan::device_online`], recording denials in the stats).
    pub fn device_online(&self, device: u64, now: SimTime) -> bool {
        let mut plan = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
        let online = plan.device_online(device, now);
        if !online {
            plan.note_outage_denial();
        }
        online
    }

    /// Sends `payload` along `route` at simulated time `now`, applying
    /// the fault plan.
    ///
    /// # Errors
    ///
    /// Propagates [`LinkError`] from the inner link (a *visible* failure;
    /// the plan's decision is not consumed twice — a failed delivery
    /// attempt still counts as decided, and the caller retries through a
    /// fresh decision).
    pub fn send_at(
        &self,
        route: &str,
        payload: &[u8],
        now: SimTime,
    ) -> Result<LinkReceipt, LinkError> {
        self.send_at_traced(route, payload, now, &[])
    }

    /// [`FaultyLink::send_at`] with trace contexts for the observation
    /// copies in `payload`: the plan's verdict is recorded as a
    /// `link_transmit` (or `link_delay`, at release) span per context —
    /// injected drops and black-holes become *terminal* loss spans,
    /// duplicates fork duplicate-marked contexts downstream.
    ///
    /// # Errors
    ///
    /// Same contract as [`FaultyLink::send_at`].
    pub fn send_at_traced(
        &self,
        route: &str,
        payload: &[u8],
        now: SimTime,
        contexts: &[TraceContext],
    ) -> Result<LinkReceipt, LinkError> {
        let action = self
            .plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .decide(route, now);
        let now_ms = now.as_millis();
        let recorder = FlightRecorder::global();
        match action {
            FaultAction::Deliver => {
                let forwarded = transmit_contexts(recorder, contexts, now_ms, 1, 0);
                let routed =
                    self.inner
                        .send_traced(route, payload, &SendTrace::new(now_ms, &forwarded))?;
                Ok(LinkReceipt::Delivered { routed, copies: 1 })
            }
            FaultAction::Drop(reason) => {
                let outcome = match reason {
                    DropReason::Random => Outcome::Dropped,
                    DropReason::Blackhole => Outcome::Blackholed,
                };
                for ctx in contexts {
                    recorder.record(
                        SpanRecord::new(ctx.trace, Hop::LinkTransmit, now_ms)
                            .parent(ctx.parent)
                            .duplicate(ctx.duplicate)
                            .outcome(outcome),
                    );
                }
                Ok(LinkReceipt::Dropped(reason))
            }
            FaultAction::Duplicate(extra) => {
                let mut routed = 0;
                for copy in 0..=extra {
                    let copy_ctxs = transmit_contexts(recorder, contexts, now_ms, extra + 1, copy);
                    routed += self.inner.send_traced(
                        route,
                        payload,
                        &SendTrace::new(now_ms, &copy_ctxs),
                    )?;
                }
                Ok(LinkReceipt::Delivered {
                    routed,
                    copies: extra + 1,
                })
            }
            FaultAction::Delay(by) => {
                let due = now + by;
                let mut seq = self.seq.lock().unwrap_or_else(PoisonError::into_inner);
                *seq += 1;
                self.held
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Held {
                        due_ms: due.as_millis(),
                        seq: *seq,
                        route: route.to_owned(),
                        payload: payload.to_vec(),
                        sent_ms: now_ms,
                        contexts: contexts.to_vec(),
                    });
                Ok(LinkReceipt::Delayed { due })
            }
        }
    }

    /// Releases every held message whose due time is `<= now` into the
    /// inner link, in due order, returning how many were released.
    ///
    /// # Errors
    ///
    /// If the inner link fails mid-release the failed message is put back
    /// and the error propagates; already-released messages stay released.
    pub fn advance_to(&self, now: SimTime) -> Result<usize, LinkError> {
        let now_ms = now.as_millis();
        let mut released = 0;
        loop {
            let next = {
                let mut held = self.held.lock().unwrap_or_else(PoisonError::into_inner);
                match held.peek() {
                    Some(h) if h.due_ms <= now_ms => held.pop(),
                    _ => None,
                }
            };
            let Some(msg) = next else {
                return Ok(released);
            };
            // The release time is the message's *due* time, not `now`:
            // drain_pending advances to the end of time, but the message
            // logically arrived when its delay elapsed.
            let recorder = FlightRecorder::global();
            let released_ctxs: Vec<TraceContext> = msg
                .contexts
                .iter()
                .map(|ctx| {
                    let span = recorder.record(
                        SpanRecord::new(ctx.trace, Hop::LinkDelay, msg.due_ms)
                            .started_at(msg.sent_ms)
                            .parent(ctx.parent)
                            .duplicate(ctx.duplicate),
                    );
                    ctx.child_of(span)
                })
                .collect();
            if let Err(err) = self.inner.send_traced(
                &msg.route,
                &msg.payload,
                &SendTrace::new(msg.due_ms, &released_ctxs),
            ) {
                self.held
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(msg);
                return Err(err);
            }
            released += 1;
            telemetry().released.inc();
        }
    }

    /// Releases *everything* still parked, regardless of due time (test
    /// teardown: quiesce the pipeline so conservation can be asserted).
    ///
    /// # Errors
    ///
    /// Same contract as [`FaultyLink::advance_to`].
    pub fn drain_pending(&self) -> Result<usize, LinkError> {
        self.advance_to(SimTime::from_millis(i64::MAX))
    }

    /// A view of this faulty link pinned to the simulated instant `now`,
    /// usable wherever a plain [`Link`] is expected (the mobile client's
    /// upload path, for instance).
    pub fn at(&self, now: SimTime) -> FaultyLinkAt<'_, L> {
        FaultyLinkAt { link: self, now }
    }
}

/// A [`FaultyLink`] pinned to one simulated instant — see
/// [`FaultyLink::at`].
///
/// Injected drops and delays report `Ok` to the sender: in-flight loss is
/// *silent* from the sending side, which is precisely the failure mode the
/// resilience layer must survive. Only inner-link refusals surface as
/// [`LinkError`].
#[derive(Debug, Clone, Copy)]
pub struct FaultyLinkAt<'a, L> {
    link: &'a FaultyLink<L>,
    now: SimTime,
}

impl<L: Link> Link for FaultyLinkAt<'_, L> {
    fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError> {
        self.send_traced(route, payload, &SendTrace::new(self.now.as_millis(), &[]))
    }

    fn send_traced(
        &self,
        route: &str,
        payload: &[u8],
        trace: &SendTrace<'_>,
    ) -> Result<usize, LinkError> {
        match self
            .link
            .send_at_traced(route, payload, self.now, trace.contexts)?
        {
            LinkReceipt::Delivered { routed, .. } => Ok(routed),
            // The sender cannot distinguish a drop or delay from a routed
            // send — it already paid the radio transfer.
            LinkReceipt::Dropped(_) | LinkReceipt::Delayed { .. } => Ok(0),
        }
    }
}

/// Records one `link_transmit` span per context for copy number `copy`
/// of `copies` and returns the contexts re-parented under those spans
/// (copies beyond the first marked duplicate).
fn transmit_contexts(
    recorder: &FlightRecorder,
    contexts: &[TraceContext],
    now_ms: i64,
    copies: u32,
    copy: u32,
) -> Vec<TraceContext> {
    contexts
        .iter()
        .map(|ctx| {
            let ctx = if copy > 0 { ctx.as_duplicate() } else { *ctx };
            let mut span = SpanRecord::new(ctx.trace, Hop::LinkTransmit, now_ms)
                .parent(ctx.parent)
                .duplicate(ctx.duplicate);
            if copies > 1 {
                span = span.attr("copies", copies.to_string());
            }
            let span = recorder.record(span);
            ctx.child_of(span)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;
    use mps_types::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::Mutex as StdMutex;

    /// Records every arrival, optionally failing on demand.
    #[derive(Default)]
    struct Probe {
        arrivals: StdMutex<Vec<(String, Vec<u8>)>>,
        fail: AtomicUsize, // fail the next N sends
    }

    impl Probe {
        fn count(&self) -> usize {
            self.arrivals.lock().unwrap().len()
        }
    }

    impl Link for Probe {
        fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError> {
            if self
                .fail
                .fetch_update(AtomicOrdering::SeqCst, AtomicOrdering::SeqCst, |n| {
                    n.checked_sub(1)
                })
                .is_ok()
            {
                return Err(LinkError::Unavailable("probe says no".into()));
            }
            self.arrivals
                .lock()
                .unwrap()
                .push((route.to_owned(), payload.to_vec()));
            Ok(1)
        }
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(1, FaultSpec::none()));
        for i in 0..20 {
            let receipt = link
                .send_at("r.k", b"payload", SimTime::from_millis(i))
                .unwrap();
            assert_eq!(
                receipt,
                LinkReceipt::Delivered {
                    routed: 1,
                    copies: 1
                }
            );
        }
        assert_eq!(link.inner().count(), 20);
        assert_eq!(link.pending(), 0);
    }

    #[test]
    fn delays_hold_until_advance() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            mean_delay: SimDuration::from_secs(10),
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(2, spec));
        let receipt = link.send_at("r.k", b"x", SimTime::EPOCH).unwrap();
        let LinkReceipt::Delayed { due } = receipt else {
            panic!("expected delay, got {receipt:?}");
        };
        assert_eq!(link.pending(), 1);
        assert_eq!(link.inner().count(), 0);
        // Not due yet.
        assert_eq!(
            link.advance_to(due - SimDuration::from_millis(1)).unwrap(),
            0
        );
        assert_eq!(link.inner().count(), 0);
        // Due now.
        assert_eq!(link.advance_to(due).unwrap(), 1);
        assert_eq!(link.inner().count(), 1);
        assert_eq!(link.pending(), 0);
    }

    #[test]
    fn release_order_is_due_order_fifo_on_ties() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            mean_delay: SimDuration::from_mins(5),
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(3, spec));
        for i in 0..30u8 {
            link.send_at("r.k", &[i], SimTime::EPOCH).unwrap();
        }
        link.drain_pending().unwrap();
        let arrivals = link.inner().arrivals.lock().unwrap();
        assert_eq!(arrivals.len(), 30);
        // Every payload arrives exactly once.
        let mut seen: Vec<u8> = arrivals.iter().map(|(_, p)| p[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_multiply_arrivals() {
        let spec = FaultSpec {
            duplicate_prob: 1.0,
            max_duplicates: 2,
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(4, spec));
        let mut copies_total = 0u32;
        for i in 0..10 {
            match link.send_at("r.k", b"d", SimTime::from_millis(i)).unwrap() {
                LinkReceipt::Delivered { copies, .. } => {
                    assert!(copies >= 2);
                    copies_total += copies;
                }
                other => panic!("expected duplicated delivery, got {other:?}"),
            }
        }
        assert_eq!(link.inner().count() as u32, copies_total);
        assert_eq!(link.stats().duplicated, u64::from(copies_total) - 10);
    }

    #[test]
    fn drops_are_counted_not_delivered() {
        let spec = FaultSpec {
            drop_prob: 1.0,
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(5, spec));
        for i in 0..7 {
            assert_eq!(
                link.send_at("r.k", b"gone", SimTime::from_millis(i))
                    .unwrap(),
                LinkReceipt::Dropped(DropReason::Random)
            );
        }
        assert_eq!(link.inner().count(), 0);
        assert_eq!(link.stats().dropped, 7);
    }

    #[test]
    fn inner_failure_propagates_and_preserves_held_messages() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            mean_delay: SimDuration::from_secs(1),
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(6, spec));
        link.send_at("r.k", b"held", SimTime::EPOCH).unwrap();
        link.inner().fail.store(1, AtomicOrdering::SeqCst);
        assert!(link.drain_pending().is_err());
        assert_eq!(link.pending(), 1, "failed release is put back");
        assert_eq!(link.drain_pending().unwrap(), 1);
        assert_eq!(link.inner().count(), 1);
    }

    #[test]
    fn at_view_hides_silent_loss_but_surfaces_refusals() {
        let spec = FaultSpec {
            drop_prob: 1.0,
            ..FaultSpec::none()
        };
        let dropping = FaultyLink::new(Probe::default(), FaultPlan::new(8, spec));
        // An injected drop looks like a successful send to the sender.
        assert_eq!(dropping.at(SimTime::EPOCH).send("r.k", b"x"), Ok(0));
        assert_eq!(dropping.stats().dropped, 1);

        // An inner-link refusal stays a visible error.
        let clean = FaultyLink::new(Probe::default(), FaultPlan::new(9, FaultSpec::none()));
        clean.inner().fail.store(1, AtomicOrdering::SeqCst);
        assert!(clean.at(SimTime::EPOCH).send("r.k", b"x").is_err());
        assert_eq!(clean.at(SimTime::EPOCH).send("r.k", b"x"), Ok(1));
    }

    #[test]
    fn traced_drop_records_a_terminal_loss_span() {
        use mps_telemetry::trace::TraceId;
        let spec = FaultSpec {
            drop_prob: 1.0,
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(41, spec));
        let trace = TraceId::for_observation(990_001, 42);
        link.send_at_traced("r.k", b"x", SimTime::EPOCH, &[TraceContext::new(trace)])
            .unwrap();
        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].hop, Hop::LinkTransmit);
        assert_eq!(spans[0].outcome, Outcome::Dropped);
        assert!(!spans[0].duplicate);
    }

    #[test]
    fn traced_duplicates_mark_extra_copies_downstream() {
        use mps_telemetry::trace::TraceId;

        /// Captures the contexts of every traced arrival.
        #[derive(Default)]
        struct CtxProbe {
            seen: StdMutex<Vec<Vec<TraceContext>>>,
        }
        impl Link for CtxProbe {
            fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
                self.seen.lock().unwrap().push(Vec::new());
                Ok(1)
            }
            fn send_traced(
                &self,
                _route: &str,
                _payload: &[u8],
                trace: &SendTrace<'_>,
            ) -> Result<usize, LinkError> {
                self.seen.lock().unwrap().push(trace.contexts.to_vec());
                Ok(1)
            }
        }

        let spec = FaultSpec {
            duplicate_prob: 1.0,
            max_duplicates: 1,
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(CtxProbe::default(), FaultPlan::new(42, spec));
        let trace = TraceId::for_observation(990_002, 7);
        link.send_at_traced("r.k", b"x", SimTime::EPOCH, &[TraceContext::new(trace)])
            .unwrap();
        let seen = link.inner().seen.lock().unwrap().clone();
        assert_eq!(seen.len(), 2, "primary + one duplicate copy");
        assert!(!seen[0][0].duplicate, "first copy is the primary");
        assert!(seen[1][0].duplicate, "extra copy marked duplicate");
        assert_eq!(seen[0][0].trace, trace);
        assert_eq!(seen[1][0].trace, trace, "duplicates share the trace");
        assert_ne!(seen[0][0].parent, seen[1][0].parent, "distinct spans");
    }

    #[test]
    fn traced_delay_records_residence_on_release() {
        use mps_telemetry::trace::TraceId;
        let spec = FaultSpec {
            delay_prob: 1.0,
            mean_delay: SimDuration::from_secs(10),
            ..FaultSpec::none()
        };
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(43, spec));
        let trace = TraceId::for_observation(990_003, 9);
        let receipt = link
            .send_at_traced("r.k", b"x", SimTime::EPOCH, &[TraceContext::new(trace)])
            .unwrap();
        let LinkReceipt::Delayed { due } = receipt else {
            panic!("expected delay");
        };
        // Nothing recorded while parked.
        let count = |hop| {
            FlightRecorder::global()
                .snapshot()
                .iter()
                .filter(|s| s.trace == trace && s.hop == hop)
                .count()
        };
        assert_eq!(count(Hop::LinkDelay), 0);
        link.drain_pending().unwrap();
        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].hop, Hop::LinkDelay);
        assert_eq!(spans[0].start_ms, 0);
        assert_eq!(
            spans[0].end_ms,
            due.as_millis(),
            "release stamps the due time even under drain_pending"
        );
        assert_eq!(spans[0].outcome, Outcome::Forwarded);
    }

    #[test]
    fn conservation_under_stress() {
        let link = FaultyLink::new(Probe::default(), FaultPlan::new(7, FaultSpec::stress()));
        let sent = 1_000u64;
        for i in 0..sent {
            let now = SimTime::from_millis(i as i64 * 250);
            link.advance_to(now).unwrap();
            link.send_at("obs.k", b"m", now).unwrap();
        }
        link.drain_pending().unwrap();
        let stats = link.stats();
        let arrived = link.inner().count() as u64;
        assert_eq!(
            arrived + stats.dropped + stats.blackholed,
            sent + stats.duplicated,
            "zero silent loss: {stats:?}"
        );
        assert_eq!(link.pending(), 0);
    }
}
