//! In-crate property tests: trace propagation conserves identity under
//! arbitrary fault plans.

use crate::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError, SendTrace};
use mps_telemetry::trace::{
    FlightRecorder, Hop, Outcome, SpanRecord, TraceContext, TraceId, TraceIndex,
};
use mps_types::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique device ids across proptest cases so each case's traces stay
/// disjoint in the shared global recorder.
static DEVICE: AtomicU64 = AtomicU64::new(7_000_000);

/// The far side of the link: "stores" every arriving copy, recording
/// the terminal `ok` span ingest would.
struct StoringSink;

impl Link for StoringSink {
    fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
        Ok(1)
    }

    fn send_traced(
        &self,
        _route: &str,
        _payload: &[u8],
        trace: &SendTrace<'_>,
    ) -> Result<usize, LinkError> {
        for ctx in trace.contexts {
            FlightRecorder::global().record(
                SpanRecord::new(ctx.trace, Hop::DocstoreWrite, trace.now_ms)
                    .parent(ctx.parent)
                    .duplicate(ctx.duplicate)
                    .outcome(Outcome::Ok),
            );
        }
        Ok(1)
    }
}

/// An arbitrary (but sane) fault mix exercising every fault class the
/// link can inject.
fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        0.0..0.5f64,
        0.0..0.5f64,
        1i64..120,
        0.0..0.3f64,
        1u32..4,
        0.0..0.3f64,
        prop::option::of((0i64..90, 1i64..60)),
    )
        .prop_map(
            |(drop_prob, delay_prob, delay_s, duplicate_prob, max_duplicates, reorder_prob, bh)| {
                let mut spec = FaultSpec {
                    drop_prob,
                    delay_prob,
                    mean_delay: SimDuration::from_secs(delay_s),
                    duplicate_prob,
                    max_duplicates,
                    reorder_prob,
                    reorder_window: SimDuration::from_secs(10),
                    ..FaultSpec::none()
                };
                if let Some((from_s, len_s)) = bh {
                    spec = spec.with_blackhole(
                        "obs",
                        SimTime::from_millis(from_s * 1_000),
                        SimTime::from_millis((from_s + len_s) * 1_000),
                    );
                }
                spec
            },
        )
}

proptest! {
    /// Every sensed observation's trace terminates in exactly one
    /// primary terminal outcome span, duplicates share the parent trace,
    /// and the per-outcome span counts agree with the plan's
    /// conservation counters — for any seed and any fault mix.
    #[test]
    fn trace_identity_is_conserved_under_arbitrary_plans(
        seed in any::<u64>(),
        spec in spec_strategy(),
        sends in 30usize..120,
    ) {
        let device = DEVICE.fetch_add(1, Ordering::Relaxed);
        let link = FaultyLink::new(StoringSink, FaultPlan::new(seed, spec));
        let mut traces = BTreeSet::new();
        for i in 0..sends {
            let now = SimTime::from_millis(i as i64 * 1_000);
            link.advance_to(now).unwrap();
            let trace = TraceId::for_observation(device, now.as_millis());
            traces.insert(trace);
            let sensed = FlightRecorder::global()
                .record(SpanRecord::new(trace, Hop::Sensed, now.as_millis()));
            link.send_at_traced(
                "obs.paris.noise",
                b"{}",
                now,
                &[TraceContext::new(trace).child_of(sensed)],
            )
            .unwrap();
        }
        link.drain_pending().unwrap();
        prop_assert_eq!(link.pending(), 0);
        let stats = link.stats();

        let spans: Vec<SpanRecord> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| traces.contains(&s.trace))
            .collect();
        let index = TraceIndex::from_spans(spans.iter().cloned());
        prop_assert_eq!(index.len(), traces.len(), "every sensed trace is retained");
        prop_assert!(index.unterminated().is_empty(), "every trace terminated");

        for tree in index.iter() {
            let primaries = tree
                .spans
                .iter()
                .filter(|s| s.outcome.is_terminal() && !s.duplicate)
                .count();
            prop_assert_eq!(
                primaries, 1,
                "trace {} must have exactly one primary terminal", tree.trace
            );
        }

        // Duplicate copies share the parent trace — structurally true by
        // grouping, so assert the stronger count identities against the
        // plan's own books.
        let count = |outcome: Outcome, dup: bool| {
            spans
                .iter()
                .filter(|s| s.outcome == outcome && s.duplicate == dup)
                .count() as u64
        };
        prop_assert_eq!(count(Outcome::Ok, true), stats.duplicated);
        prop_assert_eq!(count(Outcome::Dropped, false), stats.dropped);
        prop_assert_eq!(count(Outcome::Blackholed, false), stats.blackholed);
        prop_assert_eq!(count(Outcome::Dropped, true), 0);
        prop_assert_eq!(count(Outcome::Blackholed, true), 0);
        prop_assert_eq!(
            count(Outcome::Ok, false) + stats.dropped + stats.blackholed,
            sends as u64,
            "primary copies: stored + counted losses == sends"
        );
    }
}
