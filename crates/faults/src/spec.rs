//! The declarative fault mix.

use mps_types::{SimDuration, SimTime};

/// A window during which every message whose route starts with
/// `route_prefix` is silently swallowed (and counted) — the simulated
/// equivalent of a broker partition or a misconfigured binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackholeWindow {
    /// Routes starting with this prefix are affected (empty = all routes).
    pub route_prefix: String,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
}

impl BlackholeWindow {
    /// Whether `route` at time `now` falls into this window.
    pub fn covers(&self, route: &str, now: SimTime) -> bool {
        now >= self.from && now < self.until && route.starts_with(&self.route_prefix)
    }
}

/// Device churn behaviour: a share of devices alternates between up and
/// down periods with exponentially distributed lengths, reproducing the
/// heavy disconnection tail the paper observed (Figure 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Fraction of devices subject to churn, in `[0, 1]`.
    pub affected_share: f64,
    /// Mean length of an uptime period.
    pub mean_uptime: SimDuration,
    /// Mean length of a downtime period.
    pub mean_downtime: SimDuration,
}

/// The fault mix a [`crate::FaultPlan`] draws from.
///
/// All probabilities are per-message and clamped to `[0, 1]` at decision
/// time; the actions are mutually exclusive per message (checked in the
/// order black-hole, drop, duplicate, delay, reorder).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability a message is lost in flight (counted, never silent).
    pub drop_prob: f64,
    /// Probability a message is held back and released later.
    pub delay_prob: f64,
    /// Mean of the exponential delay distribution.
    pub mean_delay: SimDuration,
    /// Probability a message is duplicated (at-least-once delivery).
    pub duplicate_prob: f64,
    /// Maximum extra copies a duplication produces (at least 1).
    pub max_duplicates: u32,
    /// Probability a message is nudged by a small delay so it overtakes /
    /// is overtaken by its neighbours.
    pub reorder_prob: f64,
    /// Upper bound of the uniform reorder nudge.
    pub reorder_window: SimDuration,
    /// Topic black-hole windows.
    pub blackholes: Vec<BlackholeWindow>,
    /// Device churn behaviour, if any.
    pub outages: Option<OutageSpec>,
}

impl FaultSpec {
    /// A spec that injects nothing: every decision is `Deliver`.
    pub fn none() -> Self {
        Self::default()
    }

    /// A mix shaped like the paper's deployment conditions: a few percent
    /// of messages lost, a heavy delay tail, occasional duplicates from
    /// retransmissions, and a third of the devices churning.
    pub fn flaky_cellular() -> Self {
        Self {
            drop_prob: 0.03,
            delay_prob: 0.15,
            mean_delay: SimDuration::from_mins(10),
            duplicate_prob: 0.02,
            max_duplicates: 1,
            reorder_prob: 0.05,
            reorder_window: SimDuration::from_secs(30),
            blackholes: Vec::new(),
            outages: Some(OutageSpec {
                affected_share: 0.3,
                mean_uptime: SimDuration::from_hours(4),
                mean_downtime: SimDuration::from_mins(45),
            }),
        }
    }

    /// An aggressive mix for stress tests: every fault class fires often.
    pub fn stress() -> Self {
        Self {
            drop_prob: 0.15,
            delay_prob: 0.30,
            mean_delay: SimDuration::from_mins(30),
            duplicate_prob: 0.10,
            max_duplicates: 3,
            reorder_prob: 0.15,
            reorder_window: SimDuration::from_mins(2),
            blackholes: Vec::new(),
            outages: Some(OutageSpec {
                affected_share: 0.6,
                mean_uptime: SimDuration::from_hours(1),
                mean_downtime: SimDuration::from_hours(2),
            }),
        }
    }

    /// Adds a black-hole window for routes starting with `route_prefix`.
    pub fn with_blackhole(
        mut self,
        route_prefix: impl Into<String>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.blackholes.push(BlackholeWindow {
            route_prefix: route_prefix.into(),
            from,
            until,
        });
        self
    }

    /// Sets the device churn behaviour.
    pub fn with_outages(mut self, outages: OutageSpec) -> Self {
        self.outages = Some(outages);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let spec = FaultSpec::none();
        assert_eq!(spec.drop_prob, 0.0);
        assert_eq!(spec.delay_prob, 0.0);
        assert_eq!(spec.duplicate_prob, 0.0);
        assert!(spec.blackholes.is_empty());
        assert!(spec.outages.is_none());
    }

    #[test]
    fn blackhole_window_covers_prefix_and_time() {
        let w = BlackholeWindow {
            route_prefix: "obs.paris".into(),
            from: SimTime::from_millis(100),
            until: SimTime::from_millis(200),
        };
        assert!(w.covers("obs.paris.noise", SimTime::from_millis(100)));
        assert!(w.covers("obs.paris.noise", SimTime::from_millis(199)));
        assert!(!w.covers("obs.paris.noise", SimTime::from_millis(200)));
        assert!(!w.covers("obs.lyon.noise", SimTime::from_millis(150)));
        assert!(!w.covers("obs.paris.noise", SimTime::from_millis(99)));
    }

    #[test]
    fn empty_prefix_covers_everything_in_window() {
        let w = BlackholeWindow {
            route_prefix: String::new(),
            from: SimTime::EPOCH,
            until: SimTime::from_millis(10),
        };
        assert!(w.covers("anything.at.all", SimTime::from_millis(5)));
    }

    #[test]
    fn builders_accumulate() {
        let spec = FaultSpec::none()
            .with_blackhole("a", SimTime::EPOCH, SimTime::from_millis(1))
            .with_blackhole("b", SimTime::EPOCH, SimTime::from_millis(2))
            .with_outages(OutageSpec {
                affected_share: 1.0,
                mean_uptime: SimDuration::from_mins(1),
                mean_downtime: SimDuration::from_mins(1),
            });
        assert_eq!(spec.blackholes.len(), 2);
        assert!(spec.outages.is_some());
    }
}
