//! In-crate property tests over store invariants.

use crate::value::compare_values;
use crate::{
    Collection, Durability, DurabilityConfig, Filter, FindOptions, SortOrder, Store, Update,
};
use proptest::prelude::*;
use serde_json::{json, Value};
use std::cmp::Ordering;
use std::path::PathBuf;

/// One mutation of the durable-replay property below.
#[derive(Debug, Clone)]
enum Op {
    Insert(String, Value),
    Update(String, i64, f64),
    Delete(String, i64),
    CreateIndex(String, String),
    DropIndex(String, String),
    Clear(String),
}

fn op() -> impl Strategy<Value = Op> {
    let coll = prop_oneof![Just("a".to_owned()), Just("b".to_owned())];
    let path = prop_oneof![Just("v".to_owned()), Just("m".to_owned())];
    prop_oneof![
        5 => (coll.clone(), -50i64..50, "[a-c]")
            .prop_map(|(c, v, m)| Op::Insert(c, json!({"v": v, "m": m}))),
        3 => (coll.clone(), -60i64..60, -10.0f64..10.0)
            .prop_map(|(c, t, d)| Op::Update(c, t, d)),
        2 => (coll.clone(), -60i64..60).prop_map(|(c, t)| Op::Delete(c, t)),
        1 => (coll.clone(), path.clone()).prop_map(|(c, p)| Op::CreateIndex(c, p)),
        1 => (coll.clone(), path).prop_map(|(c, p)| Op::DropIndex(c, p)),
        1 => coll.prop_map(Op::Clear),
    ]
}

fn apply(store: &Store, op: &Op) {
    match op {
        Op::Insert(c, doc) => {
            store.collection(c).insert_one(doc.clone()).unwrap();
        }
        Op::Update(c, threshold, delta) => {
            store
                .collection(c)
                .update_many(&Filter::lt("v", *threshold), &Update::inc("v", *delta))
                .unwrap();
        }
        Op::Delete(c, threshold) => {
            store
                .collection(c)
                .delete_many(&Filter::gt("v", *threshold))
                .unwrap();
        }
        Op::CreateIndex(c, p) => store.collection(c).create_index(p).unwrap(),
        Op::DropIndex(c, p) => store.collection(c).drop_index(p).unwrap(),
        Op::Clear(c) => store.collection(c).clear().unwrap(),
    }
}

fn prop_temp_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-docstore-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        (-1000i64..1000).prop_map(Value::from),
        (-100.0f64..100.0).prop_map(Value::from),
        "[a-z]{0,5}".prop_map(Value::from),
    ]
}

proptest! {
    #[test]
    fn compare_is_reflexive_and_antisymmetric(a in scalar(), b in scalar()) {
        prop_assert_eq!(compare_values(&a, &a), Some(Ordering::Equal));
        let ab = compare_values(&a, &b).unwrap();
        let ba = compare_values(&b, &a).unwrap();
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn compare_is_transitive(a in scalar(), b in scalar(), c in scalar()) {
        let ab = compare_values(&a, &b).unwrap();
        let bc = compare_values(&b, &c).unwrap();
        if ab != Ordering::Greater && bc != Ordering::Greater {
            prop_assert_ne!(compare_values(&a, &c).unwrap(), Ordering::Greater);
        }
    }

    #[test]
    fn sort_produces_ordered_output(values in prop::collection::vec(-1000i64..1000, 0..40)) {
        let c = Collection::new();
        for v in &values {
            c.insert_one(json!({"v": v})).unwrap();
        }
        let sorted = c
            .find_with_options(
                &Filter::True,
                &FindOptions::new().sort("v", SortOrder::Ascending),
            )
            .unwrap();
        let out: Vec<i64> = sorted.iter().map(|d| d["v"].as_i64().unwrap()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn skip_limit_partition(values in prop::collection::vec(-100i64..100, 0..30),
                            skip in 0usize..35, limit in 0usize..35) {
        let c = Collection::new();
        for v in &values {
            c.insert_one(json!({"v": v})).unwrap();
        }
        let opts = FindOptions::new().skip(skip).limit(limit);
        let page = c.find_with_options(&Filter::True, &opts).unwrap();
        let expected = values.len().saturating_sub(skip).min(limit);
        prop_assert_eq!(page.len(), expected);
    }

    #[test]
    fn delete_plus_remaining_equals_total(values in prop::collection::vec(-50i64..50, 0..40),
                                          threshold in -60i64..60) {
        let c = Collection::new();
        for v in &values {
            c.insert_one(json!({"v": v})).unwrap();
        }
        let total = c.len();
        let deleted = c.delete_many(&Filter::lt("v", threshold)).unwrap();
        prop_assert_eq!(deleted + c.len(), total);
        prop_assert_eq!(c.count(&Filter::lt("v", threshold)).unwrap(), 0);
    }

    #[test]
    fn inc_accumulates(deltas in prop::collection::vec(-100.0f64..100.0, 1..15)) {
        let c = Collection::new();
        let id = c.insert_one(json!({"acc": 0.0})).unwrap();
        for d in &deltas {
            c.update_many(&Filter::True, &Update::inc("acc", *d)).unwrap();
        }
        let doc = c.get(id).unwrap();
        let expected: f64 = deltas.iter().sum();
        prop_assert!((doc["acc"].as_f64().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn indexed_and_scan_agree_on_random_filters(
        values in prop::collection::vec(scalar(), 0..40),
        probe in scalar(),
    ) {
        let scan = Collection::new();
        let indexed = Collection::new();
        indexed.create_index("v").unwrap();
        for v in &values {
            scan.insert_one(json!({"v": v})).unwrap();
            indexed.insert_one(json!({"v": v})).unwrap();
        }
        let filter = Filter::eq("v", probe.clone());
        prop_assert_eq!(
            scan.count(&filter).unwrap(),
            indexed.count(&filter).unwrap(),
            "probe {:?}", probe
        );
    }

    #[test]
    fn planner_equals_full_scan_on_conjunctions(
        docs in prop::collection::vec(("[abc]", -50i64..50), 0..40),
        probe_m in "[abcd]",
        lo in -60i64..60,
        span in 0i64..60,
    ) {
        // The same conjunction, answered by a full scan, by each single
        // index, and by an index intersection, must return identical
        // documents in identical order.
        let scan = Collection::new();
        let eq_only = Collection::new();
        eq_only.create_index("m").unwrap();
        let both = Collection::new();
        both.create_index("m").unwrap();
        both.create_index("v").unwrap();
        for (m, v) in &docs {
            scan.insert_one(json!({"m": m, "v": v})).unwrap();
            eq_only.insert_one(json!({"m": m, "v": v})).unwrap();
            both.insert_one(json!({"m": m, "v": v})).unwrap();
        }
        let filter = Filter::and(vec![
            Filter::eq("m", probe_m.clone()),
            Filter::range("v", lo, lo + span),
        ]);
        let expected = scan.find(&filter).unwrap();
        prop_assert_eq!(&eq_only.find(&filter).unwrap(), &expected);
        prop_assert_eq!(&both.find(&filter).unwrap(), &expected);
        prop_assert_eq!(both.count(&filter).unwrap(), expected.len());
    }

    #[test]
    fn windowed_find_equals_materialized_slice(
        docs in prop::collection::vec(("[ab]", -50i64..50), 0..40),
        probe_m in "[ab]",
        skip in 0usize..45,
        limit in 0usize..45,
        sorted in any::<bool>(),
    ) {
        // skip/limit pushdown (and the sorted reference-window path) must
        // agree with slicing the fully materialized result, with and
        // without indexes.
        let c = Collection::new();
        for (m, v) in &docs {
            c.insert_one(json!({"m": m, "v": v})).unwrap();
        }
        let filter = Filter::eq("m", probe_m.clone());
        let mut opts = FindOptions::new().skip(skip).limit(limit);
        if sorted {
            opts = opts.sort("v", SortOrder::Ascending);
        }
        let full_opts = if sorted {
            FindOptions::new().sort("v", SortOrder::Ascending)
        } else {
            FindOptions::new()
        };
        let full = c.find_with_options(&filter, &full_opts).unwrap();
        let expected: Vec<Value> =
            full.iter().skip(skip).take(limit).cloned().collect();
        prop_assert_eq!(&c.find_with_options(&filter, &opts).unwrap(), &expected);
        c.create_index("m").unwrap();
        prop_assert_eq!(&c.find_with_options(&filter, &opts).unwrap(), &expected);
    }

    /// The durable-replay property: any op sequence applied to a durable
    /// store and to a plain in-memory store leaves both with identical
    /// contents — and a store recovered from the log alone exports the
    /// very same bytes, with the same index definitions.
    #[test]
    fn durable_replay_equals_in_memory(
        ops in prop::collection::vec(op(), 0..30),
        snapshot_every in prop_oneof![Just(0u64), Just(5u64)],
    ) {
        let dir = prop_temp_dir();
        let config = DurabilityConfig::new(&dir)
            .wal(mps_wal::WalConfig::default().telemetry(false))
            .snapshot_every(snapshot_every);
        let durable = Store::open(Durability::Durable(config.clone())).unwrap();
        let memory = Store::new();
        for op in &ops {
            apply(&durable, op);
            apply(&memory, op);
        }
        prop_assert_eq!(durable.export_json(), memory.export_json());
        drop(durable);

        let recovered = Store::open(Durability::Durable(config)).unwrap();
        prop_assert_eq!(recovered.export_json(), memory.export_json());
        for name in memory.collection_names() {
            for path in ["v", "m"] {
                prop_assert_eq!(
                    recovered.collection(&name).has_index(path),
                    memory.collection(&name).has_index(path),
                    "index {} on {}", path, name
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
