//! Store error types.

use std::error::Error;
use std::fmt;

/// Errors returned by the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A document to insert was not a JSON object.
    NotAnObject,
    /// A filter document was malformed; carries a description.
    BadFilter(String),
    /// An update document was malformed; carries a description.
    BadUpdate(String),
    /// An aggregation stage was malformed; carries a description.
    BadPipeline(String),
    /// The named collection does not exist (only returned by operations
    /// that refuse to auto-create, e.g. `drop`).
    CollectionNotFound(String),
    /// A sort/index key had a type that cannot be ordered (object/array).
    Unorderable(String),
    /// A durable store could not log or replay a mutation; carries a
    /// description. The in-memory state may be ahead of the log — the
    /// instance should be discarded and reopened.
    Durability(String),
    /// A remote store could not be reached, or the wire exchange failed
    /// (connection refused, protocol violation, shed by backpressure).
    /// The operation may or may not have taken effect — callers treat it
    /// like any network error against a real database.
    Transport(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotAnObject => write!(f, "document is not a JSON object"),
            StoreError::BadFilter(msg) => write!(f, "bad filter: {msg}"),
            StoreError::BadUpdate(msg) => write!(f, "bad update: {msg}"),
            StoreError::BadPipeline(msg) => write!(f, "bad aggregation pipeline: {msg}"),
            StoreError::CollectionNotFound(name) => write!(f, "collection not found: {name}"),
            StoreError::Unorderable(path) => {
                write!(f, "value at {path} has no defined ordering")
            }
            StoreError::Durability(msg) => write!(f, "durability failure: {msg}"),
            StoreError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::NotAnObject.to_string().contains("object"));
        assert!(StoreError::BadFilter("x".into()).to_string().contains('x'));
        assert!(StoreError::BadUpdate("y".into()).to_string().contains('y'));
        assert!(StoreError::BadPipeline("z".into())
            .to_string()
            .contains('z'));
        assert!(StoreError::CollectionNotFound("c".into())
            .to_string()
            .contains('c'));
        assert!(StoreError::Unorderable("a.b".into())
            .to_string()
            .contains("a.b"));
        assert!(StoreError::Durability("disk gone".into())
            .to_string()
            .contains("disk gone"));
        assert!(StoreError::Transport("connection refused".into())
            .to_string()
            .contains("connection refused"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
