//! Mongo-style filter documents.

use crate::value::{compare_values, get_path};
use crate::StoreError;
use serde_json::Value;
use std::cmp::Ordering;

/// Inclusive/exclusive range bound used by the query planner:
/// `(value, inclusive)`.
pub(crate) type RangeBound<'a> = (&'a Value, bool);
/// Planner view of a range predicate: `(path, lower, upper)`.
pub(crate) type RangePredicate<'a> = (&'a str, Option<RangeBound<'a>>, Option<RangeBound<'a>>);

/// One predicate of a filter that a secondary index could answer,
/// extracted by [`Filter::indexable_predicates`] for the query planner.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum IndexablePredicate<'a> {
    /// Equality against a non-null scalar (`eq null` also matches missing
    /// fields, which no index can enumerate).
    Eq {
        /// Dotted document path.
        path: &'a str,
        /// Matched value.
        value: &'a Value,
    },
    /// A (half-)bounded range on one path.
    Range(RangePredicate<'a>),
}

/// A comparison operator on a document path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[doc(hidden)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Gt,
    Gte,
    Lt,
    Lte,
}

/// A parsed query filter.
///
/// Filters are usually written as Mongo-style JSON documents and parsed
/// with [`Filter::parse`]; a typed builder API ([`Filter::eq`],
/// [`Filter::range`], [`Filter::and`], …) is provided for programmatic
/// construction.
///
/// Supported operators: implicit equality, `$eq`, `$ne`, `$gt`, `$gte`,
/// `$lt`, `$lte`, `$in`, `$nin`, `$exists`, `$contains` (substring test on
/// strings), and the combinators `$and`, `$or`, `$not`.
///
/// Semantics follow MongoDB where GoFlow depends on them: an equality
/// against `null` matches missing fields, ordered comparisons never match
/// missing fields, and `$ne` is the negation of equality.
///
/// # Examples
///
/// ```
/// use mps_docstore::Filter;
/// use serde_json::json;
///
/// let filter = Filter::parse(&json!({
///     "model": "LGE NEXUS 5",
///     "location.accuracy": {"$lte": 50},
/// }))?;
/// assert!(filter.matches(&json!({
///     "model": "LGE NEXUS 5",
///     "location": {"accuracy": 35.0},
/// })));
/// # Ok::<(), mps_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document (the empty filter `{}`).
    True,
    /// All sub-filters must match.
    And(Vec<Filter>),
    /// At least one sub-filter must match.
    Or(Vec<Filter>),
    /// The sub-filter must not match.
    Not(Box<Filter>),
    /// Comparison of the value at `path` against a constant.
    #[doc(hidden)]
    Cmp {
        /// Dotted document path.
        path: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Value,
    },
    /// The value at `path` equals one of `values`.
    #[doc(hidden)]
    In {
        /// Dotted document path.
        path: String,
        /// Accepted values.
        values: Vec<Value>,
        /// True for `$nin` (negated membership).
        negated: bool,
    },
    /// The path is present (or absent, when `expected` is false).
    #[doc(hidden)]
    Exists {
        /// Dotted document path.
        path: String,
        /// Expected presence.
        expected: bool,
    },
    /// The string at `path` contains `needle` as a substring.
    #[doc(hidden)]
    Contains {
        /// Dotted document path.
        path: String,
        /// Substring to search for.
        needle: String,
    },
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match compare_values(a, b) {
        Some(ord) => ord == Ordering::Equal,
        None => a == b, // deep equality for arrays/objects
    }
}

impl Filter {
    // ----- builders --------------------------------------------------------

    /// Equality on a path.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Inequality on a path.
    pub fn ne(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }

    /// Strictly-greater comparison on a path.
    pub fn gt(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// Greater-or-equal comparison on a path.
    pub fn gte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Gte,
            value: value.into(),
        }
    }

    /// Strictly-less comparison on a path.
    pub fn lt(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// Less-or-equal comparison on a path.
    pub fn lte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Lte,
            value: value.into(),
        }
    }

    /// Inclusive range `lo <= path <= hi`.
    pub fn range(path: impl Into<String>, lo: impl Into<Value>, hi: impl Into<Value>) -> Filter {
        let path = path.into();
        Filter::And(vec![Filter::gte(path.clone(), lo), Filter::lte(path, hi)])
    }

    /// Membership test on a path.
    pub fn is_in(path: impl Into<String>, values: Vec<Value>) -> Filter {
        Filter::In {
            path: path.into(),
            values,
            negated: false,
        }
    }

    /// Presence test on a path.
    pub fn exists(path: impl Into<String>, expected: bool) -> Filter {
        Filter::Exists {
            path: path.into(),
            expected,
        }
    }

    /// Conjunction of filters.
    pub fn and(filters: Vec<Filter>) -> Filter {
        Filter::And(filters)
    }

    /// Disjunction of filters.
    pub fn or(filters: Vec<Filter>) -> Filter {
        Filter::Or(filters)
    }

    // ----- parsing ----------------------------------------------------------

    /// Parses a Mongo-style filter document.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadFilter`] when the document is not an
    /// object, uses an unknown operator, or gives an operator a malformed
    /// argument.
    pub fn parse(doc: &Value) -> Result<Filter, StoreError> {
        let map = doc
            .as_object()
            .ok_or_else(|| StoreError::BadFilter("filter must be an object".into()))?;
        if map.is_empty() {
            return Ok(Filter::True);
        }
        let mut clauses = Vec::with_capacity(map.len());
        for (key, value) in map {
            if let Some(op) = key.strip_prefix('$') {
                clauses.push(Self::parse_logical(op, value)?);
            } else {
                clauses.push(Self::parse_path_clause(key, value)?);
            }
        }
        Ok(match clauses.pop() {
            Some(single) if clauses.is_empty() => single,
            Some(last) => {
                clauses.push(last);
                Filter::And(clauses)
            }
            None => Filter::True,
        })
    }

    fn parse_logical(op: &str, value: &Value) -> Result<Filter, StoreError> {
        match op {
            "and" | "or" => {
                let items = value
                    .as_array()
                    .ok_or_else(|| StoreError::BadFilter(format!("${op} expects an array")))?;
                let parsed: Result<Vec<Filter>, StoreError> =
                    items.iter().map(Self::parse).collect();
                let parsed = parsed?;
                Ok(if op == "and" {
                    Filter::And(parsed)
                } else {
                    Filter::Or(parsed)
                })
            }
            "not" => Ok(Filter::Not(Box::new(Self::parse(value)?))),
            other => Err(StoreError::BadFilter(format!("unknown operator ${other}"))),
        }
    }

    fn parse_path_clause(path: &str, value: &Value) -> Result<Filter, StoreError> {
        let Some(obj) = value.as_object() else {
            return Ok(Filter::eq(path, value.clone()));
        };
        // An object that contains no $-operators is an implicit deep
        // equality against that object.
        if !obj.keys().any(|k| k.starts_with('$')) {
            return Ok(Filter::eq(path, value.clone()));
        }
        let mut clauses = Vec::with_capacity(obj.len());
        for (op, arg) in obj {
            let filter = match op.as_str() {
                "$eq" => Filter::eq(path, arg.clone()),
                "$ne" => Filter::ne(path, arg.clone()),
                "$gt" => Filter::gt(path, arg.clone()),
                "$gte" => Filter::gte(path, arg.clone()),
                "$lt" => Filter::lt(path, arg.clone()),
                "$lte" => Filter::lte(path, arg.clone()),
                "$in" | "$nin" => {
                    let values = arg
                        .as_array()
                        .ok_or_else(|| StoreError::BadFilter(format!("{op} expects an array")))?
                        .clone();
                    Filter::In {
                        path: path.to_owned(),
                        values,
                        negated: op == "$nin",
                    }
                }
                "$exists" => {
                    let expected = arg
                        .as_bool()
                        .ok_or_else(|| StoreError::BadFilter("$exists expects a boolean".into()))?;
                    Filter::exists(path, expected)
                }
                "$contains" => {
                    let needle = arg
                        .as_str()
                        .ok_or_else(|| StoreError::BadFilter("$contains expects a string".into()))?
                        .to_owned();
                    Filter::Contains {
                        path: path.to_owned(),
                        needle,
                    }
                }
                other => {
                    return Err(StoreError::BadFilter(format!(
                        "unknown operator {other} on path {path}"
                    )))
                }
            };
            clauses.push(filter);
        }
        Ok(match clauses.pop() {
            Some(single) if clauses.is_empty() => single,
            Some(last) => {
                clauses.push(last);
                Filter::And(clauses)
            }
            None => Filter::True,
        })
    }

    // ----- encoding ---------------------------------------------------------

    /// Encodes this filter back into a Mongo-style filter document, the
    /// inverse of [`Filter::parse`]: `Filter::parse(&f.to_doc())` always
    /// succeeds and yields a filter that matches exactly the same
    /// documents. Remote transports use this to carry typed filters over
    /// the wire without a bespoke codec.
    ///
    /// The encoding is canonical rather than source-preserving — e.g. a
    /// filter built with [`Filter::range`] encodes as an `$and` of two
    /// comparison clauses.
    pub fn to_doc(&self) -> Value {
        use serde_json::{json, Map};
        match self {
            Filter::True => json!({}),
            Filter::And(filters) => {
                json!({"$and": filters.iter().map(Filter::to_doc).collect::<Vec<_>>()})
            }
            Filter::Or(filters) => {
                json!({"$or": filters.iter().map(Filter::to_doc).collect::<Vec<_>>()})
            }
            Filter::Not(inner) => json!({"$not": inner.to_doc()}),
            Filter::Cmp { path, op, value } => {
                let op = match op {
                    CmpOp::Eq => "$eq",
                    CmpOp::Ne => "$ne",
                    CmpOp::Gt => "$gt",
                    CmpOp::Gte => "$gte",
                    CmpOp::Lt => "$lt",
                    CmpOp::Lte => "$lte",
                };
                let mut doc = Map::new();
                doc.insert(path.clone(), json!({ op: value.clone() }));
                Value::Object(doc)
            }
            Filter::In {
                path,
                values,
                negated,
            } => {
                let op = if *negated { "$nin" } else { "$in" };
                let mut doc = Map::new();
                doc.insert(path.clone(), json!({ op: values.clone() }));
                Value::Object(doc)
            }
            Filter::Exists { path, expected } => {
                let mut doc = Map::new();
                doc.insert(path.clone(), json!({"$exists": expected}));
                Value::Object(doc)
            }
            Filter::Contains { path, needle } => {
                let mut doc = Map::new();
                doc.insert(path.clone(), json!({"$contains": needle}));
                Value::Object(doc)
            }
        }
    }

    // ----- evaluation -------------------------------------------------------

    /// Whether this filter matches `doc`.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::True => true,
            Filter::And(filters) => filters.iter().all(|f| f.matches(doc)),
            Filter::Or(filters) => filters.iter().any(|f| f.matches(doc)),
            Filter::Not(inner) => !inner.matches(doc),
            Filter::Cmp { path, op, value } => {
                let found = get_path(doc, path);
                match op {
                    CmpOp::Eq => match found {
                        Some(v) => values_equal(v, value),
                        // Equality with null matches a missing field.
                        None => value.is_null(),
                    },
                    CmpOp::Ne => match found {
                        Some(v) => !values_equal(v, value),
                        None => !value.is_null(),
                    },
                    CmpOp::Gt | CmpOp::Gte | CmpOp::Lt | CmpOp::Lte => {
                        // Ordered comparisons only match same-type scalars
                        // (Mongo semantics: cross-type never matches a
                        // range predicate).
                        let Some(v) = found else { return false };
                        match compare_values(v, value) {
                            Some(ord)
                                if std::mem::discriminant(v) == std::mem::discriminant(value) =>
                            {
                                match op {
                                    CmpOp::Gt => ord == Ordering::Greater,
                                    CmpOp::Gte => ord != Ordering::Less,
                                    CmpOp::Lt => ord == Ordering::Less,
                                    CmpOp::Lte => ord != Ordering::Greater,
                                    // Eq/Ne are handled by the outer arms.
                                    CmpOp::Eq | CmpOp::Ne => false,
                                }
                            }
                            _ => false,
                        }
                    }
                }
            }
            Filter::In {
                path,
                values,
                negated,
            } => {
                let hit = match get_path(doc, path) {
                    Some(v) => values.iter().any(|candidate| values_equal(v, candidate)),
                    None => values.iter().any(Value::is_null),
                };
                hit != *negated
            }
            Filter::Exists { path, expected } => get_path(doc, path).is_some() == *expected,
            Filter::Contains { path, needle } => get_path(doc, path)
                .and_then(Value::as_str)
                .is_some_and(|s| s.contains(needle.as_str())),
        }
    }

    /// Every predicate of this filter that a secondary index could
    /// answer: each non-null equality, plus one merged range per path,
    /// looking through conjunctions at any depth (`Filter::parse` nests
    /// multi-operator path objects as an inner `And`).
    ///
    /// Bounds repeated on the same side of the same path keep the last
    /// occurrence, which can only *widen* the candidate range — safe,
    /// because candidates are re-checked against the full filter.
    pub(crate) fn indexable_predicates(&self) -> Vec<IndexablePredicate<'_>> {
        fn range_of(f: &Filter) -> Option<RangePredicate<'_>> {
            match f {
                Filter::Cmp { path, op, value } => match op {
                    CmpOp::Gt => Some((path, Some((value, false)), None)),
                    CmpOp::Gte => Some((path, Some((value, true)), None)),
                    CmpOp::Lt => Some((path, None, Some((value, false)))),
                    CmpOp::Lte => Some((path, None, Some((value, true)))),
                    _ => None,
                },
                _ => None,
            }
        }
        fn collect<'a>(
            clauses: &'a [Filter],
            eqs: &mut Vec<IndexablePredicate<'a>>,
            ranges: &mut Vec<RangePredicate<'a>>,
        ) {
            for clause in clauses {
                match clause {
                    Filter::And(inner) => collect(inner, eqs, ranges),
                    Filter::Cmp {
                        path,
                        op: CmpOp::Eq,
                        value,
                    } if !value.is_null() => {
                        eqs.push(IndexablePredicate::Eq { path, value });
                    }
                    _ => {
                        if let Some((path, lo, hi)) = range_of(clause) {
                            match ranges.iter_mut().find(|(p, _, _)| *p == path) {
                                Some((_, mlo, mhi)) => {
                                    if lo.is_some() {
                                        *mlo = lo;
                                    }
                                    if hi.is_some() {
                                        *mhi = hi;
                                    }
                                }
                                None => ranges.push((path, lo, hi)),
                            }
                        }
                    }
                }
            }
        }
        let mut predicates: Vec<IndexablePredicate<'_>> = Vec::new();
        let mut ranges: Vec<RangePredicate<'_>> = Vec::new();
        collect(std::slice::from_ref(self), &mut predicates, &mut ranges);
        predicates.extend(ranges.into_iter().map(IndexablePredicate::Range));
        predicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc() -> Value {
        json!({
            "model": "SONY D5803",
            "spl": 61.5,
            "location": {"provider": "gps", "accuracy": 12.0},
            "tags": ["noise", "paris"],
            "shared": true,
        })
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::parse(&json!({})).unwrap();
        assert_eq!(f, Filter::True);
        assert!(f.matches(&doc()));
    }

    #[test]
    fn implicit_equality() {
        let f = Filter::parse(&json!({"model": "SONY D5803"})).unwrap();
        assert!(f.matches(&doc()));
        let f = Filter::parse(&json!({"model": "OTHER"})).unwrap();
        assert!(!f.matches(&doc()));
    }

    #[test]
    fn nested_path_equality() {
        let f = Filter::parse(&json!({"location.provider": "gps"})).unwrap();
        assert!(f.matches(&doc()));
    }

    #[test]
    fn numeric_equality_is_value_based() {
        let f = Filter::parse(&json!({"spl": 61.5})).unwrap();
        assert!(f.matches(&doc()));
        // Integer vs float representing the same number must be equal.
        let f = Filter::parse(&json!({"n": 1})).unwrap();
        assert!(f.matches(&json!({"n": 1.0})));
    }

    #[test]
    fn range_operators() {
        let d = doc();
        assert!(Filter::parse(&json!({"spl": {"$gt": 60}}))
            .unwrap()
            .matches(&d));
        assert!(Filter::parse(&json!({"spl": {"$gte": 61.5}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"spl": {"$gt": 61.5}}))
            .unwrap()
            .matches(&d));
        assert!(Filter::parse(&json!({"spl": {"$lt": 62}}))
            .unwrap()
            .matches(&d));
        assert!(Filter::parse(&json!({"spl": {"$lte": 61.5}}))
            .unwrap()
            .matches(&d));
        assert!(Filter::parse(&json!({"spl": {"$gt": 60, "$lt": 62}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"spl": {"$gt": 60, "$lt": 61}}))
            .unwrap()
            .matches(&d));
    }

    #[test]
    fn range_on_missing_or_cross_type_never_matches() {
        let d = doc();
        assert!(!Filter::parse(&json!({"missing": {"$gt": 0}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"model": {"$gt": 0}}))
            .unwrap()
            .matches(&d));
    }

    #[test]
    fn ne_semantics() {
        let d = doc();
        assert!(Filter::parse(&json!({"model": {"$ne": "X"}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"model": {"$ne": "SONY D5803"}}))
            .unwrap()
            .matches(&d));
        // Missing field is "not equal" to any non-null value.
        assert!(Filter::parse(&json!({"missing": {"$ne": 1}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"missing": {"$ne": null}}))
            .unwrap()
            .matches(&d));
    }

    #[test]
    fn null_equality_matches_missing() {
        let d = doc();
        assert!(Filter::parse(&json!({"missing": null}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"model": null})).unwrap().matches(&d));
    }

    #[test]
    fn in_and_nin() {
        let d = doc();
        let f = Filter::parse(&json!({"model": {"$in": ["A", "SONY D5803"]}})).unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({"model": {"$nin": ["A", "B"]}})).unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({"model": {"$in": ["A", "B"]}})).unwrap();
        assert!(!f.matches(&d));
        // Missing path: $in matches only if the list contains null.
        let f = Filter::parse(&json!({"missing": {"$in": [null]}})).unwrap();
        assert!(f.matches(&d));
    }

    #[test]
    fn exists() {
        let d = doc();
        assert!(Filter::parse(&json!({"location": {"$exists": true}}))
            .unwrap()
            .matches(&d));
        assert!(Filter::parse(&json!({"ghost": {"$exists": false}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"ghost": {"$exists": true}}))
            .unwrap()
            .matches(&d));
    }

    #[test]
    fn contains() {
        let d = doc();
        assert!(Filter::parse(&json!({"model": {"$contains": "SONY"}}))
            .unwrap()
            .matches(&d));
        assert!(!Filter::parse(&json!({"model": {"$contains": "HTC"}}))
            .unwrap()
            .matches(&d));
        // Non-string values never $contains.
        assert!(!Filter::parse(&json!({"spl": {"$contains": "6"}}))
            .unwrap()
            .matches(&d));
    }

    #[test]
    fn logical_combinators() {
        let d = doc();
        let f = Filter::parse(&json!({
            "$or": [
                {"model": "X"},
                {"spl": {"$gt": 60}},
            ]
        }))
        .unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({
            "$and": [{"shared": true}, {"spl": {"$lt": 60}}]
        }))
        .unwrap();
        assert!(!f.matches(&d));
        let f = Filter::parse(&json!({"$not": {"model": "X"}})).unwrap();
        assert!(f.matches(&d));
    }

    #[test]
    fn multiple_top_level_keys_are_anded() {
        let d = doc();
        let f = Filter::parse(&json!({"shared": true, "spl": {"$gt": 60}})).unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({"shared": true, "spl": {"$gt": 70}})).unwrap();
        assert!(!f.matches(&d));
    }

    #[test]
    fn deep_equality_of_objects_and_arrays() {
        let d = doc();
        let f = Filter::parse(&json!({"tags": ["noise", "paris"]})).unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({"location": {"provider": "gps", "accuracy": 12.0}})).unwrap();
        assert!(f.matches(&d));
        let f = Filter::parse(&json!({"tags": ["paris", "noise"]})).unwrap();
        assert!(!f.matches(&d), "array equality is ordered");
    }

    #[test]
    fn parse_errors() {
        assert!(Filter::parse(&json!("not an object")).is_err());
        assert!(Filter::parse(&json!({"$bogus": []})).is_err());
        assert!(Filter::parse(&json!({"a": {"$bogus": 1}})).is_err());
        assert!(Filter::parse(&json!({"$and": "not array"})).is_err());
        assert!(Filter::parse(&json!({"a": {"$in": 5}})).is_err());
        assert!(Filter::parse(&json!({"a": {"$exists": "yes"}})).is_err());
        assert!(Filter::parse(&json!({"a": {"$contains": 5}})).is_err());
    }

    #[test]
    fn builder_equivalence() {
        let parsed = Filter::parse(&json!({"spl": {"$gte": 10, "$lte": 20}})).unwrap();
        let built = Filter::range("spl", 10, 20);
        let probe = json!({"spl": 15});
        assert_eq!(parsed.matches(&probe), built.matches(&probe));
        let probe = json!({"spl": 25});
        assert_eq!(parsed.matches(&probe), built.matches(&probe));
    }

    #[test]
    fn indexable_eq_extraction() {
        let f = Filter::parse(&json!({"model": "X", "spl": {"$gt": 3}})).unwrap();
        assert!(f.indexable_predicates().contains(&IndexablePredicate::Eq {
            path: "model",
            value: &json!("X"),
        }));
    }

    #[test]
    fn indexable_range_extraction() {
        let f = Filter::parse(&json!({"spl": {"$gte": 10, "$lt": 20}})).unwrap();
        let preds = f.indexable_predicates();
        assert_eq!(
            preds,
            vec![IndexablePredicate::Range((
                "spl",
                Some((&json!(10), true)),
                Some((&json!(20), false)),
            ))]
        );
    }

    #[test]
    fn indexable_predicates_collects_all_clauses() {
        let f =
            Filter::parse(&json!({"model": "X", "spl": {"$gte": 10, "$lt": 20}, "city": "paris"}))
                .unwrap();
        let preds = f.indexable_predicates();
        assert_eq!(preds.len(), 3);
        assert!(preds.contains(&IndexablePredicate::Eq {
            path: "model",
            value: &json!("X"),
        }));
        assert!(preds.contains(&IndexablePredicate::Eq {
            path: "city",
            value: &json!("paris"),
        }));
        assert!(preds.contains(&IndexablePredicate::Range((
            "spl",
            Some((&json!(10), true)),
            Some((&json!(20), false)),
        ))));
    }

    #[test]
    fn indexable_predicates_skips_null_eq_and_or() {
        // `eq null` also matches missing fields — never indexable.
        let f = Filter::parse(&json!({"loc": null})).unwrap();
        assert!(f.indexable_predicates().is_empty());
        // Disjunctions cannot narrow to one candidate set.
        let f = Filter::parse(&json!({"$or": [{"a": 1}, {"b": 2}]})).unwrap();
        assert!(f.indexable_predicates().is_empty());
    }

    #[test]
    fn indexable_predicates_merges_ranges_per_path() {
        let f = Filter::parse(&json!({"spl": {"$gt": 5}, "acc": {"$lte": 30}})).unwrap();
        let preds = f.indexable_predicates();
        assert_eq!(preds.len(), 2, "one merged range per path");
    }

    #[test]
    fn to_doc_round_trips_through_parse() {
        let docs = [
            json!({}),
            json!({"$and": [
                {"spl": {"$gte": 40}},
                {"spl": {"$lt": 80.5}},
                {"location.provider": {"$eq": "gps"}},
            ]}),
            json!({"$or": [
                {"model": {"$in": ["SONY D5803", "LG G3"]}},
                {"$not": {"shared": {"$exists": true}}},
            ]}),
            json!({"tags": {"$contains": "paris"}}),
            json!({"spl": {"$nin": [1, 2]}}),
        ];
        for doc in docs {
            let filter = Filter::parse(&doc).unwrap();
            let encoded = filter.to_doc();
            let reparsed = Filter::parse(&encoded).unwrap();
            // The canonical encoding is a fixed point: encoding the
            // reparsed filter reproduces it byte for byte.
            assert_eq!(reparsed.to_doc(), encoded, "for {doc}");
        }
    }

    #[test]
    fn to_doc_agrees_with_evaluation() {
        let filter = Filter::parse(&json!({
            "spl": {"$gt": 50},
            "location.provider": "gps",
        }))
        .unwrap();
        let reparsed = Filter::parse(&filter.to_doc()).unwrap();
        assert!(reparsed.matches(&doc()));
        assert!(!reparsed.matches(&json!({"spl": 10})));
    }
}
