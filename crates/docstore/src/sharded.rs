//! [`ShardedStore`]: N independent [`Store`] shards behind one
//! [`DocstoreTransport`].
//!
//! Where the sharded broker partitions *messages* by routing key, the
//! sharded store partitions *collections* by name: a collection lives
//! wholly on the shard its FNV-1a name hash selects, so every query —
//! filters, indexes, aggregation — runs exactly the code a single store
//! runs, on the owning shard. GoFlow's per-application collections
//! (`obs-<app>`, `quarantine-<app>`) then spread across shards, and two
//! applications ingesting concurrently contend on different store locks.
//!
//! Answers are identical to a single store's by construction: a query
//! never spans shards, and store-level reads aggregate (document totals
//! sum, name listings merge sorted). The hash is the same stable FNV-1a
//! the broker uses (see `mps_broker::shard_for_key` and
//! `docs/SHARDING.md`), so operators can predict placement from the
//! name alone.

use crate::durability::{Durability, DurabilityConfig};
use crate::error::StoreError;
use crate::store::Store;
use crate::transport::{CollectionHandle, DocstoreTransport};
use std::sync::Arc;

/// FNV-1a over the collection name — the broker's key-partitioning hash
/// (`mps_broker::shard_for_key`), duplicated here because the two crates
/// are deliberately independent; lock-step is pinned by tests.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard owning collection `name` among `shards` partitions.
pub fn shard_for_collection(name: &str, shards: usize) -> usize {
    (fnv1a(name.as_bytes()) % shards.max(1) as u64) as usize
}

/// N independent [`Store`] shards presenting as one document store. See
/// the [module docs](self) for the partitioning scheme.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<Store>>,
}

impl ShardedStore {
    /// An in-memory sharded store with `shards` partitions (clamped to
    /// at least 1; `new(1)` behaves exactly like a single [`Store`]).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Arc::new(Store::new())).collect(),
        }
    }

    /// Opens a durable sharded store: each shard write-ahead-logs into
    /// its own `shard-<i>` subdirectory of `config.dir`, so one shard's
    /// group commit never serialises against another's.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Durability`] if any shard's log cannot be
    /// opened or replayed.
    pub fn open_durable(shards: usize, config: DurabilityConfig) -> Result<Self, StoreError> {
        let shards = shards.max(1);
        let mut built = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut shard_config = config.clone();
            shard_config.dir = config.dir.join(format!("shard-{i}"));
            built.push(Arc::new(Store::open(Durability::Durable(shard_config))?));
        }
        Ok(Self { shards: built })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying shard stores, in shard order — operator surface
    /// for checkpointing and per-shard inspection.
    pub fn shards(&self) -> &[Arc<Store>] {
        &self.shards
    }

    /// The shard index owning collection `name`.
    pub fn shard_of(&self, name: &str) -> usize {
        shard_for_collection(name, self.shards.len())
    }

    /// Checkpoints every durable shard. See [`Store::checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Durability`] from the first shard that
    /// fails.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    fn shard_for(&self, name: &str) -> &Arc<Store> {
        &self.shards[self.shard_of(name)]
    }
}

impl DocstoreTransport for ShardedStore {
    fn collection(&self, name: &str) -> CollectionHandle {
        DocstoreTransport::collection(&**self.shard_for(name), name)
    }

    fn has_collection(&self, name: &str) -> bool {
        self.shard_for(name).has_collection(name)
    }

    fn collection_names(&self) -> Vec<String> {
        // A name lives on exactly one shard, so concatenating the
        // per-shard (sorted) listings and re-sorting merges without
        // duplicates.
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| shard.collection_names())
            .collect();
        names.sort();
        names
    }

    fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        self.shard_for(name).drop_collection(name)
    }

    fn total_documents(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.total_documents())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::{FindOptions, SortOrder};
    use crate::filter::Filter;
    use serde_json::json;

    #[test]
    fn shard_for_collection_matches_broker_hash() {
        // Pin the FNV-1a constants: the broker and the store must place
        // by the same function forever (operators predict placement).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        for shards in 1..=8 {
            for name in ["obs-soundcity", "quarantine-soundcity", ""] {
                assert!(shard_for_collection(name, shards) < shards);
            }
        }
    }

    #[test]
    fn collections_partition_and_aggregate() {
        let sharded = ShardedStore::new(4);
        let names: Vec<String> = (0..12).map(|i| format!("obs-app{i}")).collect();
        for (i, name) in names.iter().enumerate() {
            sharded
                .collection(name)
                .insert_one(json!({"n": i}))
                .unwrap();
        }
        assert_eq!(sharded.total_documents(), 12);
        let mut expected = names.clone();
        expected.sort();
        assert_eq!(sharded.collection_names(), expected);
        // Each collection lives wholly on its owning shard.
        for name in &names {
            let owner = sharded.shard_of(name);
            for (idx, shard) in sharded.shards().iter().enumerate() {
                assert_eq!(shard.has_collection(name), idx == owner, "{name}");
            }
        }
        sharded.drop_collection(&names[0]).unwrap();
        assert!(!sharded.has_collection(&names[0]));
        assert_eq!(sharded.total_documents(), 11);
    }

    /// The equivalence contract: every query answers exactly as a single
    /// store would, because a query never spans shards.
    #[test]
    fn sharded_store_answers_queries_identically() {
        let single = Store::new();
        let sharded = ShardedStore::new(3);
        for i in 0..30 {
            let doc = json!({"n": i, "city": if i % 2 == 0 { "paris" } else { "lyon" }});
            single
                .collection(&format!("obs-app{}", i % 5))
                .insert_one(doc.clone())
                .unwrap();
            sharded
                .collection(&format!("obs-app{}", i % 5))
                .insert_one(doc)
                .unwrap();
        }
        for i in 0..5 {
            let name = format!("obs-app{i}");
            let a = DocstoreTransport::collection(&single, &name);
            let b = sharded.collection(&name);
            let filter = Filter::eq("city", "paris");
            assert_eq!(a.count(&filter).unwrap(), b.count(&filter).unwrap());
            let options = FindOptions::new().sort("n", SortOrder::Descending).limit(3);
            assert_eq!(
                a.find_with_options(&filter, &options).unwrap(),
                b.find_with_options(&filter, &options).unwrap()
            );
            assert_eq!(
                a.distinct("city", &Filter::True),
                b.distinct("city", &Filter::True)
            );
        }
        assert_eq!(single.total_documents(), sharded.total_documents());
    }

    #[test]
    fn durable_shards_recover_collections() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-sharded-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let config =
            DurabilityConfig::new(&dir).wal(mps_wal::WalConfig::default().telemetry(false));
        let sharded = ShardedStore::open_durable(3, config.clone()).unwrap();
        for i in 0..9 {
            sharded
                .collection(&format!("obs-app{i}"))
                .insert_one(json!({"n": i}))
                .unwrap();
        }
        drop(sharded);

        let sharded = ShardedStore::open_durable(3, config).unwrap();
        assert_eq!(sharded.total_documents(), 9);
        for i in 0..9 {
            let c = sharded.collection(&format!("obs-app{i}"));
            assert_eq!(c.len(), 1);
            assert_eq!(c.all()[0]["n"], json!(i));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
