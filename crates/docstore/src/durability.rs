//! Durable stores: write-ahead logging, recovery, snapshots.
//!
//! A store opened with [`Durability::Durable`] logs every mutation as a
//! JSON delta to an [`mps_wal::Wal`] before the call returns: inserts
//! and updates carry the full resulting document, deletes carry the id
//! list, index create/drop and collection drop/clear carry their names.
//! Batched operations (`insert_many`, `update_many`) append all their
//! deltas with **one** group-committed fsync.
//!
//! [`Store::open`] replays the newest snapshot plus the log tail and
//! rebuilds secondary indexes from the recovered documents, reproducing
//! identical collection contents, `_id` assignment and index
//! definitions. Snapshots are taken automatically every
//! [`DurabilityConfig::snapshot_every`] logged records (and manually
//! via [`Store::checkpoint`]); the WAL then compacts covered segments.
//!
//! **Limits.** The in-memory deterministic-sim path
//! ([`Durability::InMemory`], the default constructors) is untouched by
//! all of this. A durability failure mid-operation (disk error, crash
//! kill) can leave the in-memory state *ahead* of the log — callers
//! must treat the instance as dead and reopen, which is exactly what a
//! crashed process does. Empty collections that were never written to
//! are not recreated by recovery.

use crate::collection::Collection;
use crate::telemetry::telemetry;
use crate::update::Update;
use crate::value::DocId;
use crate::Filter;
use crate::{Store, StoreError};
use mps_telemetry::SpanTimer;
use mps_wal::{Recovered, Wal, WalConfig};
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard, PoisonError, Weak};

/// How (and whether) a [`Store`] persists its mutations.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// No persistence: the fast, deterministic, in-memory store every
    /// simulation run uses.
    #[default]
    InMemory,
    /// Write-ahead logged to a directory; see the module docs.
    Durable(DurabilityConfig),
}

/// Configuration for a durable store.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the store's WAL segments and snapshots.
    pub dir: PathBuf,
    /// The underlying log's tuning (fsync policy, segment size,
    /// telemetry, recovery span, crash-kill switch).
    pub wal: WalConfig,
    /// Take a snapshot (and compact) every this many logged records;
    /// `0` disables automatic snapshots ([`Store::checkpoint`] still
    /// works).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability in `dir` with default WAL tuning and a snapshot every
    /// 4096 logged records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            wal: WalConfig::default(),
            snapshot_every: 4096,
        }
    }

    /// Replaces the WAL tuning.
    pub fn wal(mut self, wal: WalConfig) -> Self {
        self.wal = wal;
        self
    }

    /// Sets the automatic snapshot cadence (`0` = manual only).
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records;
        self
    }
}

type CollectionMap = Arc<parking_lot::Mutex<BTreeMap<String, Collection>>>;

/// Store-wide durable state shared by every collection handle.
#[derive(Debug)]
pub(crate) struct DurableShared {
    wal: StdMutex<Wal>,
    snapshot_every: u64,
    appended: AtomicU64,
    collections: Weak<parking_lot::Mutex<BTreeMap<String, Collection>>>,
}

/// A collection handle's link to its store's durable state.
#[derive(Debug)]
pub(crate) struct DurableCtx {
    pub(crate) name: String,
    pub(crate) shared: Arc<DurableShared>,
}

fn wal_err(e: mps_wal::WalError) -> StoreError {
    StoreError::Durability(e.to_string())
}

fn corrupt(why: impl std::fmt::Display) -> StoreError {
    StoreError::Durability(format!("log replay failed: {why}"))
}

impl DurableShared {
    fn lock_wal(&self) -> MutexGuard<'_, Wal> {
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `deltas` as one group-committed batch.
    fn append(&self, wal: &mut Wal, deltas: &[Value]) -> Result<(), StoreError> {
        if deltas.is_empty() {
            return Ok(());
        }
        let mut payloads = Vec::with_capacity(deltas.len());
        for delta in deltas {
            payloads.push(serde_json::to_vec(delta).map_err(corrupt)?);
        }
        wal.append_batch(&payloads).map_err(wal_err)?;
        self.appended
            .fetch_add(payloads.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Takes a snapshot when the cadence says so; snapshot failures are
    /// deliberately swallowed (the log itself is still intact, and a
    /// crash-killed instance fails its next mutation anyway).
    fn maybe_snapshot(&self) {
        if self.snapshot_every == 0 || self.appended.load(Ordering::Relaxed) < self.snapshot_every {
            return;
        }
        self.appended.store(0, Ordering::Relaxed);
        let _ = self.snapshot_now();
    }

    /// Snapshots the full store state and compacts covered segments.
    pub(crate) fn snapshot_now(&self) -> Result<u64, StoreError> {
        let Some(map) = self.collections.upgrade() else {
            return Ok(0);
        };
        let mut wal = self.lock_wal();
        let state = serde_json::to_vec(&export_value(&map)).map_err(corrupt)?;
        wal.snapshot(&state).map_err(wal_err)
    }
}

/// The full-store state as a canonical JSON value: collections sorted
/// by name, documents in `_id` order, index paths sorted — identical
/// state always serialises to identical bytes.
fn export_value(map: &CollectionMap) -> Value {
    let mut collections = serde_json::Map::new();
    for (name, collection) in map.lock().iter() {
        let inner = collection.inner.lock();
        let docs: Vec<Value> = inner.docs.values().cloned().collect();
        let indexes: Vec<String> = inner.indexes.keys().cloned().collect();
        collections.insert(
            name.clone(),
            json!({
                "next_id": inner.next_id,
                "indexes": indexes,
                "docs": docs,
            }),
        );
    }
    Value::Object({
        let mut root = serde_json::Map::new();
        root.insert("collections".to_owned(), Value::Object(collections));
        root
    })
}

/// Gets (or creates, with the durable context attached) a collection
/// during replay and normal operation.
fn get_or_create(map: &CollectionMap, shared: &Arc<DurableShared>, name: &str) -> Collection {
    let mut collections = map.lock();
    if let Some(existing) = collections.get(name) {
        return existing.clone();
    }
    telemetry().store_collections.inc();
    let mut collection = Collection::new();
    collection.durable = Some(Arc::new(DurableCtx {
        name: name.to_owned(),
        shared: Arc::clone(shared),
    }));
    collections.insert(name.to_owned(), collection.clone());
    collection
}

/// Rebuilds collections from a recovered snapshot + log tail.
fn restore(
    map: &CollectionMap,
    shared: &Arc<DurableShared>,
    recovered: &Recovered,
) -> Result<(), StoreError> {
    // Index definitions are collected first and built once at the end,
    // over the final document set — equivalent to maintaining them
    // through the replay, and linear instead of quadratic.
    let mut index_paths: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    if let Some(bytes) = &recovered.snapshot {
        let state: Value = serde_json::from_slice(bytes).map_err(corrupt)?;
        let collections = state
            .get("collections")
            .and_then(Value::as_object)
            .ok_or_else(|| corrupt("snapshot has no collections object"))?;
        for (name, cstate) in collections {
            let collection = get_or_create(map, shared, name);
            let mut inner = collection.inner.lock();
            inner.next_id = cstate.get("next_id").and_then(Value::as_u64).unwrap_or(0);
            for doc in cstate
                .get("docs")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
            {
                let id = doc
                    .get("_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| corrupt("snapshot document without _id"))?;
                inner.docs.insert(DocId(id), doc.clone());
            }
            let paths = index_paths.entry(name.clone()).or_default();
            for path in cstate
                .get("indexes")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
            {
                if let Some(path) = path.as_str() {
                    paths.insert(path.to_owned());
                }
            }
        }
    }

    for (lsn, payload) in &recovered.entries {
        let delta: Value = serde_json::from_slice(payload)
            .map_err(|e| corrupt(format!("bad delta at lsn {lsn}: {e}")))?;
        let op = delta
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no op")))?;
        let name = delta
            .get("coll")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no coll")))?;
        match op {
            "insert" | "update" => {
                let id = delta
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| corrupt(format!("{op} delta at lsn {lsn} has no id")))?;
                let doc = delta
                    .get("doc")
                    .cloned()
                    .ok_or_else(|| corrupt(format!("{op} delta at lsn {lsn} has no doc")))?;
                let collection = get_or_create(map, shared, name);
                let mut inner = collection.inner.lock();
                inner.docs.insert(DocId(id), doc);
                inner.next_id = inner.next_id.max(id + 1);
            }
            "delete" => {
                let collection = get_or_create(map, shared, name);
                let mut inner = collection.inner.lock();
                for id in delta
                    .get("ids")
                    .and_then(Value::as_array)
                    .into_iter()
                    .flatten()
                {
                    if let Some(id) = id.as_u64() {
                        inner.docs.remove(&DocId(id));
                    }
                }
            }
            "create_index" | "drop_index" => {
                let path = delta
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| corrupt(format!("{op} delta at lsn {lsn} has no path")))?;
                let _ = get_or_create(map, shared, name);
                let paths = index_paths.entry(name.to_owned()).or_default();
                if op == "create_index" {
                    paths.insert(path.to_owned());
                } else {
                    paths.remove(path);
                }
            }
            "touch" => {
                let _ = get_or_create(map, shared, name);
            }
            "clear" => {
                let collection = get_or_create(map, shared, name);
                collection.inner.lock().docs.clear();
            }
            "drop_collection" => {
                if map.lock().remove(name).is_some() {
                    telemetry().store_collections.dec();
                }
                index_paths.remove(name);
            }
            other => {
                return Err(corrupt(format!("unknown op `{other}` at lsn {lsn}")));
            }
        }
    }

    // Secondary-index rebuild over the recovered documents.
    for (name, paths) in index_paths {
        let Some(collection) = map.lock().get(&name).cloned() else {
            continue;
        };
        for path in paths {
            collection.create_index_mem(&path);
        }
    }
    Ok(())
}

impl Store {
    /// Opens a store with the given durability mode. `InMemory` is
    /// [`Store::new`]; `Durable` opens (or creates) the WAL directory,
    /// replays snapshot + log tail, rebuilds indexes, and logs every
    /// subsequent mutation. See the module docs for the guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Durability`] when the directory cannot be
    /// opened or the log is corrupt beyond torn-tail repair.
    pub fn open(durability: Durability) -> Result<Self, StoreError> {
        match durability {
            Durability::InMemory => Ok(Self::new()),
            Durability::Durable(config) => {
                let (wal, recovered) = Wal::open(&config.dir, config.wal).map_err(wal_err)?;
                let collections: CollectionMap = Arc::new(parking_lot::Mutex::new(BTreeMap::new()));
                let shared = Arc::new(DurableShared {
                    wal: StdMutex::new(wal),
                    snapshot_every: config.snapshot_every,
                    appended: AtomicU64::new(0),
                    collections: Arc::downgrade(&collections),
                });
                restore(&collections, &shared, &recovered)?;
                Ok(Self {
                    collections,
                    durable: Some(shared),
                })
            }
        }
    }

    /// True when this store write-ahead-logs its mutations.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Forces a snapshot + compaction now; returns the covered LSN
    /// (`0` for in-memory stores or an empty log).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Durability`] when the snapshot cannot be
    /// written.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        match &self.durable {
            Some(shared) => shared.snapshot_now(),
            None => Ok(0),
        }
    }

    /// The full store state as canonical JSON: collections sorted by
    /// name, documents in `_id` order, keys sorted. Two stores with
    /// identical contents export identical bytes — the determinism
    /// check the recovery matrix relies on.
    pub fn export_json(&self) -> String {
        export_value(&self.collections).to_string()
    }
}

// ---------------------------------------------------------------------
// Durable implementations of the collection mutations. Each takes the
// store-wide WAL lock first, applies the mutation under the collection
// lock, then appends the delta batch with one group-committed fsync.
// Lock order everywhere: wal → collections-map → collection-inner.
// ---------------------------------------------------------------------

pub(crate) fn insert_one(
    collection: &Collection,
    ctx: &DurableCtx,
    doc: Value,
) -> Result<DocId, StoreError> {
    let ids = insert_many(collection, ctx, [doc])?;
    match ids.first() {
        Some(id) => Ok(*id),
        // insert_many of one document returns one id or an error.
        None => Err(StoreError::Durability("insert logged no id".to_owned())),
    }
}

pub(crate) fn insert_many(
    collection: &Collection,
    ctx: &DurableCtx,
    docs: impl IntoIterator<Item = Value>,
) -> Result<Vec<DocId>, StoreError> {
    let metrics = telemetry();
    let _timer = SpanTimer::start(&metrics.collection_insert_seconds);
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    let mut ids = Vec::new();
    let mut deltas = Vec::new();
    let mut failure = None;
    {
        let mut inner = collection.inner.lock();
        for mut doc in docs {
            if doc.as_object_mut().is_none() {
                failure = Some(StoreError::NotAnObject);
                break;
            }
            metrics.collection_insert.inc();
            let id = DocId(inner.next_id);
            inner.next_id += 1;
            if let Some(fields) = doc.as_object_mut() {
                fields.insert("_id".to_owned(), Value::from(id.0));
            }
            inner.index_doc(id, &doc);
            deltas.push(json!({"op": "insert", "coll": ctx.name, "id": id.0, "doc": doc.clone()}));
            inner.docs.insert(id, doc);
            ids.push(id);
        }
    }
    // Documents inserted before a failure stay inserted — and logged.
    shared.append(&mut wal, &deltas)?;
    drop(wal);
    shared.maybe_snapshot();
    match failure {
        Some(err) => Err(err),
        None => Ok(ids),
    }
}

pub(crate) fn update_many(
    collection: &Collection,
    ctx: &DurableCtx,
    filter: &Filter,
    update: &Update,
) -> Result<usize, StoreError> {
    let metrics = telemetry();
    metrics.collection_update.inc();
    let _timer = SpanTimer::start(&metrics.collection_update_seconds);
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    let (deltas, result) = {
        let mut inner = collection.inner.lock();
        let ids = inner.matching_ids(filter);
        let mut deltas = Vec::new();
        let mut failure = None;
        for id in ids {
            let Some(mut doc) = inner.docs.get(&id).cloned() else {
                continue;
            };
            inner.unindex_doc(id, &doc);
            let applied = update.apply(&mut doc);
            inner.index_doc(id, &doc);
            deltas.push(json!({"op": "update", "coll": ctx.name, "id": id.0, "doc": doc.clone()}));
            inner.docs.insert(id, doc);
            if let Err(err) = applied {
                failure = Some(err);
                break;
            }
        }
        (deltas, failure)
    };
    let updated = deltas.len();
    shared.append(&mut wal, &deltas)?;
    drop(wal);
    shared.maybe_snapshot();
    match result {
        Some(err) => Err(err),
        None => Ok(updated),
    }
}

pub(crate) fn delete_many(
    collection: &Collection,
    ctx: &DurableCtx,
    filter: &Filter,
) -> Result<usize, StoreError> {
    telemetry().collection_delete.inc();
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    let ids = {
        let mut inner = collection.inner.lock();
        let ids = inner.matching_ids(filter);
        for id in &ids {
            if let Some(doc) = inner.docs.remove(id) {
                inner.unindex_doc(*id, &doc);
            }
        }
        ids
    };
    if !ids.is_empty() {
        let id_values: Vec<u64> = ids.iter().map(|id| id.0).collect();
        let delta = json!({"op": "delete", "coll": ctx.name, "ids": id_values});
        shared.append(&mut wal, std::slice::from_ref(&delta))?;
    }
    drop(wal);
    shared.maybe_snapshot();
    Ok(ids.len())
}

pub(crate) fn create_index(
    collection: &Collection,
    ctx: &DurableCtx,
    path: &str,
) -> Result<(), StoreError> {
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    if !collection.create_index_mem(path) {
        return Ok(());
    }
    let delta = json!({"op": "create_index", "coll": ctx.name, "path": path});
    shared.append(&mut wal, std::slice::from_ref(&delta))
}

pub(crate) fn drop_index(
    collection: &Collection,
    ctx: &DurableCtx,
    path: &str,
) -> Result<(), StoreError> {
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    if collection.inner.lock().indexes.remove(path).is_none() {
        return Ok(());
    }
    let delta = json!({"op": "drop_index", "coll": ctx.name, "path": path});
    shared.append(&mut wal, std::slice::from_ref(&delta))
}

pub(crate) fn clear(collection: &Collection, ctx: &DurableCtx) -> Result<(), StoreError> {
    let shared = &ctx.shared;
    let mut wal = shared.lock_wal();
    let was_empty = {
        let mut inner = collection.inner.lock();
        let empty = inner.docs.is_empty();
        let ids: Vec<DocId> = inner.docs.keys().copied().collect();
        for id in ids {
            if let Some(doc) = inner.docs.remove(&id) {
                inner.unindex_doc(id, &doc);
            }
        }
        empty
    };
    if was_empty {
        return Ok(());
    }
    let delta = json!({"op": "clear", "coll": ctx.name});
    shared.append(&mut wal, std::slice::from_ref(&delta))
}

/// Store-level durable drop: removes the collection and logs it.
pub(crate) fn drop_collection(
    store: &Store,
    shared: &Arc<DurableShared>,
    name: &str,
) -> Result<(), StoreError> {
    let mut wal = shared.lock_wal();
    match store.collections.lock().remove(name) {
        Some(_) => {
            telemetry().store_collections.dec();
            let delta = json!({"op": "drop_collection", "coll": name});
            shared.append(&mut wal, std::slice::from_ref(&delta))
        }
        None => Err(StoreError::CollectionNotFound(name.to_owned())),
    }
}

/// Collection accessor used by [`Store::collection`] on durable stores.
/// Creating a collection logs a `touch` delta so that even empty
/// collections survive recovery. `Store::collection` is infallible, so
/// a logging failure (possible only on a crash-killed or failing disk)
/// leaves the collection in memory; its first logged write recreates it
/// on replay anyway.
pub(crate) fn durable_collection(
    store: &Store,
    shared: &Arc<DurableShared>,
    name: &str,
) -> Collection {
    if let Some(existing) = store.collections.lock().get(name) {
        return existing.clone();
    }
    let mut wal = shared.lock_wal();
    let collection = get_or_create(&store.collections, shared, name);
    let delta = json!({"op": "touch", "coll": name});
    let _ = shared.append(&mut wal, std::slice::from_ref(&delta));
    collection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Update;
    use mps_wal::KillPoint;
    use std::sync::atomic::AtomicU64 as TestSeq;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: TestSeq = TestSeq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-docstore-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable(dir: &PathBuf) -> Durability {
        Durability::Durable(DurabilityConfig::new(dir).wal(WalConfig::default().telemetry(false)))
    }

    fn seed(store: &Store) {
        let obs = store.collection("obs");
        obs.create_index("model").unwrap();
        obs.insert_many([
            json!({"model": "A", "spl": 40.0}),
            json!({"model": "B", "spl": 55.0}),
            json!({"model": "A", "spl": 70.0}),
        ])
        .unwrap();
        obs.update_many(&Filter::eq("model", "A"), &Update::set("flagged", true))
            .unwrap();
        obs.delete_many(&Filter::lt("spl", 50.0)).unwrap();
        store
            .collection("meta")
            .insert_one(json!({"k": "v"}))
            .unwrap();
    }

    #[test]
    fn reopen_reproduces_contents_and_indexes() {
        let dir = temp_dir("reopen");
        let store = Store::open(durable(&dir)).unwrap();
        seed(&store);
        let live = store.export_json();
        drop(store);

        let recovered = Store::open(durable(&dir)).unwrap();
        assert_eq!(recovered.export_json(), live);
        let obs = recovered.collection("obs");
        assert!(obs.has_index("model"));
        // The rebuilt index answers queries identically to a scan.
        assert_eq!(obs.count(&Filter::eq("model", "A")).unwrap(), 1);
        // Recovered id assignment continues where the log left off.
        let id = obs.insert_one(json!({"model": "C"})).unwrap();
        assert_eq!(id, DocId(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_replay_is_byte_identical() {
        let dir = temp_dir("determinism");
        let store = Store::open(durable(&dir)).unwrap();
        seed(&store);
        drop(store);
        let first = Store::open(durable(&dir)).unwrap().export_json();
        let second = Store::open(durable(&dir)).unwrap().export_json();
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_and_compaction_preserve_state() {
        let dir = temp_dir("snapshot");
        let config = DurabilityConfig::new(&dir)
            .wal(WalConfig::default().telemetry(false).segment_max_bytes(256))
            .snapshot_every(8);
        let store = Store::open(Durability::Durable(config.clone())).unwrap();
        let c = store.collection("obs");
        for i in 0..64 {
            c.insert_one(json!({"i": i})).unwrap();
        }
        store.checkpoint().unwrap();
        let live = store.export_json();
        drop(store);

        let recovered = Store::open(Durability::Durable(config)).unwrap();
        assert_eq!(recovered.export_json(), live);
        assert_eq!(recovered.collection("obs").len(), 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_and_clear_replay() {
        let dir = temp_dir("dropclear");
        let store = Store::open(durable(&dir)).unwrap();
        seed(&store);
        store.collection("obs").clear().unwrap();
        store.drop_collection("meta").unwrap();
        let live = store.export_json();
        drop(store);

        let recovered = Store::open(durable(&dir)).unwrap();
        assert_eq!(recovered.export_json(), live);
        assert!(recovered.collection("obs").is_empty());
        assert!(recovered.collection("obs").has_index("model"));
        assert!(!recovered.has_collection("meta"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_kill_mid_append_loses_only_the_torn_batch() {
        let dir = temp_dir("kill");
        let kill = mps_wal::KillSwitch::new();
        let config = DurabilityConfig::new(&dir)
            .wal(WalConfig::default().telemetry(false).kill(kill.clone()));
        let store = Store::open(Durability::Durable(config)).unwrap();
        let c = store.collection("obs");
        c.insert_one(json!({"i": 0})).unwrap();
        kill.arm(KillPoint::MidAppend, 0);
        let err = c.insert_one(json!({"i": 1})).unwrap_err();
        assert!(matches!(err, StoreError::Durability(_)));
        // The instance is dead: every further mutation fails.
        assert!(c.insert_one(json!({"i": 2})).is_err());
        drop(store);

        let recovered = Store::open(durable(&dir)).unwrap();
        let c = recovered.collection("obs");
        assert_eq!(c.len(), 1, "torn tail truncated, prefix intact");
        assert_eq!(c.get(DocId(0)).unwrap()["i"], json!(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_open_matches_new() {
        let store = Store::open(Durability::InMemory).unwrap();
        assert!(!store.is_durable());
        assert_eq!(store.checkpoint().unwrap(), 0);
        store.collection("a").insert_one(json!({"x": 1})).unwrap();
        assert_eq!(store.total_documents(), 1);
    }
}
