//! Query planner: choose secondary indexes before touching documents.
//!
//! The planner inspects a [`Filter`]'s indexable predicates (each non-null
//! equality and each merged range over a top-level `And`), probes the
//! collection's secondary indexes, and intersects the resulting sorted
//! candidate-id sets. Executors then fetch only the candidate documents —
//! re-checking each against the full filter, so the planner only ever has
//! to be *conservative* (a superset of the true matches is always safe).
//!
//! Which plan ran is exported as
//! `docstore_query_plans_total{plan=...}` — watching `full_scan` climb on
//! a hot collection is the signal that an index is missing.

use crate::filter::{Filter, IndexablePredicate};
use crate::index::PathIndex;
use crate::value::DocId;
use std::collections::BTreeMap;

/// Which strategy the planner selected for a query, in increasing order
/// of selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// No usable index: every document is visited.
    FullScan,
    /// One equality predicate answered by an index.
    IndexEq,
    /// One range predicate answered by an index.
    IndexRange,
    /// Two or more indexed predicates, candidate sets intersected.
    IndexIntersect,
}

impl PlanKind {
    /// The `plan` label value this kind is exported under.
    pub fn label(self) -> &'static str {
        match self {
            PlanKind::FullScan => "full_scan",
            PlanKind::IndexEq => "index_eq",
            PlanKind::IndexRange => "index_range",
            PlanKind::IndexIntersect => "index_intersect",
        }
    }
}

/// The outcome of planning one query.
#[derive(Debug)]
pub(crate) struct QueryPlan {
    /// Strategy chosen (exported as the `plan` metric label).
    pub(crate) kind: PlanKind,
    /// Candidate ids in ascending `_id` order, or `None` for a full scan.
    pub(crate) candidates: Option<Vec<DocId>>,
}

/// Plans `filter` against the collection's `indexes`.
///
/// Every indexable predicate backed by an index contributes a candidate
/// set; the sets are intersected smallest-first. Predicates without an
/// index are simply left to the execution-time re-check.
pub(crate) fn plan_query(filter: &Filter, indexes: &BTreeMap<String, PathIndex>) -> QueryPlan {
    let mut sets: Vec<Vec<DocId>> = Vec::new();
    let mut used_eq = false;
    let mut used_range = false;
    for predicate in filter.indexable_predicates() {
        match predicate {
            IndexablePredicate::Eq { path, value } => {
                if let Some(index) = indexes.get(path) {
                    // `lookup_eq` iterates a `BTreeSet<DocId>`: already
                    // in ascending id order.
                    sets.push(index.lookup_eq(value));
                    used_eq = true;
                }
            }
            IndexablePredicate::Range((path, lo, hi)) => {
                if let Some(index) = indexes.get(path) {
                    // `lookup_range` returns ids in *key* order; the
                    // executor promises `_id` order, so sort here.
                    let mut ids = index.lookup_range(lo, hi);
                    ids.sort_unstable();
                    sets.push(ids);
                    used_range = true;
                }
            }
        }
    }
    if sets.is_empty() {
        return QueryPlan {
            kind: PlanKind::FullScan,
            candidates: None,
        };
    }
    let kind = if sets.len() > 1 {
        PlanKind::IndexIntersect
    } else if used_eq {
        PlanKind::IndexEq
    } else {
        debug_assert!(used_range);
        PlanKind::IndexRange
    };
    // Intersect smallest-first so the accumulator only ever shrinks.
    sets.sort_by_key(Vec::len);
    let mut iter = sets.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for set in iter {
        if acc.is_empty() {
            break;
        }
        acc = intersect_sorted(&acc, &set);
    }
    QueryPlan {
        kind,
        candidates: Some(acc),
    }
}

/// Intersection of two ascending id slices, by linear merge.
fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{json, Value};

    fn index_on(entries: &[(Value, u64)]) -> PathIndex {
        let mut index = PathIndex::new();
        for (value, id) in entries {
            index.insert(value, DocId(*id));
        }
        index
    }

    #[test]
    fn no_index_means_full_scan() {
        let indexes = BTreeMap::new();
        let plan = plan_query(&Filter::eq("model", "A"), &indexes);
        assert_eq!(plan.kind, PlanKind::FullScan);
        assert!(plan.candidates.is_none());
    }

    #[test]
    fn eq_plan_uses_index_in_id_order() {
        let mut indexes = BTreeMap::new();
        indexes.insert(
            "model".to_owned(),
            index_on(&[(json!("A"), 2), (json!("A"), 0), (json!("B"), 1)]),
        );
        let plan = plan_query(&Filter::eq("model", "A"), &indexes);
        assert_eq!(plan.kind, PlanKind::IndexEq);
        assert_eq!(plan.candidates, Some(vec![DocId(0), DocId(2)]));
    }

    #[test]
    fn range_candidates_are_sorted_by_id() {
        // Key order disagrees with id order on purpose.
        let mut indexes = BTreeMap::new();
        indexes.insert(
            "spl".to_owned(),
            index_on(&[(json!(40.0), 3), (json!(55.0), 1), (json!(70.0), 0)]),
        );
        let plan = plan_query(&Filter::gt("spl", 30.0), &indexes);
        assert_eq!(plan.kind, PlanKind::IndexRange);
        assert_eq!(plan.candidates, Some(vec![DocId(0), DocId(1), DocId(3)]));
    }

    #[test]
    fn conjunction_intersects_candidate_sets() {
        let mut indexes = BTreeMap::new();
        indexes.insert(
            "model".to_owned(),
            index_on(&[(json!("A"), 0), (json!("A"), 2), (json!("B"), 1)]),
        );
        indexes.insert(
            "spl".to_owned(),
            index_on(&[(json!(40.0), 0), (json!(55.0), 1), (json!(70.0), 2)]),
        );
        let filter = Filter::and(vec![Filter::eq("model", "A"), Filter::gt("spl", 50.0)]);
        let plan = plan_query(&filter, &indexes);
        assert_eq!(plan.kind, PlanKind::IndexIntersect);
        assert_eq!(plan.candidates, Some(vec![DocId(2)]));
    }

    #[test]
    fn missing_index_on_one_clause_still_uses_the_other() {
        let mut indexes = BTreeMap::new();
        indexes.insert(
            "model".to_owned(),
            index_on(&[(json!("A"), 0), (json!("B"), 1)]),
        );
        let filter = Filter::and(vec![Filter::eq("model", "A"), Filter::gt("spl", 50.0)]);
        let plan = plan_query(&filter, &indexes);
        assert_eq!(plan.kind, PlanKind::IndexEq);
        assert_eq!(plan.candidates, Some(vec![DocId(0)]));
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let mut indexes = BTreeMap::new();
        indexes.insert("a".to_owned(), index_on(&[(json!(1), 0)]));
        indexes.insert("b".to_owned(), index_on(&[(json!(1), 1)]));
        let filter = Filter::and(vec![Filter::eq("a", 1), Filter::eq("b", 1)]);
        let plan = plan_query(&filter, &indexes);
        assert_eq!(plan.kind, PlanKind::IndexIntersect);
        assert_eq!(plan.candidates, Some(Vec::new()));
    }

    #[test]
    fn intersect_sorted_merges() {
        let a: Vec<DocId> = [1u64, 3, 5, 7].iter().map(|&i| DocId(i)).collect();
        let b: Vec<DocId> = [2u64, 3, 7, 9].iter().map(|&i| DocId(i)).collect();
        assert_eq!(intersect_sorted(&a, &b), vec![DocId(3), DocId(7)]);
    }
}
