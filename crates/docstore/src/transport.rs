//! The [`DocstoreTransport`] / [`CollectionOps`] traits: the store's
//! client surface as object-safe abstractions, so the embedded store and
//! a remote one (see `mps-net`'s `RemoteStore`) are interchangeable.
//!
//! Consumers hold a [`CollectionHandle`] — a cheap clonable wrapper over
//! `Arc<dyn CollectionOps>` exposing the familiar [`Collection`] method
//! surface. The embedded [`Store`] and [`Collection`] implement the
//! traits by pure delegation; durability controls and aggregation stay
//! on the concrete types (operator concerns of the owning process, not
//! part of the wire contract).
//!
//! Infallible [`Collection`] conveniences (`len`, `all`, `has_index`,
//! `distinct`, …) stay infallible on the handle: a remote handle that
//! cannot reach its server degrades them to the empty/default answer
//! and counts the failure in its own `net_*` metrics. Mutating and
//! querying operations, which already return `Result`, surface
//! connectivity problems as [`StoreError::Transport`].

use crate::collection::{Collection, FindOptions};
use crate::error::StoreError;
use crate::filter::Filter;
use crate::store::Store;
use crate::update::Update;
use crate::value::DocId;
use serde_json::Value;
use std::fmt;
use std::sync::Arc;

/// The per-collection operations a client may perform, over any
/// transport. Object-safe mirror of [`Collection`]'s public API; every
/// method returns `Result` so remote implementations can report
/// connectivity failures ([`StoreError::Transport`]) even for
/// operations the embedded collection answers infallibly.
pub trait CollectionOps: fmt::Debug + Send + Sync {
    /// Inserts one document, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates the store's validation errors, or
    /// [`StoreError::Transport`].
    fn insert_one(&self, doc: Value) -> Result<DocId, StoreError>;

    /// Inserts a batch of documents, returning their ids in order.
    ///
    /// # Errors
    ///
    /// Propagates the store's validation errors, or
    /// [`StoreError::Transport`].
    fn insert_many(&self, docs: Vec<Value>) -> Result<Vec<DocId>, StoreError>;

    /// Fetches a document by id.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn get(&self, id: DocId) -> Result<Option<Value>, StoreError>;

    /// Number of documents in the collection.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn len(&self) -> Result<usize, StoreError>;

    /// Documents matching a filter.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    fn find(&self, filter: &Filter) -> Result<Vec<Value>, StoreError>;

    /// Documents matching a filter, with sort/skip/limit/projection.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter/sort errors, or
    /// [`StoreError::Transport`].
    fn find_with_options(
        &self,
        filter: &Filter,
        options: &FindOptions,
    ) -> Result<Vec<Value>, StoreError>;

    /// Number of documents matching a filter.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    fn count(&self, filter: &Filter) -> Result<usize, StoreError>;

    /// Applies an update to every matching document, returning how many
    /// changed.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter/update errors, or
    /// [`StoreError::Transport`].
    fn update_many(&self, filter: &Filter, update: &Update) -> Result<usize, StoreError>;

    /// Deletes every matching document, returning how many were removed.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    fn delete_many(&self, filter: &Filter) -> Result<usize, StoreError>;

    /// Creates (or rebuilds) a secondary index on a dotted path.
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    fn create_index(&self, path: &str) -> Result<(), StoreError>;

    /// Drops the index on a dotted path.
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    fn drop_index(&self, path: &str) -> Result<(), StoreError>;

    /// Whether an index exists on a dotted path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn has_index(&self, path: &str) -> Result<bool, StoreError>;

    /// Number of distinct keys in an index, if one exists on the path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn index_cardinality(&self, path: &str) -> Result<Option<usize>, StoreError>;

    /// Distinct values at a dotted path among matching documents.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn distinct(&self, path: &str, filter: &Filter) -> Result<Vec<Value>, StoreError>;

    /// Removes every document (indexes stay declared).
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    fn clear(&self) -> Result<(), StoreError>;

    /// Every document in the collection.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Transport`] when the store is unreachable.
    fn all(&self) -> Result<Vec<Value>, StoreError>;
}

impl CollectionOps for Collection {
    fn insert_one(&self, doc: Value) -> Result<DocId, StoreError> {
        Collection::insert_one(self, doc)
    }

    fn insert_many(&self, docs: Vec<Value>) -> Result<Vec<DocId>, StoreError> {
        Collection::insert_many(self, docs)
    }

    fn get(&self, id: DocId) -> Result<Option<Value>, StoreError> {
        Ok(Collection::get(self, id))
    }

    fn len(&self) -> Result<usize, StoreError> {
        Ok(Collection::len(self))
    }

    fn find(&self, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        Collection::find(self, filter)
    }

    fn find_with_options(
        &self,
        filter: &Filter,
        options: &FindOptions,
    ) -> Result<Vec<Value>, StoreError> {
        Collection::find_with_options(self, filter, options)
    }

    fn count(&self, filter: &Filter) -> Result<usize, StoreError> {
        Collection::count(self, filter)
    }

    fn update_many(&self, filter: &Filter, update: &Update) -> Result<usize, StoreError> {
        Collection::update_many(self, filter, update)
    }

    fn delete_many(&self, filter: &Filter) -> Result<usize, StoreError> {
        Collection::delete_many(self, filter)
    }

    fn create_index(&self, path: &str) -> Result<(), StoreError> {
        Collection::create_index(self, path)
    }

    fn drop_index(&self, path: &str) -> Result<(), StoreError> {
        Collection::drop_index(self, path)
    }

    fn has_index(&self, path: &str) -> Result<bool, StoreError> {
        Ok(Collection::has_index(self, path))
    }

    fn index_cardinality(&self, path: &str) -> Result<Option<usize>, StoreError> {
        Ok(Collection::index_cardinality(self, path))
    }

    fn distinct(&self, path: &str, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        Ok(Collection::distinct(self, path, filter))
    }

    fn clear(&self) -> Result<(), StoreError> {
        Collection::clear(self)
    }

    fn all(&self) -> Result<Vec<Value>, StoreError> {
        Ok(Collection::all(self))
    }
}

/// A cheap clonable handle over any [`CollectionOps`] implementation,
/// exposing the familiar [`Collection`] method surface.
///
/// The handle keeps the embedded collection's infallible conveniences
/// infallible: when the underlying transport fails, `len` answers `0`,
/// `all` answers the empty vector, and so on — documented degradation,
/// never a panic (the remote implementation counts the failure in its
/// metrics). Operations that return `Result` surface transport failures
/// as [`StoreError::Transport`].
#[derive(Debug, Clone)]
pub struct CollectionHandle {
    ops: Arc<dyn CollectionOps>,
}

impl CollectionHandle {
    /// Wraps any [`CollectionOps`] implementation.
    pub fn new(ops: Arc<dyn CollectionOps>) -> Self {
        Self { ops }
    }

    /// Inserts one document, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates the store's validation errors, or
    /// [`StoreError::Transport`].
    pub fn insert_one(&self, doc: Value) -> Result<DocId, StoreError> {
        self.ops.insert_one(doc)
    }

    /// Inserts a batch of documents, returning their ids in order.
    ///
    /// # Errors
    ///
    /// Propagates the store's validation errors, or
    /// [`StoreError::Transport`].
    pub fn insert_many(
        &self,
        docs: impl IntoIterator<Item = Value>,
    ) -> Result<Vec<DocId>, StoreError> {
        self.ops.insert_many(docs.into_iter().collect())
    }

    /// Fetches a document by id (`None` if missing *or* unreachable).
    pub fn get(&self, id: DocId) -> Option<Value> {
        self.ops.get(id).unwrap_or_default()
    }

    /// Number of documents (`0` when the store is unreachable).
    pub fn len(&self) -> usize {
        self.ops.len().unwrap_or_default()
    }

    /// Whether the collection holds no documents (also `true` when the
    /// store is unreachable — pair with fallible calls where the
    /// distinction matters).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Documents matching a filter.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    pub fn find(&self, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        self.ops.find(filter)
    }

    /// Documents matching a filter, with sort/skip/limit/projection.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter/sort errors, or
    /// [`StoreError::Transport`].
    pub fn find_with_options(
        &self,
        filter: &Filter,
        options: &FindOptions,
    ) -> Result<Vec<Value>, StoreError> {
        self.ops.find_with_options(filter, options)
    }

    /// Number of documents matching a filter.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    pub fn count(&self, filter: &Filter) -> Result<usize, StoreError> {
        self.ops.count(filter)
    }

    /// Applies an update to every matching document, returning how many
    /// changed.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter/update errors, or
    /// [`StoreError::Transport`].
    pub fn update_many(&self, filter: &Filter, update: &Update) -> Result<usize, StoreError> {
        self.ops.update_many(filter, update)
    }

    /// Deletes every matching document, returning how many were removed.
    ///
    /// # Errors
    ///
    /// Propagates the store's filter errors, or
    /// [`StoreError::Transport`].
    pub fn delete_many(&self, filter: &Filter) -> Result<usize, StoreError> {
        self.ops.delete_many(filter)
    }

    /// Creates (or rebuilds) a secondary index on a dotted path.
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    pub fn create_index(&self, path: &str) -> Result<(), StoreError> {
        self.ops.create_index(path)
    }

    /// Drops the index on a dotted path.
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    pub fn drop_index(&self, path: &str) -> Result<(), StoreError> {
        self.ops.drop_index(path)
    }

    /// Whether an index exists on a dotted path (`false` when
    /// unreachable).
    pub fn has_index(&self, path: &str) -> bool {
        self.ops.has_index(path).unwrap_or_default()
    }

    /// Number of distinct keys in an index, if one exists on the path
    /// (`None` when unreachable).
    pub fn index_cardinality(&self, path: &str) -> Option<usize> {
        self.ops.index_cardinality(path).unwrap_or_default()
    }

    /// Distinct values at a dotted path among matching documents (empty
    /// when unreachable).
    pub fn distinct(&self, path: &str, filter: &Filter) -> Vec<Value> {
        self.ops.distinct(path, filter).unwrap_or_default()
    }

    /// Removes every document (indexes stay declared).
    ///
    /// # Errors
    ///
    /// Propagates the store's errors, or [`StoreError::Transport`].
    pub fn clear(&self) -> Result<(), StoreError> {
        self.ops.clear()
    }

    /// Every document in the collection (empty when unreachable).
    pub fn all(&self) -> Vec<Value> {
        self.ops.all().unwrap_or_default()
    }
}

impl From<Collection> for CollectionHandle {
    fn from(collection: Collection) -> Self {
        Self::new(Arc::new(collection))
    }
}

/// The store-level operations a client may perform, over any transport.
/// Object-safe mirror of [`Store`]'s public API.
pub trait DocstoreTransport: fmt::Debug + Send + Sync {
    /// A handle to the named collection, created on first use.
    fn collection(&self, name: &str) -> CollectionHandle;

    /// Whether a collection with this name exists (`false` when the
    /// store is unreachable).
    fn has_collection(&self, name: &str) -> bool;

    /// Names of every collection (empty when the store is unreachable).
    fn collection_names(&self) -> Vec<String>;

    /// Removes a collection and its documents.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError::CollectionNotFound`], or
    /// [`StoreError::Transport`].
    fn drop_collection(&self, name: &str) -> Result<(), StoreError>;

    /// Documents across every collection (`0` when the store is
    /// unreachable).
    fn total_documents(&self) -> usize;
}

impl DocstoreTransport for Store {
    fn collection(&self, name: &str) -> CollectionHandle {
        CollectionHandle::from(Store::collection(self, name))
    }

    fn has_collection(&self, name: &str) -> bool {
        Store::has_collection(self, name)
    }

    fn collection_names(&self) -> Vec<String> {
        Store::collection_names(self)
    }

    fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        Store::drop_collection(self, name)
    }

    fn total_documents(&self) -> usize {
        Store::total_documents(self)
    }
}

/// Shared transports are transports: lets `Arc<Store>` (or any shared
/// remote client) be used directly wherever a [`DocstoreTransport`]
/// bound is expected.
impl<T: DocstoreTransport + ?Sized> DocstoreTransport for Arc<T> {
    fn collection(&self, name: &str) -> CollectionHandle {
        (**self).collection(name)
    }

    fn has_collection(&self, name: &str) -> bool {
        (**self).has_collection(name)
    }

    fn collection_names(&self) -> Vec<String> {
        (**self).collection_names()
    }

    fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        (**self).drop_collection(name)
    }

    fn total_documents(&self) -> usize {
        (**self).total_documents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn store_implements_transport_by_delegation() {
        let store = Store::new();
        let transport: &dyn DocstoreTransport = &store;
        let obs = transport.collection("obs");
        let id = obs
            .insert_one(json!({"spl": 61.0, "model": "LGE NEXUS 5"}))
            .unwrap();
        obs.insert_many(vec![json!({"spl": 44.0}), json!({"spl": 71.0})])
            .unwrap();
        assert_eq!(obs.len(), 3);
        assert!(!obs.is_empty());
        assert_eq!(obs.get(id).unwrap()["spl"], json!(61.0));
        assert_eq!(obs.find(&Filter::gt("spl", 50.0)).unwrap().len(), 2);
        assert_eq!(obs.count(&Filter::gt("spl", 50.0)).unwrap(), 2);
        assert_eq!(obs.all().len(), 3);

        obs.create_index("model").unwrap();
        assert!(obs.has_index("model"));
        assert_eq!(obs.index_cardinality("model"), Some(1));
        assert_eq!(obs.distinct("model", &Filter::True).len(), 1);

        assert!(transport.has_collection("obs"));
        assert_eq!(transport.collection_names(), vec!["obs".to_owned()]);
        assert_eq!(transport.total_documents(), 3);

        // The handle reaches the same underlying collection as the
        // concrete API.
        assert_eq!(Store::collection(&store, "obs").len(), 3);

        assert_eq!(obs.delete_many(&Filter::gt("spl", 50.0)).unwrap(), 2);
        obs.clear().unwrap();
        assert_eq!(obs.len(), 0);
        transport.drop_collection("obs").unwrap();
        assert!(!transport.has_collection("obs"));
    }

    #[test]
    fn handle_supports_update_and_options() {
        let store = Store::new();
        let transport: &dyn DocstoreTransport = &store;
        let c = transport.collection("t");
        for i in 0..5 {
            c.insert_one(json!({"n": i})).unwrap();
        }
        let changed = c
            .update_many(&Filter::lt("n", 2), &Update::inc("n", 10.0))
            .unwrap();
        assert_eq!(changed, 2);
        let top = c
            .find_with_options(
                &Filter::True,
                &FindOptions::new()
                    .sort("n", crate::collection::SortOrder::Descending)
                    .limit(1),
            )
            .unwrap();
        assert_eq!(top[0]["n"], json!(11.0));
    }

    #[test]
    fn arc_store_is_a_transport() {
        let store = Arc::new(Store::new());
        fn takes_transport(t: &impl DocstoreTransport) -> CollectionHandle {
            t.collection("c")
        }
        let handle = takes_transport(&store);
        handle.insert_one(json!({"x": 1})).unwrap();
        assert_eq!(store.collection("c").len(), 1);
    }
}
