//! JSON value helpers: dotted-path access and a total scalar ordering.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::cmp::Ordering;
use std::fmt;

/// Identifier assigned to every stored document (exposed in `_id`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DocId(pub u64);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// Reads the value at a dotted path (`"a.b.c"`), if present.
///
/// Path segments index into objects only; arrays are returned whole (there
/// is no positional addressing, which GoFlow does not need).
///
/// # Examples
///
/// ```
/// use mps_docstore::get_path;
/// use serde_json::json;
///
/// let doc = json!({"location": {"accuracy": 35.0}});
/// assert_eq!(get_path(&doc, "location.accuracy"), Some(&json!(35.0)));
/// assert_eq!(get_path(&doc, "location.provider"), None);
/// ```
pub fn get_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut current = doc;
    for segment in path.split('.') {
        current = current.as_object()?.get(segment)?;
    }
    Some(current)
}

/// Writes `value` at a dotted path, creating intermediate objects as
/// needed. Returns `false` (and leaves the document unchanged) when an
/// intermediate segment exists but is not an object.
///
/// # Examples
///
/// ```
/// use mps_docstore::{get_path, set_path};
/// use serde_json::json;
///
/// let mut doc = json!({});
/// assert!(set_path(&mut doc, "a.b", json!(1)));
/// assert_eq!(get_path(&doc, "a.b"), Some(&json!(1)));
/// ```
pub fn set_path(doc: &mut Value, path: &str, value: Value) -> bool {
    let segments: Vec<&str> = path.split('.').collect();
    let mut current = doc;
    for (i, segment) in segments.iter().enumerate() {
        let Some(map) = current.as_object_mut() else {
            return false;
        };
        if i == segments.len() - 1 {
            map.insert((*segment).to_owned(), value);
            return true;
        }
        current = map
            .entry((*segment).to_owned())
            .or_insert_with(|| Value::Object(serde_json::Map::new()));
    }
    false // unreachable for non-empty paths; empty path has no last segment
}

/// Removes the value at a dotted path. Returns the removed value, if any.
pub fn unset_path(doc: &mut Value, path: &str) -> Option<Value> {
    let (parent_path, leaf) = match path.rsplit_once('.') {
        Some((p, l)) => (Some(p), l),
        None => (None, path),
    };
    let parent = match parent_path {
        Some(p) => {
            // get_path returns a shared ref; walk again mutably.
            let mut current = doc;
            for segment in p.split('.') {
                current = current.as_object_mut()?.get_mut(segment)?;
            }
            current
        }
        None => doc,
    };
    parent.as_object_mut()?.remove(leaf)
}

/// Rank used to order values of different JSON types (Mongo-like:
/// null < numbers < strings < booleans).
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Number(_) => 1,
        Value::String(_) => 2,
        Value::Bool(_) => 3,
        Value::Array(_) => 4,
        Value::Object(_) => 5,
    }
}

/// Totally orders two scalar JSON values; arrays and objects have no
/// defined ordering and return `None`.
///
/// Values of different types order by type rank (null < number < string <
/// bool), matching MongoDB's cross-type sort behaviour closely enough for
/// GoFlow's queries. Numbers compare as `f64`.
///
/// # Examples
///
/// ```
/// use mps_docstore::compare_values;
/// use serde_json::json;
/// use std::cmp::Ordering;
///
/// assert_eq!(compare_values(&json!(1), &json!(2)), Some(Ordering::Less));
/// assert_eq!(compare_values(&json!(null), &json!(0)), Some(Ordering::Less));
/// assert_eq!(compare_values(&json!([1]), &json!([1])), None);
/// ```
pub fn compare_values(a: &Value, b: &Value) -> Option<Ordering> {
    if matches!(a, Value::Array(_) | Value::Object(_))
        || matches!(b, Value::Array(_) | Value::Object(_))
    {
        return None;
    }
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return Some(ra.cmp(&rb));
    }
    match (a, b) {
        (Value::Null, Value::Null) => Some(Ordering::Equal),
        (Value::Number(x), Value::Number(y)) => {
            let (x, y) = (x.as_f64()?, y.as_f64()?);
            x.partial_cmp(&y)
        }
        (Value::String(x), Value::String(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn get_path_nested() {
        let doc = json!({"a": {"b": {"c": 7}}});
        assert_eq!(get_path(&doc, "a.b.c"), Some(&json!(7)));
        assert_eq!(get_path(&doc, "a.b"), Some(&json!({"c": 7})));
        assert_eq!(get_path(&doc, "a.x"), None);
        assert_eq!(get_path(&doc, "a.b.c.d"), None, "scalar has no children");
    }

    #[test]
    fn get_path_single_segment() {
        let doc = json!({"k": "v"});
        assert_eq!(get_path(&doc, "k"), Some(&json!("v")));
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut doc = json!({});
        assert!(set_path(&mut doc, "x.y.z", json!(true)));
        assert_eq!(doc, json!({"x": {"y": {"z": true}}}));
    }

    #[test]
    fn set_path_overwrites_leaf() {
        let mut doc = json!({"a": 1});
        assert!(set_path(&mut doc, "a", json!(2)));
        assert_eq!(doc, json!({"a": 2}));
    }

    #[test]
    fn set_path_refuses_through_scalar() {
        let mut doc = json!({"a": 5});
        assert!(!set_path(&mut doc, "a.b", json!(1)));
        assert_eq!(doc, json!({"a": 5}));
    }

    #[test]
    fn unset_path_removes_and_returns() {
        let mut doc = json!({"a": {"b": 3}, "c": 4});
        assert_eq!(unset_path(&mut doc, "a.b"), Some(json!(3)));
        assert_eq!(doc, json!({"a": {}, "c": 4}));
        assert_eq!(unset_path(&mut doc, "c"), Some(json!(4)));
        assert_eq!(unset_path(&mut doc, "missing"), None);
        assert_eq!(unset_path(&mut doc, "a.b.c"), None);
    }

    #[test]
    fn compare_same_types() {
        assert_eq!(compare_values(&json!(1.5), &json!(2)), Some(Ordering::Less));
        assert_eq!(
            compare_values(&json!("abc"), &json!("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            compare_values(&json!(true), &json!(false)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            compare_values(&json!(null), &json!(null)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn compare_cross_types_by_rank() {
        assert_eq!(
            compare_values(&json!(null), &json!(5)),
            Some(Ordering::Less)
        );
        assert_eq!(compare_values(&json!(5), &json!("5")), Some(Ordering::Less));
        assert_eq!(
            compare_values(&json!("x"), &json!(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn compare_compound_is_none() {
        assert_eq!(compare_values(&json!([1]), &json!(1)), None);
        assert_eq!(compare_values(&json!({"a": 1}), &json!({"a": 1})), None);
    }

    #[test]
    fn doc_id_display() {
        assert_eq!(DocId(3).to_string(), "doc-3");
    }
}
