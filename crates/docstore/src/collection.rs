//! Collections: insert / find / update / delete with indexes.

use crate::durability::{self, DurableCtx};
use crate::filter::Filter;
use crate::index::PathIndex;
use crate::planner::{plan_query, QueryPlan};
use crate::telemetry::telemetry;
use crate::update::Update;
use crate::value::{compare_values, get_path, set_path, DocId};
use crate::StoreError;
use mps_telemetry::SpanTimer;
use parking_lot::Mutex;
use serde_json::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sort direction for [`FindOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortOrder {
    /// Smallest values first.
    #[default]
    Ascending,
    /// Largest values first.
    Descending,
}

/// Options controlling a [`Collection::find_with_options`] query.
///
/// # Examples
///
/// ```
/// use mps_docstore::{FindOptions, SortOrder};
///
/// let options = FindOptions::new()
///     .sort("spl", SortOrder::Descending)
///     .skip(10)
///     .limit(5);
/// assert_eq!(options.limit, Some(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FindOptions {
    /// Sort by this dotted path, if set.
    pub sort: Option<(String, SortOrder)>,
    /// Skip this many documents after sorting.
    pub skip: usize,
    /// Return at most this many documents.
    pub limit: Option<usize>,
    /// Keep only these dotted paths (plus `_id`), if set.
    pub projection: Option<Vec<String>>,
}

impl FindOptions {
    /// Creates default options: no sort, no skip, no limit, no projection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts results by `path`.
    pub fn sort(mut self, path: impl Into<String>, order: SortOrder) -> Self {
        self.sort = Some((path.into(), order));
        self
    }

    /// Skips the first `n` results.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Limits the result count to `n`.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Projects results onto the given dotted paths (plus `_id`).
    pub fn project(mut self, paths: Vec<String>) -> Self {
        self.projection = Some(paths);
        self
    }
}

#[derive(Debug, Default)]
pub(crate) struct CollectionInner {
    pub(crate) docs: BTreeMap<DocId, Value>,
    pub(crate) next_id: u64,
    pub(crate) indexes: BTreeMap<String, PathIndex>,
}

impl CollectionInner {
    pub(crate) fn index_doc(&mut self, id: DocId, doc: &Value) {
        for (path, index) in &mut self.indexes {
            if let Some(value) = get_path(doc, path) {
                index.insert(value, id);
            }
        }
    }

    pub(crate) fn unindex_doc(&mut self, id: DocId, doc: &Value) {
        for (path, index) in &mut self.indexes {
            if let Some(value) = get_path(doc, path) {
                index.remove(value, id);
            }
        }
    }

    /// Plans `filter` against this collection's indexes and records the
    /// chosen plan in `docstore_query_plans_total{plan=...}`.
    fn plan(&self, filter: &Filter) -> QueryPlan {
        let plan = plan_query(filter, &self.indexes);
        telemetry().record_plan(plan.kind);
        plan
    }

    /// Ids of documents matching `filter`, planner-backed, in `_id`
    /// order — the shared candidate step of update/delete.
    pub(crate) fn matching_ids(&self, filter: &Filter) -> Vec<DocId> {
        match self.plan(filter).candidates {
            Some(candidates) => candidates
                .into_iter()
                .filter(|id| self.docs.get(id).is_some_and(|d| filter.matches(d)))
                .collect(),
            None => self
                .docs
                .iter()
                .filter(|(_, doc)| filter.matches(doc))
                .map(|(id, _)| *id)
                .collect(),
        }
    }
}

/// A named collection of JSON documents.
///
/// `Collection` is a cheaply-cloneable handle; clones share the same
/// underlying data (as handles from
/// [`Store::collection`](crate::Store::collection) do). All methods take
/// `&self` and are thread-safe.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    pub(crate) inner: Arc<Mutex<CollectionInner>>,
    /// Present when the owning store write-ahead-logs mutations (see
    /// [`crate::durability`]); `None` on the in-memory sim path.
    pub(crate) durable: Option<Arc<DurableCtx>>,
}

impl Collection {
    /// Creates an empty, unnamed collection (use
    /// [`Store::collection`](crate::Store::collection) for named ones).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a document, assigning and returning its [`DocId`]. The id
    /// is also written into the document's `_id` field.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAnObject`] if `doc` is not a JSON
    /// object, or [`StoreError::Durability`] when a durable store
    /// cannot log the insert.
    pub fn insert_one(&self, mut doc: Value) -> Result<DocId, StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::insert_one(self, &ctx, doc);
        }
        if doc.as_object_mut().is_none() {
            return Err(StoreError::NotAnObject);
        }
        let metrics = telemetry();
        metrics.collection_insert.inc();
        let _timer = SpanTimer::start(&metrics.collection_insert_seconds);
        let mut inner = self.inner.lock();
        let id = DocId(inner.next_id);
        inner.next_id += 1;
        if let Some(fields) = doc.as_object_mut() {
            fields.insert("_id".to_owned(), Value::from(id.0));
        }
        inner.index_doc(id, &doc);
        inner.docs.insert(id, doc);
        Ok(id)
    }

    /// Inserts many documents; stops at the first error.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAnObject`] on the first non-object
    /// document; earlier documents remain inserted (and, on a durable
    /// store, logged — the whole batch shares one group-committed
    /// fsync).
    pub fn insert_many(
        &self,
        docs: impl IntoIterator<Item = Value>,
    ) -> Result<Vec<DocId>, StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::insert_many(self, &ctx, docs);
        }
        docs.into_iter().map(|d| self.insert_one(d)).collect()
    }

    /// Fetches a document by id.
    pub fn get(&self, id: DocId) -> Option<Value> {
        self.inner.lock().docs.get(&id).cloned()
    }

    /// Number of documents in the collection.
    pub fn len(&self) -> usize {
        self.inner.lock().docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().docs.is_empty()
    }

    /// Returns all documents matching `filter`, in `_id` order.
    ///
    /// # Errors
    ///
    /// Currently infallible (the filter is already parsed); returns
    /// `Result` for parity with the fallible query paths.
    pub fn find(&self, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        self.find_with_options(filter, &FindOptions::new())
    }

    /// Returns documents matching `filter` with sorting, paging and
    /// projection applied (in that order).
    ///
    /// The query planner consults secondary indexes first (see
    /// [`crate::planner`]); unsorted queries additionally stop visiting
    /// documents once `skip + limit` results have been cloned, and sorted
    /// queries order references in place, cloning only the requested
    /// window.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unorderable`] when sorting on a path that
    /// holds arrays or objects.
    pub fn find_with_options(
        &self,
        filter: &Filter,
        options: &FindOptions,
    ) -> Result<Vec<Value>, StoreError> {
        let metrics = telemetry();
        metrics.collection_find.inc();
        let _timer = SpanTimer::start(&metrics.collection_find_seconds);
        let inner = self.inner.lock();
        let candidates = inner.plan(filter).candidates;

        let mut limited: Vec<Value> = if let Some((path, order)) = &options.sort {
            // Sorting needs every match: order references in place, then
            // clone only the `skip..skip+limit` window.
            let mut matches: Vec<&Value> = match &candidates {
                Some(ids) => ids
                    .iter()
                    .filter_map(|id| inner.docs.get(id))
                    .filter(|doc| filter.matches(doc))
                    .collect(),
                None => inner
                    .docs
                    .values()
                    .filter(|doc| filter.matches(doc))
                    .collect(),
            };
            let mut sort_error = None;
            matches.sort_by(|a, b| {
                let va = get_path(a, path).unwrap_or(&Value::Null);
                let vb = get_path(b, path).unwrap_or(&Value::Null);
                match compare_values(va, vb) {
                    Some(ord) => {
                        if *order == SortOrder::Descending {
                            ord.reverse()
                        } else {
                            ord
                        }
                    }
                    None => {
                        sort_error.get_or_insert_with(|| path.clone());
                        Ordering::Equal
                    }
                }
            });
            if let Some(path) = sort_error {
                return Err(StoreError::Unorderable(path));
            }
            let window = matches.into_iter().skip(options.skip);
            match options.limit {
                Some(n) => window.take(n).cloned().collect(),
                None => window.cloned().collect(),
            }
        } else {
            // Candidate ids and the document map both run in `_id`
            // order, so the window can be taken while scanning — the
            // iterator stops visiting documents once it is full.
            let take = options.limit.unwrap_or(usize::MAX);
            match &candidates {
                Some(ids) => ids
                    .iter()
                    .filter_map(|id| inner.docs.get(id))
                    .filter(|doc| filter.matches(doc))
                    .skip(options.skip)
                    .take(take)
                    .cloned()
                    .collect(),
                None => inner
                    .docs
                    .values()
                    .filter(|doc| filter.matches(doc))
                    .skip(options.skip)
                    .take(take)
                    .cloned()
                    .collect(),
            }
        };
        drop(inner);

        if let Some(paths) = &options.projection {
            for doc in &mut limited {
                let mut projected = Value::Object(serde_json::Map::new());
                if let Some(id) = get_path(doc, "_id") {
                    set_path(&mut projected, "_id", id.clone());
                }
                for path in paths {
                    if let Some(value) = get_path(doc, path) {
                        set_path(&mut projected, path, value.clone());
                    }
                }
                *doc = projected;
            }
        }
        Ok(limited)
    }

    /// Counts documents matching `filter`.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for parity with `find`.
    pub fn count(&self, filter: &Filter) -> Result<usize, StoreError> {
        let inner = self.inner.lock();
        Ok(match inner.plan(filter).candidates {
            Some(candidates) => candidates
                .into_iter()
                .filter_map(|id| inner.docs.get(&id))
                .filter(|doc| filter.matches(doc))
                .count(),
            None => inner
                .docs
                .values()
                .filter(|doc| filter.matches(doc))
                .count(),
        })
    }

    /// Applies `update` to every document matching `filter`; returns the
    /// number of documents updated.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError::BadUpdate`] from applying the update; any
    /// documents updated before the failure stay updated.
    pub fn update_many(&self, filter: &Filter, update: &Update) -> Result<usize, StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::update_many(self, &ctx, filter, update);
        }
        let metrics = telemetry();
        metrics.collection_update.inc();
        let _timer = SpanTimer::start(&metrics.collection_update_seconds);
        let mut inner = self.inner.lock();
        let ids = inner.matching_ids(filter);
        let mut updated = 0;
        for id in &ids {
            // Ids were collected under this same lock, so the lookup
            // cannot miss; skipping is still safer than panicking.
            let Some(mut doc) = inner.docs.get(id).cloned() else {
                continue;
            };
            inner.unindex_doc(*id, &doc);
            let result = update.apply(&mut doc);
            // Re-index whatever state the document is in, then propagate
            // any error.
            inner.index_doc(*id, &doc);
            inner.docs.insert(*id, doc);
            result?;
            updated += 1;
        }
        Ok(updated)
    }

    /// Deletes every document matching `filter`; returns how many were
    /// removed.
    ///
    /// # Errors
    ///
    /// Infallible in memory; a durable store returns
    /// [`StoreError::Durability`] when the delete cannot be logged.
    pub fn delete_many(&self, filter: &Filter) -> Result<usize, StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::delete_many(self, &ctx, filter);
        }
        telemetry().collection_delete.inc();
        let mut inner = self.inner.lock();
        let ids = inner.matching_ids(filter);
        for id in &ids {
            if let Some(doc) = inner.docs.remove(id) {
                inner.unindex_doc(*id, &doc);
            }
        }
        Ok(ids.len())
    }

    /// Creates a secondary index on `path`, indexing existing documents.
    /// Creating an existing index is a no-op.
    ///
    /// # Errors
    ///
    /// Infallible in memory; a durable store returns
    /// [`StoreError::Durability`] when the definition cannot be logged.
    pub fn create_index(&self, path: &str) -> Result<(), StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::create_index(self, &ctx, path);
        }
        self.create_index_mem(path);
        Ok(())
    }

    /// The in-memory index build; returns whether a new index was
    /// actually created.
    pub(crate) fn create_index_mem(&self, path: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.indexes.contains_key(path) {
            return false;
        }
        let mut index = PathIndex::new();
        for (id, doc) in &inner.docs {
            if let Some(value) = get_path(doc, path) {
                index.insert(value, *id);
            }
        }
        inner.indexes.insert(path.to_owned(), index);
        true
    }

    /// Drops the index on `path`, if present.
    ///
    /// # Errors
    ///
    /// Infallible in memory; a durable store returns
    /// [`StoreError::Durability`] when the drop cannot be logged.
    pub fn drop_index(&self, path: &str) -> Result<(), StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::drop_index(self, &ctx, path);
        }
        self.inner.lock().indexes.remove(path);
        Ok(())
    }

    /// Whether an index exists on `path`.
    pub fn has_index(&self, path: &str) -> bool {
        self.inner.lock().indexes.contains_key(path)
    }

    /// Distinct indexed values on `path`, if an index exists there.
    pub fn index_cardinality(&self, path: &str) -> Option<usize> {
        self.inner.lock().indexes.get(path).map(|i| i.cardinality())
    }

    /// Distinct scalar values at `path` among documents matching
    /// `filter`, in ascending order (arrays/objects at the path are
    /// skipped; MongoDB's `distinct` with our scalar ordering).
    pub fn distinct(&self, path: &str, filter: &Filter) -> Vec<serde_json::Value> {
        let inner = self.inner.lock();
        let mut values: Vec<serde_json::Value> = Vec::new();
        for doc in inner.docs.values().filter(|d| filter.matches(d)) {
            if let Some(v) = get_path(doc, path) {
                if matches!(
                    v,
                    serde_json::Value::Array(_) | serde_json::Value::Object(_)
                ) {
                    continue;
                }
                if !values
                    .iter()
                    .any(|seen| compare_values(seen, v) == Some(Ordering::Equal))
                {
                    values.push(v.clone());
                }
            }
        }
        values.sort_by(|a, b| compare_values(a, b).unwrap_or(Ordering::Equal));
        values
    }

    /// Removes every document (indexes stay defined, but empty).
    ///
    /// # Errors
    ///
    /// Infallible in memory; a durable store returns
    /// [`StoreError::Durability`] when the clear cannot be logged.
    pub fn clear(&self) -> Result<(), StoreError> {
        if let Some(ctx) = self.durable.clone() {
            return durability::clear(self, &ctx);
        }
        let mut inner = self.inner.lock();
        let ids: Vec<DocId> = inner.docs.keys().copied().collect();
        for id in ids {
            if let Some(doc) = inner.docs.remove(&id) {
                inner.unindex_doc(id, &doc);
            }
        }
        Ok(())
    }

    /// Snapshot of all documents, in `_id` order.
    pub fn all(&self) -> Vec<Value> {
        self.inner.lock().docs.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn seeded() -> Collection {
        let c = Collection::new();
        c.insert_many([
            json!({"model": "A", "spl": 40.0, "loc": {"acc": 10.0}}),
            json!({"model": "B", "spl": 55.0, "loc": {"acc": 30.0}}),
            json!({"model": "A", "spl": 70.0}),
            json!({"model": "C", "spl": 62.0, "loc": {"acc": 90.0}}),
        ])
        .unwrap();
        c
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let c = Collection::new();
        let id1 = c.insert_one(json!({"a": 1})).unwrap();
        let id2 = c.insert_one(json!({"a": 2})).unwrap();
        assert_eq!(id1, DocId(0));
        assert_eq!(id2, DocId(1));
        assert_eq!(c.get(id2).unwrap()["_id"], json!(1));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn insert_rejects_non_objects() {
        let c = Collection::new();
        assert_eq!(c.insert_one(json!(5)).unwrap_err(), StoreError::NotAnObject);
        assert_eq!(
            c.insert_one(json!([1, 2])).unwrap_err(),
            StoreError::NotAnObject
        );
    }

    #[test]
    fn find_filters() {
        let c = seeded();
        let r = c.find(&Filter::eq("model", "A")).unwrap();
        assert_eq!(r.len(), 2);
        let r = c.find(&Filter::gt("spl", 60.0)).unwrap();
        assert_eq!(r.len(), 2);
        let r = c.find(&Filter::exists("loc", false)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(c.count(&Filter::True).unwrap(), 4);
    }

    #[test]
    fn find_sorted_and_paged() {
        let c = seeded();
        let opts = FindOptions::new()
            .sort("spl", SortOrder::Descending)
            .limit(2);
        let r = c.find_with_options(&Filter::True, &opts).unwrap();
        assert_eq!(r[0]["spl"], json!(70.0));
        assert_eq!(r[1]["spl"], json!(62.0));

        let opts = FindOptions::new()
            .sort("spl", SortOrder::Ascending)
            .skip(1)
            .limit(2);
        let r = c.find_with_options(&Filter::True, &opts).unwrap();
        assert_eq!(r[0]["spl"], json!(55.0));
        assert_eq!(r[1]["spl"], json!(62.0));
    }

    #[test]
    fn sort_on_missing_path_puts_missing_first() {
        let c = seeded();
        let opts = FindOptions::new().sort("loc.acc", SortOrder::Ascending);
        let r = c.find_with_options(&Filter::True, &opts).unwrap();
        assert_eq!(r[0]["model"], json!("A")); // doc without loc sorts as null
        assert_eq!(r[0]["spl"], json!(70.0));
    }

    #[test]
    fn sort_on_compound_errors() {
        let c = Collection::new();
        c.insert_one(json!({"v": [1]})).unwrap();
        c.insert_one(json!({"v": [2]})).unwrap();
        let opts = FindOptions::new().sort("v", SortOrder::Ascending);
        assert!(matches!(
            c.find_with_options(&Filter::True, &opts),
            Err(StoreError::Unorderable(_))
        ));
    }

    #[test]
    fn projection_keeps_id_and_paths() {
        let c = seeded();
        let opts = FindOptions::new().project(vec!["loc.acc".into()]);
        let r = c
            .find_with_options(&Filter::eq("model", "B"), &opts)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], json!({"_id": 1, "loc": {"acc": 30.0}}));
    }

    #[test]
    fn update_many_applies_and_counts() {
        let c = seeded();
        let n = c
            .update_many(&Filter::eq("model", "A"), &Update::set("flagged", true))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.count(&Filter::eq("flagged", true)).unwrap(), 2);
    }

    #[test]
    fn delete_many_removes() {
        let c = seeded();
        let n = c.delete_many(&Filter::lt("spl", 60.0)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn indexed_equality_matches_scan() {
        let c = seeded();
        let scan = c.find(&Filter::eq("model", "A")).unwrap();
        c.create_index("model").unwrap();
        assert!(c.has_index("model"));
        let indexed = c.find(&Filter::eq("model", "A")).unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(c.index_cardinality("model"), Some(3));
    }

    #[test]
    fn indexed_range_matches_scan() {
        let c = seeded();
        let filter = Filter::range("spl", 50.0, 65.0);
        let scan = c.find(&filter).unwrap();
        c.create_index("spl").unwrap();
        let indexed = c.find(&filter).unwrap();
        assert_eq!(scan.len(), 2);
        assert_eq!(scan, indexed);
    }

    #[test]
    fn index_stays_correct_across_updates_and_deletes() {
        let c = seeded();
        c.create_index("model").unwrap();
        c.update_many(&Filter::eq("model", "C"), &Update::set("model", "A"))
            .unwrap();
        assert_eq!(c.count(&Filter::eq("model", "A")).unwrap(), 3);
        assert_eq!(c.count(&Filter::eq("model", "C")).unwrap(), 0);
        c.delete_many(&Filter::eq("model", "A")).unwrap();
        assert_eq!(c.count(&Filter::eq("model", "A")).unwrap(), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn intersection_of_two_indexes_matches_scan() {
        let c = seeded();
        let filter = Filter::and(vec![Filter::eq("model", "A"), Filter::gt("spl", 50.0)]);
        let scan = c.find(&filter).unwrap();
        c.create_index("model").unwrap();
        c.create_index("spl").unwrap();
        let planned = c.find(&filter).unwrap();
        assert_eq!(scan.len(), 1);
        assert_eq!(scan, planned);
    }

    #[test]
    fn indexed_range_returns_id_order() {
        // Index-key order (40, 55, 62) disagrees with insertion order for
        // the matching docs; results must still come back by `_id`.
        let c = seeded();
        c.create_index("spl").unwrap();
        let r = c.find(&Filter::lt("spl", 65.0)).unwrap();
        let ids: Vec<u64> = r.iter().map(|d| d["_id"].as_u64().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn unsorted_limit_short_circuits_consistently() {
        // The windowed (skip/limit-pushdown) path must agree with the
        // full query on both the scan and the indexed path.
        let c = seeded();
        let opts = FindOptions::new().skip(1).limit(1);
        let filter = Filter::eq("model", "A");
        let full = c.find(&filter).unwrap();
        let window = c.find_with_options(&filter, &opts).unwrap();
        assert_eq!(window.as_slice(), &full[1..2]);
        c.create_index("model").unwrap();
        assert_eq!(c.find_with_options(&filter, &opts).unwrap(), window);
    }

    #[test]
    fn planner_backed_delete_matches_scan_delete() {
        let c = seeded();
        c.create_index("spl").unwrap();
        let n = c.delete_many(&Filter::lt("spl", 60.0)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.count(&Filter::lt("spl", 60.0)).unwrap(), 0);
    }

    #[test]
    fn eq_null_does_not_use_index() {
        // `eq null` matches docs missing the path; the planner must scan.
        let c = seeded();
        c.create_index("loc.acc").unwrap();
        let r = c.find(&Filter::eq("loc.acc", Value::Null)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0]["spl"], json!(70.0));
    }

    #[test]
    fn drop_index_falls_back_to_scan() {
        let c = seeded();
        c.create_index("model").unwrap();
        c.drop_index("model").unwrap();
        assert!(!c.has_index("model"));
        assert_eq!(c.find(&Filter::eq("model", "A")).unwrap().len(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_index_definitions() {
        let c = seeded();
        c.create_index("model").unwrap();
        c.clear().unwrap();
        assert!(c.is_empty());
        assert!(c.has_index("model"));
        assert_eq!(c.index_cardinality("model"), Some(0));
        c.insert_one(json!({"model": "Z"})).unwrap();
        assert_eq!(c.count(&Filter::eq("model", "Z")).unwrap(), 1);
    }

    #[test]
    fn clones_share_data() {
        let c = seeded();
        let c2 = c.clone();
        c2.insert_one(json!({"model": "D"})).unwrap();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn all_returns_in_id_order() {
        let c = seeded();
        let all = c.all();
        let ids: Vec<u64> = all.iter().map(|d| d["_id"].as_u64().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn distinct_values_sorted_and_deduped() {
        let c = seeded();
        let models = c.distinct("model", &Filter::True);
        assert_eq!(models, vec![json!("A"), json!("B"), json!("C")]);
        // With a filter.
        let models = c.distinct("model", &Filter::gt("spl", 50.0));
        assert_eq!(models, vec![json!("A"), json!("B"), json!("C")]);
        let models = c.distinct("model", &Filter::lt("spl", 50.0));
        assert_eq!(models, vec![json!("A")]);
        // Missing path and compound values yield nothing.
        assert!(c.distinct("ghost", &Filter::True).is_empty());
        c.insert_one(json!({"model": ["array"]})).unwrap();
        let models = c.distinct("model", &Filter::True);
        assert_eq!(models.len(), 3, "compound values skipped");
    }

    #[test]
    fn distinct_dedupes_numerically() {
        let c = Collection::new();
        c.insert_one(json!({"v": 1})).unwrap();
        c.insert_one(json!({"v": 1.0})).unwrap();
        c.insert_one(json!({"v": 2})).unwrap();
        assert_eq!(c.distinct("v", &Filter::True).len(), 2);
    }

    #[test]
    fn concurrent_inserts_count() {
        let c = Collection::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.insert_one(json!({"t": t, "i": i})).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.len(), 2000);
        // Ids are unique.
        let mut ids: Vec<u64> = c.all().iter().map(|d| d["_id"].as_u64().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
    }
}
