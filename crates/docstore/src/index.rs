//! Secondary indexes.
//!
//! An index maps the scalar value at one dotted path to the set of document
//! ids holding that value. The collection's query planner consults indexes
//! for equality and range predicates (see
//! [`Collection::create_index`](crate::Collection::create_index)).

use crate::value::{compare_values, DocId};
use serde_json::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// A totally-ordered wrapper over scalar JSON values, usable as a B-tree
/// key. Arrays and objects are not indexable and are skipped at insert.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(Value);

impl IndexKey {
    /// Wraps a scalar value; returns `None` for arrays and objects.
    pub fn new(value: &Value) -> Option<IndexKey> {
        match value {
            Value::Array(_) | Value::Object(_) => None,
            v => Some(IndexKey(v.clone())),
        }
    }

    /// The wrapped value.
    pub fn value(&self) -> &Value {
        &self.0
    }
}

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_values(&self.0, &other.0)
            // mps-lint: allow(L003) -- IndexKey construction rejects non-scalars, and same-or-cross-type scalars always compare
            .expect("IndexKey wraps only scalar values")
    }
}

/// A single-path secondary index.
#[derive(Debug, Default)]
pub(crate) struct PathIndex {
    entries: BTreeMap<IndexKey, BTreeSet<DocId>>,
}

impl PathIndex {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Indexes `id` under `value` (no-op for non-scalar values).
    pub(crate) fn insert(&mut self, value: &Value, id: DocId) {
        if let Some(key) = IndexKey::new(value) {
            self.entries.entry(key).or_default().insert(id);
        }
    }

    /// Removes `id` from under `value`.
    pub(crate) fn remove(&mut self, value: &Value, id: DocId) {
        if let Some(key) = IndexKey::new(value) {
            if let Some(set) = self.entries.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    self.entries.remove(&key);
                }
            }
        }
    }

    /// Ids of documents whose indexed value equals `value`.
    pub(crate) fn lookup_eq(&self, value: &Value) -> Vec<DocId> {
        IndexKey::new(value)
            .and_then(|key| self.entries.get(&key))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Ids of documents whose indexed value falls in the given bounds.
    pub(crate) fn lookup_range(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Vec<DocId> {
        let lo_bound = match lo {
            None => Bound::Unbounded,
            Some((v, inclusive)) => match IndexKey::new(v) {
                None => return Vec::new(),
                Some(k) => {
                    if inclusive {
                        Bound::Included(k)
                    } else {
                        Bound::Excluded(k)
                    }
                }
            },
        };
        let hi_bound = match hi {
            None => Bound::Unbounded,
            Some((v, inclusive)) => match IndexKey::new(v) {
                None => return Vec::new(),
                Some(k) => {
                    if inclusive {
                        Bound::Included(k)
                    } else {
                        Bound::Excluded(k)
                    }
                }
            },
        };
        self.entries
            .range((lo_bound, hi_bound))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Number of distinct indexed values.
    pub(crate) fn cardinality(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn index_key_rejects_compound() {
        assert!(IndexKey::new(&json!([1])).is_none());
        assert!(IndexKey::new(&json!({"a": 1})).is_none());
        assert!(IndexKey::new(&json!(1)).is_some());
        assert_eq!(IndexKey::new(&json!("s")).unwrap().value(), &json!("s"));
    }

    #[test]
    fn index_key_orders_numbers() {
        let a = IndexKey::new(&json!(1)).unwrap();
        let b = IndexKey::new(&json!(2.5)).unwrap();
        assert!(a < b);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = PathIndex::new();
        idx.insert(&json!("x"), DocId(1));
        idx.insert(&json!("x"), DocId(2));
        idx.insert(&json!("y"), DocId(3));
        assert_eq!(idx.lookup_eq(&json!("x")), vec![DocId(1), DocId(2)]);
        assert_eq!(idx.lookup_eq(&json!("z")), Vec::<DocId>::new());
        idx.remove(&json!("x"), DocId(1));
        assert_eq!(idx.lookup_eq(&json!("x")), vec![DocId(2)]);
        idx.remove(&json!("x"), DocId(2));
        assert_eq!(idx.cardinality(), 1);
    }

    #[test]
    fn range_lookup_bounds() {
        let mut idx = PathIndex::new();
        for i in 0..10 {
            idx.insert(&json!(i), DocId(i as u64));
        }
        let ids = idx.lookup_range(Some((&json!(3), true)), Some((&json!(6), false)));
        assert_eq!(ids, vec![DocId(3), DocId(4), DocId(5)]);
        let ids = idx.lookup_range(None, Some((&json!(2), true)));
        assert_eq!(ids, vec![DocId(0), DocId(1), DocId(2)]);
        let ids = idx.lookup_range(Some((&json!(8), false)), None);
        assert_eq!(ids, vec![DocId(9)]);
    }

    #[test]
    fn range_with_compound_bound_is_empty() {
        let mut idx = PathIndex::new();
        idx.insert(&json!(1), DocId(1));
        assert!(idx.lookup_range(Some((&json!([1]), true)), None).is_empty());
    }

    #[test]
    fn non_scalar_values_are_skipped() {
        let mut idx = PathIndex::new();
        idx.insert(&json!([1, 2]), DocId(1));
        assert_eq!(idx.cardinality(), 0);
        idx.remove(&json!([1, 2]), DocId(1)); // no panic
    }
}
