//! # mps-docstore — an in-memory document store
//!
//! The GoFlow middleware stores crowd-sensed contributions in MongoDB
//! ("Data storage … builds upon MongoDB", Section 3.1 of the paper). This
//! crate is an in-process substitute covering the access patterns GoFlow
//! makes: JSON documents in named collections, Mongo-style filter queries
//! with dotted-path addressing, update operators, secondary indexes with a
//! small query planner, sorted/paged cursors and an aggregation-pipeline
//! subset.
//!
//! Documents are [`serde_json::Value`] objects; every stored document gets
//! a numeric `_id`.
//!
//! Stores are in-memory by default (the deterministic-sim path); opening
//! one with [`Store::open`] and [`Durability::Durable`] write-ahead-logs
//! every mutation and replays the log on reopen — see [`mod@durability`].
//!
//! For fleet-scale throughput, [`ShardedStore`] partitions collections by
//! name hash across N independent stores behind the same
//! [`DocstoreTransport`] surface, mirroring the broker's sharding scheme.
//!
//! # Examples
//!
//! ```
//! use mps_docstore::{Filter, Store};
//! use serde_json::json;
//!
//! let store = Store::new();
//! let obs = store.collection("observations");
//! obs.insert_one(json!({"model": "LGE NEXUS 5", "spl": 61.5}))?;
//! obs.insert_one(json!({"model": "SONY D5803", "spl": 44.0}))?;
//!
//! let loud = obs.find(&Filter::parse(&json!({"spl": {"$gt": 50}}))?)?;
//! assert_eq!(loud.len(), 1);
//! # Ok::<(), mps_docstore::StoreError>(())
//! ```

mod aggregate;
mod collection;
pub mod durability;
mod error;
mod filter;
mod index;
mod planner;
#[cfg(test)]
mod proptests;
mod sharded;
mod store;
mod telemetry;
mod transport;
mod update;
mod value;

pub use aggregate::{aggregate, Accumulator, GroupSpec, Stage};
pub use collection::{Collection, FindOptions, SortOrder};
pub use durability::{Durability, DurabilityConfig};
pub use error::StoreError;
pub use filter::Filter;
pub use index::IndexKey;
pub use planner::PlanKind;
pub use sharded::{shard_for_collection, ShardedStore};
pub use store::Store;
pub use transport::{CollectionHandle, CollectionOps, DocstoreTransport};
pub use update::Update;
pub use value::{compare_values, get_path, set_path, unset_path, DocId};
