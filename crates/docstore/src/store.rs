//! The store: a namespace of collections.

use crate::durability::DurableShared;
use crate::telemetry::telemetry;
use crate::Collection;
use crate::StoreError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe namespace of named [`Collection`]s — the substitute for
/// the MongoDB database instance backing the GoFlow server.
///
/// `Store` is a cheaply-cloneable handle; clones share the same data.
///
/// # Examples
///
/// ```
/// use mps_docstore::Store;
/// use serde_json::json;
///
/// let store = Store::new();
/// store.collection("obs").insert_one(json!({"spl": 50.0}))?;
/// assert_eq!(store.collection_names(), vec!["obs".to_string()]);
/// # Ok::<(), mps_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Store {
    pub(crate) collections: Arc<Mutex<BTreeMap<String, Collection>>>,
    /// Present when the store write-ahead-logs its mutations (see
    /// [`crate::durability`]); `None` on the in-memory sim path.
    pub(crate) durable: Option<Arc<DurableShared>>,
}

impl Store {
    /// Creates an empty, in-memory store (use [`Store::open`] for a
    /// durable one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the collection named `name`, creating it if absent. The
    /// returned handle shares data with every other handle to the same
    /// name.
    pub fn collection(&self, name: &str) -> Collection {
        if let Some(shared) = &self.durable {
            return crate::durability::durable_collection(self, shared, name);
        }
        let mut collections = self.collections.lock();
        if let Some(existing) = collections.get(name) {
            return existing.clone();
        }
        telemetry().store_collections.inc();
        collections.entry(name.to_owned()).or_default().clone()
    }

    /// Whether a collection named `name` exists.
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.lock().contains_key(name)
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.lock().keys().cloned().collect()
    }

    /// Drops a collection and its documents.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CollectionNotFound`] if no collection has
    /// this name, and [`StoreError::Durability`] when a durable store
    /// cannot log the drop.
    pub fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        if let Some(shared) = &self.durable {
            return crate::durability::drop_collection(self, &Arc::clone(shared), name);
        }
        match self.collections.lock().remove(name) {
            Some(_) => {
                telemetry().store_collections.dec();
                Ok(())
            }
            None => Err(StoreError::CollectionNotFound(name.to_owned())),
        }
    }

    /// Total number of documents across all collections.
    pub fn total_documents(&self) -> usize {
        self.collections.lock().values().map(Collection::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn collection_auto_creates_and_shares() {
        let store = Store::new();
        let a1 = store.collection("a");
        let a2 = store.collection("a");
        a1.insert_one(json!({"x": 1})).unwrap();
        assert_eq!(a2.len(), 1);
        assert!(store.has_collection("a"));
        assert!(!store.has_collection("b"));
    }

    #[test]
    fn names_are_sorted() {
        let store = Store::new();
        store.collection("zeta");
        store.collection("alpha");
        assert_eq!(store.collection_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn drop_collection_removes() {
        let store = Store::new();
        store.collection("tmp").insert_one(json!({})).unwrap();
        store.drop_collection("tmp").unwrap();
        assert!(!store.has_collection("tmp"));
        assert!(matches!(
            store.drop_collection("tmp"),
            Err(StoreError::CollectionNotFound(_))
        ));
    }

    #[test]
    fn total_documents_sums() {
        let store = Store::new();
        store.collection("a").insert_one(json!({})).unwrap();
        store
            .collection("b")
            .insert_many([json!({}), json!({})])
            .unwrap();
        assert_eq!(store.total_documents(), 3);
    }

    #[test]
    fn clones_share_namespace() {
        let store = Store::new();
        let clone = store.clone();
        clone.collection("shared");
        assert!(store.has_collection("shared"));
    }
}
