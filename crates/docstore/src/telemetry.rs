//! The store's handles into the process-wide telemetry registry.
//!
//! Series follow the workspace convention `<crate>_<subsystem>_<metric>`
//! and register lazily in [`Registry::global`], so any embedding process
//! (the GoFlow server, the bench harness, a test) sees combined storage
//! health without plumbing handles through constructors.

use crate::planner::PlanKind;
use mps_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

/// Shared docstore metric handles.
pub(crate) struct StoreTelemetry {
    /// Documents inserted across all collections.
    pub(crate) collection_insert: Counter,
    /// Find queries executed across all collections.
    pub(crate) collection_find: Counter,
    /// Update-many operations executed across all collections.
    pub(crate) collection_update: Counter,
    /// Delete-many operations executed across all collections.
    pub(crate) collection_delete: Counter,
    /// Queries answered without any index (`plan="full_scan"`).
    pub(crate) query_plan_full_scan: Counter,
    /// Queries answered by one equality index (`plan="index_eq"`).
    pub(crate) query_plan_index_eq: Counter,
    /// Queries answered by one range index (`plan="index_range"`).
    pub(crate) query_plan_index_range: Counter,
    /// Queries intersecting several indexes (`plan="index_intersect"`).
    pub(crate) query_plan_index_intersect: Counter,
    /// Latency of one insert, in seconds.
    pub(crate) collection_insert_seconds: Histogram,
    /// Latency of one find, in seconds.
    pub(crate) collection_find_seconds: Histogram,
    /// Latency of one update-many, in seconds.
    pub(crate) collection_update_seconds: Histogram,
    /// Live collections per store, with a high watermark.
    pub(crate) store_collections: Gauge,
}

/// The lazily-registered docstore metric set.
pub(crate) fn telemetry() -> &'static StoreTelemetry {
    static TELEMETRY: OnceLock<StoreTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        let latency = Histogram::exponential_buckets(1e-7, 10.0, 9);
        StoreTelemetry {
            collection_insert: registry.counter(
                "docstore_collection_insert_total",
                "Documents inserted across all collections",
            ),
            collection_find: registry.counter(
                "docstore_collection_find_total",
                "Find queries executed across all collections",
            ),
            collection_update: registry.counter(
                "docstore_collection_update_total",
                "Update-many operations across all collections",
            ),
            collection_delete: registry.counter(
                "docstore_collection_delete_total",
                "Delete-many operations across all collections",
            ),
            query_plan_full_scan: registry.counter_labeled(
                "docstore_query_plans_total",
                &[("plan", "full_scan")],
                "Queries by chosen plan",
            ),
            query_plan_index_eq: registry.counter_labeled(
                "docstore_query_plans_total",
                &[("plan", "index_eq")],
                "Queries by chosen plan",
            ),
            query_plan_index_range: registry.counter_labeled(
                "docstore_query_plans_total",
                &[("plan", "index_range")],
                "Queries by chosen plan",
            ),
            query_plan_index_intersect: registry.counter_labeled(
                "docstore_query_plans_total",
                &[("plan", "index_intersect")],
                "Queries by chosen plan",
            ),
            collection_insert_seconds: registry.histogram(
                "docstore_collection_insert_seconds",
                "Latency of one document insert (s)",
                &latency,
            ),
            collection_find_seconds: registry.histogram(
                "docstore_collection_find_seconds",
                "Latency of one find query (s)",
                &latency,
            ),
            collection_update_seconds: registry.histogram(
                "docstore_collection_update_seconds",
                "Latency of one update-many operation (s)",
                &latency,
            ),
            store_collections: registry.gauge(
                "docstore_store_collections",
                "Live collections across all stores",
            ),
        }
    })
}

impl StoreTelemetry {
    /// Bumps the `docstore_query_plans_total` series for `kind`.
    pub(crate) fn record_plan(&self, kind: PlanKind) {
        match kind {
            PlanKind::FullScan => self.query_plan_full_scan.inc(),
            PlanKind::IndexEq => self.query_plan_index_eq.inc(),
            PlanKind::IndexRange => self.query_plan_index_range.inc(),
            PlanKind::IndexIntersect => self.query_plan_index_intersect.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_docstore_names() {
        let t = telemetry();
        t.collection_insert.add(0);
        let names = Registry::global().names();
        for name in [
            "docstore_collection_insert_total",
            "docstore_collection_find_total",
            "docstore_collection_update_total",
            "docstore_collection_delete_total",
            "docstore_collection_insert_seconds",
            "docstore_collection_find_seconds",
            "docstore_collection_update_seconds",
            "docstore_store_collections",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }

    #[test]
    fn plan_counters_register_one_series_per_label() {
        let t = telemetry();
        let registry = Registry::global();
        let before = registry
            .counter_value_labeled("docstore_query_plans_total", &[("plan", "index_eq")])
            .unwrap_or(0);
        t.record_plan(PlanKind::IndexEq);
        t.record_plan(PlanKind::FullScan);
        let after = registry
            .counter_value_labeled("docstore_query_plans_total", &[("plan", "index_eq")])
            .unwrap_or(0);
        assert_eq!(after, before + 1);
        for plan in ["full_scan", "index_eq", "index_range", "index_intersect"] {
            assert!(
                registry
                    .counter_value_labeled("docstore_query_plans_total", &[("plan", plan)])
                    .is_some(),
                "missing plan series {plan}"
            );
        }
    }
}
