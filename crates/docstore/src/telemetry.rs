//! The store's handles into the process-wide telemetry registry.
//!
//! Series follow the workspace convention `<crate>_<subsystem>_<metric>`
//! and register lazily in [`Registry::global`], so any embedding process
//! (the GoFlow server, the bench harness, a test) sees combined storage
//! health without plumbing handles through constructors.

use mps_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

/// Shared docstore metric handles.
pub(crate) struct StoreTelemetry {
    /// Documents inserted across all collections.
    pub(crate) collection_insert: Counter,
    /// Find queries executed across all collections.
    pub(crate) collection_find: Counter,
    /// Update-many operations executed across all collections.
    pub(crate) collection_update: Counter,
    /// Delete-many operations executed across all collections.
    pub(crate) collection_delete: Counter,
    /// Latency of one insert, in seconds.
    pub(crate) collection_insert_seconds: Histogram,
    /// Latency of one find, in seconds.
    pub(crate) collection_find_seconds: Histogram,
    /// Latency of one update-many, in seconds.
    pub(crate) collection_update_seconds: Histogram,
    /// Live collections per store, with a high watermark.
    pub(crate) store_collections: Gauge,
}

/// The lazily-registered docstore metric set.
pub(crate) fn telemetry() -> &'static StoreTelemetry {
    static TELEMETRY: OnceLock<StoreTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        let latency = Histogram::exponential_buckets(1e-7, 10.0, 9);
        StoreTelemetry {
            collection_insert: registry.counter(
                "docstore_collection_insert_total",
                "Documents inserted across all collections",
            ),
            collection_find: registry.counter(
                "docstore_collection_find_total",
                "Find queries executed across all collections",
            ),
            collection_update: registry.counter(
                "docstore_collection_update_total",
                "Update-many operations across all collections",
            ),
            collection_delete: registry.counter(
                "docstore_collection_delete_total",
                "Delete-many operations across all collections",
            ),
            collection_insert_seconds: registry.histogram(
                "docstore_collection_insert_seconds",
                "Latency of one document insert (s)",
                &latency,
            ),
            collection_find_seconds: registry.histogram(
                "docstore_collection_find_seconds",
                "Latency of one find query (s)",
                &latency,
            ),
            collection_update_seconds: registry.histogram(
                "docstore_collection_update_seconds",
                "Latency of one update-many operation (s)",
                &latency,
            ),
            store_collections: registry.gauge(
                "docstore_store_collections",
                "Live collections across all stores",
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_docstore_names() {
        let t = telemetry();
        t.collection_insert.add(0);
        let names = Registry::global().names();
        for name in [
            "docstore_collection_insert_total",
            "docstore_collection_find_total",
            "docstore_collection_update_total",
            "docstore_collection_delete_total",
            "docstore_collection_insert_seconds",
            "docstore_collection_find_seconds",
            "docstore_collection_update_seconds",
            "docstore_store_collections",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }
}
