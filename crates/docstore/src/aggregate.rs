//! A small aggregation pipeline (the subset of MongoDB's that GoFlow's
//! analytics use): `$match`, `$group`, `$sort`, `$skip`, `$limit`,
//! `$project` and `$count`.

use crate::collection::SortOrder;
use crate::filter::Filter;
use crate::value::{compare_values, get_path, set_path};
use crate::StoreError;
use serde_json::{json, Map, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// An accumulator inside a [`GroupSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    /// Number of documents in the group.
    Count,
    /// Sum of the numeric values at a path (missing/non-numeric skipped).
    Sum(String),
    /// Average of the numeric values at a path.
    Avg(String),
    /// Minimum of the orderable values at a path.
    Min(String),
    /// Maximum of the orderable values at a path.
    Max(String),
    /// The first value seen at a path (documents arrive in `_id` order).
    First(String),
}

/// Specification of a `$group` stage: an optional grouping key path and
/// named accumulators.
///
/// # Examples
///
/// ```
/// use mps_docstore::{aggregate, Accumulator, GroupSpec, Stage};
/// use serde_json::json;
///
/// let docs = vec![
///     json!({"model": "A", "spl": 40.0}),
///     json!({"model": "A", "spl": 60.0}),
///     json!({"model": "B", "spl": 50.0}),
/// ];
/// let spec = GroupSpec::by("model").accumulate("mean_spl", Accumulator::Avg("spl".into()));
/// let out = aggregate(&docs, &[Stage::Group(spec)])?;
/// assert_eq!(out.len(), 2);
/// # Ok::<(), mps_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    key: Option<String>,
    accumulators: Vec<(String, Accumulator)>,
}

impl GroupSpec {
    /// Groups by the value at `path`; the output documents carry it as
    /// `_id`.
    pub fn by(path: impl Into<String>) -> Self {
        Self {
            key: Some(path.into()),
            accumulators: Vec::new(),
        }
    }

    /// Collapses all documents into a single group (`_id: null`).
    pub fn all() -> Self {
        Self {
            key: None,
            accumulators: Vec::new(),
        }
    }

    /// Adds a named accumulator.
    pub fn accumulate(mut self, name: impl Into<String>, acc: Accumulator) -> Self {
        self.accumulators.push((name.into(), acc));
        self
    }
}

/// One stage of an aggregation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Keep only documents matching the filter.
    Match(Filter),
    /// Group documents and compute accumulators.
    Group(GroupSpec),
    /// Sort by a dotted path.
    Sort(String, SortOrder),
    /// Skip the first `n` documents.
    Skip(usize),
    /// Keep at most `n` documents.
    Limit(usize),
    /// Keep only the given paths (plus `_id`).
    Project(Vec<String>),
    /// Replace the stream with a single `{name: count}` document.
    Count(String),
}

#[derive(Default)]
struct GroupAcc {
    count: u64,
    sums: Vec<f64>,
    sum_counts: Vec<u64>,
    mins: Vec<Option<Value>>,
    maxs: Vec<Option<Value>>,
    firsts: Vec<Option<Value>>,
}

/// Runs `stages` over `docs` and returns the resulting documents.
///
/// # Errors
///
/// Returns [`StoreError::Unorderable`] when a `$sort` path holds
/// arrays/objects, and [`StoreError::BadPipeline`] for a group key that is
/// an array/object.
pub fn aggregate(docs: &[Value], stages: &[Stage]) -> Result<Vec<Value>, StoreError> {
    let mut current: Vec<Value> = docs.to_vec();
    for stage in stages {
        current = apply_stage(current, stage)?;
    }
    Ok(current)
}

fn apply_stage(docs: Vec<Value>, stage: &Stage) -> Result<Vec<Value>, StoreError> {
    match stage {
        Stage::Match(filter) => Ok(docs.into_iter().filter(|d| filter.matches(d)).collect()),
        Stage::Skip(n) => Ok(docs.into_iter().skip(*n).collect()),
        Stage::Limit(n) => Ok(docs.into_iter().take(*n).collect()),
        Stage::Count(name) => Ok(vec![json!({ name.as_str(): docs.len() })]),
        Stage::Sort(path, order) => {
            let mut docs = docs;
            let mut error = None;
            docs.sort_by(|a, b| {
                let va = get_path(a, path).unwrap_or(&Value::Null);
                let vb = get_path(b, path).unwrap_or(&Value::Null);
                match compare_values(va, vb) {
                    Some(ord) => {
                        if *order == SortOrder::Descending {
                            ord.reverse()
                        } else {
                            ord
                        }
                    }
                    None => {
                        error.get_or_insert_with(|| path.clone());
                        Ordering::Equal
                    }
                }
            });
            match error {
                Some(path) => Err(StoreError::Unorderable(path)),
                None => Ok(docs),
            }
        }
        Stage::Project(paths) => Ok(docs
            .into_iter()
            .map(|doc| {
                let mut projected = Value::Object(Map::new());
                if let Some(id) = get_path(&doc, "_id") {
                    set_path(&mut projected, "_id", id.clone());
                }
                for path in paths {
                    if let Some(value) = get_path(&doc, path) {
                        set_path(&mut projected, path, value.clone());
                    }
                }
                projected
            })
            .collect()),
        Stage::Group(spec) => group(docs, spec),
    }
}

fn group(docs: Vec<Value>, spec: &GroupSpec) -> Result<Vec<Value>, StoreError> {
    // Group key -> (representative _id value, accumulator state). BTreeMap
    // on the serialized key keeps output order deterministic.
    let mut groups: BTreeMap<String, (Value, GroupAcc)> = BTreeMap::new();
    let n_acc = spec.accumulators.len();

    for doc in &docs {
        let key_value = match &spec.key {
            Some(path) => get_path(doc, path).cloned().unwrap_or(Value::Null),
            None => Value::Null,
        };
        if key_value.is_array() || key_value.is_object() {
            return Err(StoreError::BadPipeline("group key must be a scalar".into()));
        }
        let map_key = key_value.to_string();
        let entry = groups.entry(map_key).or_insert_with(|| {
            (
                key_value.clone(),
                GroupAcc {
                    count: 0,
                    sums: vec![0.0; n_acc],
                    sum_counts: vec![0; n_acc],
                    mins: vec![None; n_acc],
                    maxs: vec![None; n_acc],
                    firsts: vec![None; n_acc],
                },
            )
        });
        let acc = &mut entry.1;
        acc.count += 1;
        for (i, (_, a)) in spec.accumulators.iter().enumerate() {
            match a {
                Accumulator::Count => {}
                Accumulator::Sum(path) | Accumulator::Avg(path) => {
                    if let Some(x) = get_path(doc, path).and_then(Value::as_f64) {
                        acc.sums[i] += x;
                        acc.sum_counts[i] += 1;
                    }
                }
                Accumulator::Min(path) => {
                    if let Some(v) = get_path(doc, path) {
                        let better = match &acc.mins[i] {
                            None => true,
                            Some(cur) => compare_values(v, cur) == Some(Ordering::Less),
                        };
                        if better {
                            acc.mins[i] = Some(v.clone());
                        }
                    }
                }
                Accumulator::Max(path) => {
                    if let Some(v) = get_path(doc, path) {
                        let better = match &acc.maxs[i] {
                            None => true,
                            Some(cur) => compare_values(v, cur) == Some(Ordering::Greater),
                        };
                        if better {
                            acc.maxs[i] = Some(v.clone());
                        }
                    }
                }
                Accumulator::First(path) => {
                    if acc.firsts[i].is_none() {
                        acc.firsts[i] = get_path(doc, path).cloned();
                    }
                }
            }
        }
    }

    Ok(groups
        .into_values()
        .map(|(key_value, acc)| {
            let mut out = Map::new();
            out.insert("_id".to_owned(), key_value);
            for (i, (name, a)) in spec.accumulators.iter().enumerate() {
                let value = match a {
                    Accumulator::Count => Value::from(acc.count),
                    Accumulator::Sum(_) => Value::from(acc.sums[i]),
                    Accumulator::Avg(_) => {
                        if acc.sum_counts[i] == 0 {
                            Value::Null
                        } else {
                            Value::from(acc.sums[i] / acc.sum_counts[i] as f64)
                        }
                    }
                    Accumulator::Min(_) => acc.mins[i].clone().unwrap_or(Value::Null),
                    Accumulator::Max(_) => acc.maxs[i].clone().unwrap_or(Value::Null),
                    Accumulator::First(_) => acc.firsts[i].clone().unwrap_or(Value::Null),
                };
                out.insert(name.clone(), value);
            }
            Value::Object(out)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Value> {
        vec![
            json!({"_id": 0, "model": "A", "spl": 40.0, "hour": 9}),
            json!({"_id": 1, "model": "B", "spl": 55.0, "hour": 10}),
            json!({"_id": 2, "model": "A", "spl": 70.0, "hour": 9}),
            json!({"_id": 3, "model": "C", "spl": 62.0, "hour": 22}),
        ]
    }

    #[test]
    fn match_then_count() {
        let out = aggregate(
            &docs(),
            &[
                Stage::Match(Filter::gt("spl", 50.0)),
                Stage::Count("n".into()),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![json!({"n": 3})]);
    }

    #[test]
    fn group_by_key_with_all_accumulators() {
        let spec = GroupSpec::by("model")
            .accumulate("n", Accumulator::Count)
            .accumulate("total", Accumulator::Sum("spl".into()))
            .accumulate("mean", Accumulator::Avg("spl".into()))
            .accumulate("lo", Accumulator::Min("spl".into()))
            .accumulate("hi", Accumulator::Max("spl".into()))
            .accumulate("first_hour", Accumulator::First("hour".into()));
        let out = aggregate(&docs(), &[Stage::Group(spec)]).unwrap();
        assert_eq!(out.len(), 3);
        let a = out.iter().find(|d| d["_id"] == json!("A")).unwrap();
        assert_eq!(a["n"], json!(2));
        assert_eq!(a["total"], json!(110.0));
        assert_eq!(a["mean"], json!(55.0));
        assert_eq!(a["lo"], json!(40.0));
        assert_eq!(a["hi"], json!(70.0));
        assert_eq!(a["first_hour"], json!(9));
    }

    #[test]
    fn group_all_collapses() {
        let spec = GroupSpec::all().accumulate("n", Accumulator::Count);
        let out = aggregate(&docs(), &[Stage::Group(spec)]).unwrap();
        assert_eq!(out, vec![json!({"_id": null, "n": 4})]);
    }

    #[test]
    fn group_missing_key_buckets_as_null() {
        let docs = vec![json!({"a": 1}), json!({"k": "x", "a": 2})];
        let spec = GroupSpec::by("k").accumulate("n", Accumulator::Count);
        let out = aggregate(&docs, &[Stage::Group(spec)]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d["_id"].is_null() && d["n"] == json!(1)));
    }

    #[test]
    fn group_rejects_compound_key() {
        let docs = vec![json!({"k": [1]})];
        let spec = GroupSpec::by("k");
        assert!(matches!(
            aggregate(&docs, &[Stage::Group(spec)]),
            Err(StoreError::BadPipeline(_))
        ));
    }

    #[test]
    fn avg_of_no_numeric_values_is_null() {
        let docs = vec![json!({"m": "x"})];
        let spec = GroupSpec::all().accumulate("mean", Accumulator::Avg("spl".into()));
        let out = aggregate(&docs, &[Stage::Group(spec)]).unwrap();
        assert_eq!(out[0]["mean"], Value::Null);
    }

    #[test]
    fn sort_skip_limit_pipeline() {
        let out = aggregate(
            &docs(),
            &[
                Stage::Sort("spl".into(), SortOrder::Descending),
                Stage::Skip(1),
                Stage::Limit(2),
                Stage::Project(vec!["spl".into()]),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], json!({"_id": 3, "spl": 62.0}));
        assert_eq!(out[1], json!({"_id": 1, "spl": 55.0}));
    }

    #[test]
    fn sort_error_on_compound() {
        let docs = vec![json!({"v": [1]}), json!({"v": 2})];
        assert!(matches!(
            aggregate(&docs, &[Stage::Sort("v".into(), SortOrder::Ascending)]),
            Err(StoreError::Unorderable(_))
        ));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let d = docs();
        assert_eq!(aggregate(&d, &[]).unwrap(), d);
    }

    #[test]
    fn group_then_sort_chains() {
        // Per-hour counts sorted by hour — the shape of the Fig 18 query.
        let spec = GroupSpec::by("hour").accumulate("n", Accumulator::Count);
        let out = aggregate(
            &docs(),
            &[
                Stage::Group(spec),
                Stage::Sort("_id".into(), SortOrder::Ascending),
            ],
        )
        .unwrap();
        assert_eq!(out[0]["_id"], json!(9));
        assert_eq!(out[0]["n"], json!(2));
        assert_eq!(out[2]["_id"], json!(22));
    }
}
