//! Mongo-style update documents.

use crate::value::{get_path, set_path, unset_path};
use crate::StoreError;
use serde_json::Value;

/// One update operation on a document path.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// `$set`: write a value at the path.
    Set(String, Value),
    /// `$inc`: add a number to the (numeric or missing) value at the path.
    Inc(String, f64),
    /// `$unset`: remove the path.
    Unset(String),
    /// `$push`: append a value to the (array or missing) value at the path.
    Push(String, Value),
}

/// A parsed update document: an ordered list of `$set` / `$inc` / `$unset`
/// / `$push` operations.
///
/// # Examples
///
/// ```
/// use mps_docstore::Update;
/// use serde_json::json;
///
/// let update = Update::parse(&json!({
///     "$set": {"status": "processed"},
///     "$inc": {"retries": 1},
/// }))?;
/// let mut doc = json!({"retries": 2});
/// update.apply(&mut doc)?;
/// assert_eq!(doc, json!({"retries": 3.0, "status": "processed"}));
/// # Ok::<(), mps_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Update {
    ops: Vec<Op>,
}

impl Update {
    /// Parses an update document.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadUpdate`] if the document is not an object,
    /// uses an unknown operator, or gives `$inc` a non-numeric argument.
    pub fn parse(doc: &Value) -> Result<Update, StoreError> {
        let map = doc
            .as_object()
            .ok_or_else(|| StoreError::BadUpdate("update must be an object".into()))?;
        let mut ops = Vec::new();
        for (op, args) in map {
            let args = args
                .as_object()
                .ok_or_else(|| StoreError::BadUpdate(format!("{op} expects an object of paths")))?;
            for (path, arg) in args {
                let parsed = match op.as_str() {
                    "$set" => Op::Set(path.clone(), arg.clone()),
                    "$inc" => {
                        let delta = arg.as_f64().ok_or_else(|| {
                            StoreError::BadUpdate(format!("$inc on {path} expects a number"))
                        })?;
                        Op::Inc(path.clone(), delta)
                    }
                    "$unset" => Op::Unset(path.clone()),
                    "$push" => Op::Push(path.clone(), arg.clone()),
                    other => {
                        return Err(StoreError::BadUpdate(format!("unknown operator {other}")))
                    }
                };
                ops.push(parsed);
            }
        }
        if ops.is_empty() {
            return Err(StoreError::BadUpdate("update has no operations".into()));
        }
        Ok(Update { ops })
    }

    /// Builds a single-field `$set` update.
    pub fn set(path: impl Into<String>, value: impl Into<Value>) -> Update {
        Update {
            ops: vec![Op::Set(path.into(), value.into())],
        }
    }

    /// Builds a single-field `$inc` update.
    pub fn inc(path: impl Into<String>, delta: f64) -> Update {
        Update {
            ops: vec![Op::Inc(path.into(), delta)],
        }
    }

    /// Encodes the update back to a Mongo-style document — the inverse of
    /// [`Update::parse`]. Operations are grouped by operator, so the result
    /// always has the canonical shape `{"$set": {..}, "$inc": {..}, ...}`.
    ///
    /// Two encodings are not perfectly lossless: a document key can appear
    /// only once, so two operations through the *same* operator on the
    /// *same* path collapse to the last one, and [`Update::parse`] replays
    /// operators in document order rather than original insertion order.
    /// Neither shape is constructible through the public builders, which
    /// makes `parse(to_doc(u))` equivalent to `u` for every update that
    /// crossed the wire. (The wire protocol spec documents this as the
    /// canonical update encoding.)
    #[must_use]
    pub fn to_doc(&self) -> Value {
        use serde_json::Map;
        let mut groups: Map<String, Value> = Map::new();
        let mut entry = |operator: &str, path: &str, arg: Value| {
            groups
                .entry(operator.to_string())
                .or_insert_with(|| Value::Object(Map::new()))
                .as_object_mut()
                .map(|fields| fields.insert(path.to_string(), arg));
        };
        for op in &self.ops {
            match op {
                Op::Set(path, value) => entry("$set", path, value.clone()),
                Op::Inc(path, delta) => entry("$inc", path, Value::from(*delta)),
                Op::Unset(path) => entry("$unset", path, Value::from(1)),
                Op::Push(path, value) => entry("$push", path, value.clone()),
            }
        }
        Value::Object(groups)
    }

    /// Applies the update to `doc` in place.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadUpdate`] if `$inc` targets a non-numeric
    /// value or `$push` targets a non-array value; earlier operations in
    /// the update may already have been applied.
    pub fn apply(&self, doc: &mut Value) -> Result<(), StoreError> {
        for op in &self.ops {
            match op {
                Op::Set(path, value) => {
                    if !set_path(doc, path, value.clone()) {
                        return Err(StoreError::BadUpdate(format!(
                            "$set cannot traverse non-object at {path}"
                        )));
                    }
                }
                Op::Inc(path, delta) => {
                    let current = match get_path(doc, path) {
                        None => 0.0,
                        Some(v) => v.as_f64().ok_or_else(|| {
                            StoreError::BadUpdate(format!("$inc target {path} is not a number"))
                        })?,
                    };
                    if !set_path(doc, path, Value::from(current + delta)) {
                        return Err(StoreError::BadUpdate(format!(
                            "$inc cannot traverse non-object at {path}"
                        )));
                    }
                }
                Op::Unset(path) => {
                    let _ = unset_path(doc, path);
                }
                Op::Push(path, value) => {
                    match get_path(doc, path) {
                        None => {
                            if !set_path(doc, path, Value::Array(vec![value.clone()])) {
                                return Err(StoreError::BadUpdate(format!(
                                    "$push cannot traverse non-object at {path}"
                                )));
                            }
                        }
                        Some(Value::Array(_)) => {
                            // Re-borrow mutably to push. `get_path`
                            // verified the full path, so every step
                            // resolves; if it somehow didn't, the push
                            // degrades to a no-op instead of a panic.
                            let mut current = Some(&mut *doc);
                            for segment in path.split('.') {
                                current = current
                                    .and_then(Value::as_object_mut)
                                    .and_then(|m| m.get_mut(segment));
                            }
                            if let Some(array) = current.and_then(Value::as_array_mut) {
                                array.push(value.clone());
                            }
                        }
                        Some(_) => {
                            return Err(StoreError::BadUpdate(format!(
                                "$push target {path} is not an array"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn set_creates_and_overwrites() {
        let u = Update::parse(&json!({"$set": {"a.b": 1, "c": "x"}})).unwrap();
        let mut doc = json!({"c": "old"});
        u.apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"a": {"b": 1}, "c": "x"}));
    }

    #[test]
    fn inc_from_missing_and_existing() {
        let u = Update::inc("n", 2.5);
        let mut doc = json!({});
        u.apply(&mut doc).unwrap();
        u.apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"n": 5.0}));
    }

    #[test]
    fn inc_non_number_fails() {
        let u = Update::inc("s", 1.0);
        let mut doc = json!({"s": "text"});
        assert!(matches!(u.apply(&mut doc), Err(StoreError::BadUpdate(_))));
    }

    #[test]
    fn unset_removes_and_tolerates_missing() {
        let u = Update::parse(&json!({"$unset": {"a.b": 1, "ghost": 1}})).unwrap();
        let mut doc = json!({"a": {"b": 2, "keep": 3}});
        u.apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"a": {"keep": 3}}));
    }

    #[test]
    fn push_appends_or_creates() {
        let u = Update::parse(&json!({"$push": {"tags": "new"}})).unwrap();
        let mut doc = json!({"tags": ["old"]});
        u.apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"tags": ["old", "new"]}));

        let mut empty = json!({});
        u.apply(&mut empty).unwrap();
        assert_eq!(empty, json!({"tags": ["new"]}));
    }

    #[test]
    fn push_non_array_fails() {
        let u = Update::parse(&json!({"$push": {"n": 1}})).unwrap();
        let mut doc = json!({"n": 5});
        assert!(u.apply(&mut doc).is_err());
    }

    #[test]
    fn push_into_nested_array() {
        let u = Update::parse(&json!({"$push": {"a.b": 2}})).unwrap();
        let mut doc = json!({"a": {"b": [1]}});
        u.apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"a": {"b": [1, 2]}}));
    }

    #[test]
    fn parse_errors() {
        assert!(Update::parse(&json!(5)).is_err());
        assert!(Update::parse(&json!({"$set": 5})).is_err());
        assert!(Update::parse(&json!({"$bogus": {"a": 1}})).is_err());
        assert!(Update::parse(&json!({"$inc": {"a": "one"}})).is_err());
        assert!(Update::parse(&json!({})).is_err(), "empty update rejected");
    }

    #[test]
    fn set_builder() {
        let mut doc = json!({});
        Update::set("k", 7).apply(&mut doc).unwrap();
        assert_eq!(doc, json!({"k": 7}));
    }

    #[test]
    fn set_through_scalar_fails() {
        let u = Update::set("a.b", 1);
        let mut doc = json!({"a": 3});
        assert!(u.apply(&mut doc).is_err());
    }

    #[test]
    fn to_doc_round_trips_through_parse() {
        let original = json!({
            "$inc": {"retries": 1.0},
            "$push": {"tags": "late"},
            "$set": {"status": "processed", "meta.reason": "ok"},
            "$unset": {"ghost": 1},
        });
        let update = Update::parse(&original).unwrap();
        let encoded = update.to_doc();
        assert_eq!(encoded, original);
        assert_eq!(Update::parse(&encoded).unwrap(), update);
    }

    #[test]
    fn to_doc_encodes_builders_canonically() {
        assert_eq!(Update::set("k", 7).to_doc(), json!({"$set": {"k": 7}}));
        assert_eq!(Update::inc("n", 2.5).to_doc(), json!({"$inc": {"n": 2.5}}));
    }
}
