//! Journey mode: participatory sensing along a path (Section 4.2).
//!
//! "We have further introduced a new mode, called Journey, for
//! participatory sensing. In this mode, the user engages in the
//! measurement of noise across a journey and defines the sensing
//! frequency." A journey is therefore a *sequence*: the user walks (or
//! rides) a path, the app measures at the chosen frequency, GPS is on,
//! and the collected trace may be shared publicly or within a community
//! as a collaborative noise map.

use crate::device::Device;
use mps_simcore::SimRng;
use mps_types::{GeoPoint, Observation, SensingMode, SimDuration, SimTime};

/// Visibility of a completed journey's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JourneyVisibility {
    /// Only the contributing user sees the trace (the app default).
    #[default]
    Private,
    /// Shared within a community.
    Community,
    /// Shared publicly as a collaborative noise map.
    Public,
}

/// A planned journey: a path, a user-chosen sensing period, and the
/// sharing choice.
///
/// # Examples
///
/// ```
/// use mps_mobile::{Device, DeviceConfig, Journey, JourneyVisibility};
/// use mps_simcore::SimRng;
/// use mps_types::{DeviceModel, GeoPoint, SimDuration, SimTime};
///
/// let rng = SimRng::new(5);
/// let mut device = Device::new(DeviceConfig::new(1, DeviceModel::LgeNexus5), &rng);
/// let journey = Journey::new(
///     vec![GeoPoint::new(48.85, 2.34), GeoPoint::new(48.86, 2.36)],
///     SimDuration::from_secs(60),
/// )
/// .with_visibility(JourneyVisibility::Public);
/// let trace = journey.run(&mut device, SimTime::from_hms(0, 17, 0, 0), 10);
/// assert_eq!(trace.observations.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Journey {
    waypoints: Vec<GeoPoint>,
    period: SimDuration,
    visibility: JourneyVisibility,
}

/// The result of running a journey: the ordered observation sequence and
/// its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyTrace {
    /// Observations in capture order, all in [`SensingMode::Journey`].
    pub observations: Vec<Observation>,
    /// The journey's sharing choice.
    pub visibility: JourneyVisibility,
    /// Path length walked, metres.
    pub path_length_m: f64,
}

impl Journey {
    /// Plans a journey along `waypoints` measuring every `period`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given or the period is not
    /// positive.
    pub fn new(waypoints: Vec<GeoPoint>, period: SimDuration) -> Self {
        assert!(
            waypoints.len() >= 2,
            "a journey needs at least two waypoints"
        );
        assert!(
            period > SimDuration::ZERO,
            "sensing period must be positive"
        );
        Self {
            waypoints,
            period,
            visibility: JourneyVisibility::Private,
        }
    }

    /// Plans a random city walk starting at the device's current
    /// position: `legs` segments of a few hundred metres each.
    pub fn random_walk(device: &Device, legs: usize, rng: &mut SimRng) -> Self {
        let mut waypoints = vec![device.position()];
        let mut current = device.position();
        for _ in 0..legs.max(1) {
            let dx = rng.normal(0.0, 350.0);
            let dy = rng.normal(0.0, 350.0);
            current = GeoPoint::from_local_xy(current, dx, dy);
            waypoints.push(current);
        }
        Self::new(waypoints, SimDuration::from_secs(60))
    }

    /// Sets the sharing choice.
    pub fn with_visibility(mut self, visibility: JourneyVisibility) -> Self {
        self.visibility = visibility;
        self
    }

    /// The user-chosen sensing period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Total path length, metres.
    pub fn path_length_m(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].distance_m(w[1]))
            .sum()
    }

    /// Position along the path at parameter `t` in `[0, 1]` (by arc
    /// length).
    pub fn position_at(&self, t: f64) -> GeoPoint {
        let total = self.path_length_m();
        if total <= 0.0 {
            return self.waypoints[0];
        }
        let target = t.clamp(0.0, 1.0) * total;
        let mut walked = 0.0;
        for w in self.waypoints.windows(2) {
            let leg = w[0].distance_m(w[1]);
            if walked + leg >= target && leg > 0.0 {
                let f = (target - walked) / leg;
                let (x, y) = w[1].to_local_xy(w[0]);
                return GeoPoint::from_local_xy(w[0], x * f, y * f);
            }
            walked += leg;
        }
        // mps-lint: allow(L003) -- Journey::new rejects empty waypoint lists, so last() always resolves
        *self.waypoints.last().expect("non-empty")
    }

    /// Runs the journey on a device: `samples` measurements, one every
    /// [`Journey::period`], moving along the path. Every observation is
    /// captured in [`SensingMode::Journey`] (GPS-heavy, per Figure 20).
    pub fn run(&self, device: &mut Device, start: SimTime, samples: usize) -> JourneyTrace {
        let mut observations = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = if samples <= 1 {
                0.0
            } else {
                i as f64 / (samples - 1) as f64
            };
            let at = start + self.period * i as i64;
            let position = self.position_at(t);
            observations.push(device.capture_at_position(at, SensingMode::Journey, position));
        }
        JourneyTrace {
            observations,
            visibility: self.visibility,
            path_length_m: self.path_length_m(),
        }
    }
}

impl JourneyTrace {
    /// Fraction of the trace's observations that are localized (journeys
    /// are GPS-heavy, so this is high).
    pub fn localized_fraction(&self) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        self.observations
            .iter()
            .filter(|o| o.is_localized())
            .count() as f64
            / self.observations.len() as f64
    }

    /// Duration from first to last capture.
    pub fn duration(&self) -> SimDuration {
        match (self.observations.first(), self.observations.last()) {
            (Some(first), Some(last)) => last.captured_at.since(first.captured_at),
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use mps_types::DeviceModel;

    fn device(seed: u64) -> Device {
        Device::new(
            DeviceConfig::new(seed, DeviceModel::SonyD5803),
            &SimRng::new(77),
        )
    }

    fn straight_journey() -> Journey {
        Journey::new(
            vec![GeoPoint::new(48.85, 2.34), GeoPoint::new(48.85, 2.36)],
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn run_produces_ordered_journey_observations() {
        let mut d = device(1);
        let start = SimTime::from_hms(1, 15, 0, 0);
        let trace = straight_journey().run(&mut d, start, 12);
        assert_eq!(trace.observations.len(), 12);
        for (i, obs) in trace.observations.iter().enumerate() {
            assert_eq!(obs.mode, SensingMode::Journey);
            assert_eq!(
                obs.captured_at,
                start + SimDuration::from_secs(30) * i as i64
            );
        }
        assert_eq!(trace.duration(), SimDuration::from_secs(30 * 11));
    }

    #[test]
    fn journeys_are_gps_heavy() {
        let mut d = device(2);
        let mut localized = 0usize;
        let mut gps = 0usize;
        let mut total = 0usize;
        for run in 0..30 {
            let trace = straight_journey().run(&mut d, SimTime::from_hms(run, 10, 0, 0), 20);
            for obs in &trace.observations {
                total += 1;
                if let Some(fix) = &obs.location {
                    localized += 1;
                    if fix.provider == mps_types::LocationProvider::Gps {
                        gps += 1;
                    }
                }
            }
        }
        let loc_frac = localized as f64 / total as f64;
        assert!(loc_frac > 0.85, "journey localized fraction {loc_frac}");
        let gps_share = gps as f64 / localized as f64;
        assert!(gps_share > 0.30, "journey GPS share {gps_share}");
    }

    #[test]
    fn observations_follow_the_path() {
        let mut d = device(3);
        let journey = straight_journey();
        let trace = journey.run(&mut d, SimTime::from_hms(0, 12, 0, 0), 10);
        // Localized fixes stay near the path (within accuracy + path
        // corridor).
        for obs in trace.observations.iter().filter(|o| o.is_localized()) {
            let fix = obs.location.as_ref().unwrap();
            let d0 = journey.position_at(0.0).distance_m(fix.point);
            let d1 = journey.position_at(1.0).distance_m(fix.point);
            let len = journey.path_length_m();
            assert!(
                d0 < len + 800.0 && d1 < len + 800.0,
                "fix strayed: {d0} / {d1} vs path {len}"
            );
        }
    }

    #[test]
    fn position_at_interpolates_arc_length() {
        let j = Journey::new(
            vec![
                GeoPoint::new(48.85, 2.34),
                GeoPoint::new(48.85, 2.35),
                GeoPoint::new(48.86, 2.35),
            ],
            SimDuration::from_secs(10),
        );
        assert_eq!(j.position_at(0.0), GeoPoint::new(48.85, 2.34));
        let end = j.position_at(1.0);
        assert!((end.lat - 48.86).abs() < 1e-9);
        // Midpoint by arc length is near the corner.
        let mid = j.position_at(0.4);
        assert!(mid.lat < 48.8501, "{mid}");
        // Clamps outside [0, 1].
        assert_eq!(j.position_at(-1.0), j.position_at(0.0));
        assert_eq!(j.position_at(2.0), j.position_at(1.0));
    }

    #[test]
    fn path_length_is_sum_of_legs() {
        let j = straight_journey();
        let expected = GeoPoint::new(48.85, 2.34).distance_m(GeoPoint::new(48.85, 2.36));
        assert!((j.path_length_m() - expected).abs() < 1.0);
    }

    #[test]
    fn random_walk_starts_at_device() {
        let mut rng = SimRng::new(9);
        let d = device(4);
        let j = Journey::random_walk(&d, 5, &mut rng);
        assert_eq!(j.position_at(0.0), d.position());
        assert!(j.path_length_m() > 100.0);
    }

    #[test]
    fn visibility_defaults_private() {
        let j = straight_journey();
        let mut d = device(5);
        let trace = j.run(&mut d, SimTime::EPOCH, 3);
        assert_eq!(trace.visibility, JourneyVisibility::Private);
        let public = straight_journey().with_visibility(JourneyVisibility::Public);
        let trace = public.run(&mut d, SimTime::EPOCH, 3);
        assert_eq!(trace.visibility, JourneyVisibility::Public);
    }

    #[test]
    fn single_sample_journey() {
        let mut d = device(6);
        let trace = straight_journey().run(&mut d, SimTime::EPOCH, 1);
        assert_eq!(trace.observations.len(), 1);
        assert_eq!(trace.duration(), SimDuration::ZERO);
    }

    #[test]
    fn empty_trace_fractions() {
        let trace = JourneyTrace {
            observations: vec![],
            visibility: JourneyVisibility::Private,
            path_length_m: 0.0,
        };
        assert_eq!(trace.localized_fraction(), 0.0);
        assert_eq!(trace.duration(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn rejects_single_waypoint() {
        let _ = Journey::new(vec![GeoPoint::PARIS], SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = Journey::new(
            vec![GeoPoint::PARIS, GeoPoint::new(48.86, 2.36)],
            SimDuration::ZERO,
        );
    }
}
