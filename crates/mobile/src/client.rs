//! The GoFlow mobile client (Section 5.3 of the paper).
//!
//! Two client strategies were deployed: one "sends the measurements after
//! each observation (every 5 min by default)", the other "buffers a series
//! of 10 measurements before sending them". "In both cases, if there is no
//! network connection at the time of emission, the measurements are sent
//! at the next cycle." [`GoFlowClient`] implements both, selected by the
//! [`AppVersion`]:
//!
//! * v1.1 / v1.2.9 — unbuffered: every pending observation is sent as its
//!   own message (one radio transfer each);
//! * v1.3 — buffered: observations accumulate until the buffer holds 10,
//!   then ship as a single batch message (one radio transfer).

use mps_broker::{Broker, BrokerError};
use mps_types::{AppVersion, Observation};

/// What a send cycle did — the numbers the energy model charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendOutcome {
    /// Radio transfers performed (broker messages published).
    pub transfers: usize,
    /// Observations shipped across those transfers.
    pub observations: usize,
}

/// A mobile GoFlow client bound to one broker exchange.
///
/// # Examples
///
/// ```
/// use mps_broker::{Broker, ExchangeType};
/// use mps_mobile::GoFlowClient;
/// use mps_types::{AppVersion, DeviceModel, Observation, SimTime, SoundLevel};
///
/// let broker = Broker::new();
/// broker.declare_exchange("ex", ExchangeType::Topic)?;
/// broker.declare_queue("q")?;
/// broker.bind_queue("ex", "q", "#")?;
///
/// let mut client = GoFlowClient::new("ex", "c1.obs.noise.paris", AppVersion::V1_2_9);
/// let obs = Observation::builder()
///     .device(1.into()).user(1.into())
///     .model(DeviceModel::LgeNexus5)
///     .captured_at(SimTime::EPOCH)
///     .spl(SoundLevel::new(50.0))
///     .build();
/// client.record(obs);
/// let sent = client.on_cycle(&broker, true)?;
/// assert_eq!(sent.observations, 1);
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GoFlowClient {
    exchange: String,
    routing_key: String,
    version: AppVersion,
    buffer: Vec<Observation>,
    total_sent: u64,
    total_transfers: u64,
}

impl GoFlowClient {
    /// Creates a client publishing to `exchange` with `routing_key`.
    pub fn new(
        exchange: impl Into<String>,
        routing_key: impl Into<String>,
        version: AppVersion,
    ) -> Self {
        Self {
            exchange: exchange.into(),
            routing_key: routing_key.into(),
            version,
            buffer: Vec::new(),
            total_sent: 0,
            total_transfers: 0,
        }
    }

    /// The client's app version.
    pub fn version(&self) -> AppVersion {
        self.version
    }

    /// Upgrades the client to a newer app version (rollouts keep pending
    /// observations).
    pub fn upgrade(&mut self, version: AppVersion) {
        self.version = version;
    }

    /// Records a freshly captured observation into the send buffer.
    pub fn record(&mut self, observation: Observation) {
        self.buffer.push(observation);
    }

    /// Observations waiting to be sent.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Total observations successfully handed to the broker.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total radio transfers performed.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Whether the client would transmit on this cycle if connected.
    pub fn wants_to_send(&self) -> bool {
        !self.buffer.is_empty() && self.buffer.len() >= self.version.buffer_size()
    }

    /// Runs the emission step of a measurement cycle: transmits pending
    /// observations if connected and due. Disconnected clients keep
    /// everything for the next cycle.
    ///
    /// # Errors
    ///
    /// Propagates broker errors (unknown exchange); the buffer is kept so
    /// the observations are retried on the next cycle.
    pub fn on_cycle(
        &mut self,
        broker: &Broker,
        connected: bool,
    ) -> Result<SendOutcome, BrokerError> {
        if !connected || !self.wants_to_send() {
            return Ok(SendOutcome::default());
        }
        self.flush(broker)
    }

    /// Unconditionally transmits everything pending (used at journey end
    /// and app shutdown). Call only while connected.
    ///
    /// # Errors
    ///
    /// Propagates broker errors; the buffer is kept on failure.
    pub fn flush(&mut self, broker: &Broker) -> Result<SendOutcome, BrokerError> {
        if self.buffer.is_empty() {
            return Ok(SendOutcome::default());
        }
        let outcome = if self.version.is_buffering() {
            // One batch message carrying the whole buffer.
            let payload = serde_json::to_vec(&self.buffer).expect("observations serialize");
            broker.publish(&self.exchange, &self.routing_key, payload)?;
            SendOutcome {
                transfers: 1,
                observations: self.buffer.len(),
            }
        } else {
            // One message — one transfer — per observation.
            let mut sent = 0;
            for obs in &self.buffer {
                let payload = serde_json::to_vec(obs).expect("observation serializes");
                broker.publish(&self.exchange, &self.routing_key, payload)?;
                sent += 1;
            }
            SendOutcome {
                transfers: sent,
                observations: sent,
            }
        };
        self.total_sent += outcome.observations as u64;
        self.total_transfers += outcome.transfers as u64;
        self.buffer.clear();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_broker::ExchangeType;
    use mps_types::{DeviceModel, SimTime, SoundLevel};

    fn broker() -> Broker {
        let b = Broker::new();
        b.declare_exchange("ex", ExchangeType::Topic).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_queue("ex", "q", "#").unwrap();
        b
    }

    fn obs(i: i64) -> Observation {
        Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::SonyD5803)
            .captured_at(SimTime::from_millis(i * 300_000))
            .spl(SoundLevel::new(45.0))
            .build()
    }

    fn client(version: AppVersion) -> GoFlowClient {
        GoFlowClient::new("ex", "c1.obs.noise.FR75013", version)
    }

    #[test]
    fn unbuffered_sends_each_cycle() {
        let b = broker();
        let mut c = client(AppVersion::V1_2_9);
        for i in 0..3 {
            c.record(obs(i));
            let sent = c.on_cycle(&b, true).unwrap();
            assert_eq!(sent.transfers, 1);
            assert_eq!(sent.observations, 1);
        }
        assert_eq!(b.queue_depth("q").unwrap(), 3);
        assert_eq!(c.total_sent(), 3);
        assert_eq!(c.total_transfers(), 3);
    }

    #[test]
    fn buffered_waits_for_ten() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..9 {
            c.record(obs(i));
            let sent = c.on_cycle(&b, true).unwrap();
            assert_eq!(sent.transfers, 0, "cycle {i} must hold");
        }
        assert_eq!(c.pending(), 9);
        c.record(obs(9));
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 1);
        assert_eq!(sent.observations, 10);
        assert_eq!(c.pending(), 0);
        // One broker message carrying ten observations.
        assert_eq!(b.queue_depth("q").unwrap(), 1);
        let d = b.consume("q", 1).unwrap().remove(0);
        let batch: Vec<Observation> = serde_json::from_slice(d.payload()).unwrap();
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn disconnection_defers_to_next_cycle() {
        let b = broker();
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        let sent = c.on_cycle(&b, false).unwrap();
        assert_eq!(sent.transfers, 0);
        assert_eq!(c.pending(), 1);
        c.record(obs(1));
        // Reconnected: both go out, as two messages (unbuffered).
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 2);
        assert_eq!(sent.observations, 2);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn buffered_reconnect_ships_one_batch() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..25 {
            c.record(obs(i));
            c.on_cycle(&b, false).unwrap();
        }
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 1, "all pending in one transfer");
        assert_eq!(sent.observations, 25);
    }

    #[test]
    fn flush_sends_partial_buffer() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..4 {
            c.record(obs(i));
        }
        assert!(!c.wants_to_send());
        let sent = c.flush(&b).unwrap();
        assert_eq!(sent.observations, 4);
        assert_eq!(sent.transfers, 1);
        // Flushing an empty buffer is a no-op.
        assert_eq!(c.flush(&b).unwrap(), SendOutcome::default());
    }

    #[test]
    fn upgrade_keeps_pending() {
        let b = broker();
        let mut c = client(AppVersion::V1_1);
        c.record(obs(0));
        c.on_cycle(&b, false).unwrap();
        c.upgrade(AppVersion::V1_3);
        assert_eq!(c.version(), AppVersion::V1_3);
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn failed_publish_keeps_buffer() {
        let b = Broker::new(); // exchange missing
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        assert!(c.on_cycle(&b, true).is_err());
        assert_eq!(c.pending(), 1);
        assert_eq!(c.total_sent(), 0);
    }

    #[test]
    fn transfer_accounting_favors_buffering() {
        let b = broker();
        let mut unbuffered = client(AppVersion::V1_2_9);
        let mut buffered = client(AppVersion::V1_3);
        for i in 0..100 {
            unbuffered.record(obs(i));
            unbuffered.on_cycle(&b, true).unwrap();
            buffered.record(obs(i));
            buffered.on_cycle(&b, true).unwrap();
        }
        assert_eq!(unbuffered.total_transfers(), 100);
        assert_eq!(buffered.total_transfers(), 10);
        assert_eq!(unbuffered.total_sent(), buffered.total_sent());
    }
}
