//! The GoFlow mobile client (Section 5.3 of the paper).
//!
//! Two client strategies were deployed: one "sends the measurements after
//! each observation (every 5 min by default)", the other "buffers a series
//! of 10 measurements before sending them". "In both cases, if there is no
//! network connection at the time of emission, the measurements are sent
//! at the next cycle." [`GoFlowClient`] implements both, selected by the
//! [`AppVersion`]:
//!
//! * v1.1 / v1.2.9 — unbuffered: every pending observation is sent as its
//!   own message (one radio transfer each);
//! * v1.3 — buffered: observations accumulate until the buffer holds 10,
//!   then ship as a single batch message (one radio transfer).

use crate::retry::RetryPolicy;
use crate::telemetry::telemetry;
use mps_broker::{Broker, BrokerError, BrokerTransport, Message};
use mps_faults::{Link, LinkError, SendTrace};
use mps_simcore::SimRng;
use mps_telemetry::trace::{
    encode_contexts, FlightRecorder, Hop, Outcome, SpanRecord, TraceContext, TraceId,
    SENT_MS_HEADER, TRACE_HEADER,
};
use mps_types::{AppVersion, Observation, SimTime};
use std::collections::VecDeque;

/// Adapts one broker exchange to the [`Link`] transport trait, so the
/// upload path can be driven directly or wrapped in a
/// [`mps_faults::FaultyLink`] for fault-injected runs.
///
/// Generic over any [`BrokerTransport`] — an in-process [`Broker`] (the
/// default) or a remote broker behind a socket (e.g.
/// `mps_net::RemoteBroker`) — so the same client upload path runs
/// embedded in simulations and across a real network boundary.
pub struct BrokerLink<'a, B: BrokerTransport + ?Sized = Broker> {
    broker: &'a B,
    exchange: &'a str,
}

impl<B: BrokerTransport + ?Sized> std::fmt::Debug for BrokerLink<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerLink")
            .field("exchange", &self.exchange)
            .finish_non_exhaustive()
    }
}

impl<B: BrokerTransport + ?Sized> Clone for BrokerLink<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: BrokerTransport + ?Sized> Copy for BrokerLink<'_, B> {}

impl<'a, B: BrokerTransport + ?Sized> BrokerLink<'a, B> {
    /// Creates a link publishing to `exchange` on `broker`.
    pub fn new(broker: &'a B, exchange: &'a str) -> Self {
        Self { broker, exchange }
    }
}

impl<B: BrokerTransport + ?Sized> Link for BrokerLink<'_, B> {
    fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError> {
        self.broker
            .publish(self.exchange, route, payload)
            .map_err(|err| LinkError::Unavailable(err.to_string()))
    }

    fn send_traced(
        &self,
        route: &str,
        payload: &[u8],
        trace: &SendTrace<'_>,
    ) -> Result<usize, LinkError> {
        if trace.contexts.is_empty() {
            return self.send(route, payload);
        }
        let key = route
            .parse()
            .map_err(|err: BrokerError| LinkError::Unavailable(err.to_string()))?;
        let message = Message::new(key, payload.to_vec())
            .with_header(TRACE_HEADER, encode_contexts(trace.contexts))
            .with_header(SENT_MS_HEADER, trace.now_ms.to_string());
        self.broker
            .publish_message(self.exchange, message)
            .map_err(|err| LinkError::Unavailable(err.to_string()))
    }
}

/// Trace bookkeeping for one buffered observation: its propagation
/// context plus the capture time the client-buffer span starts at.
#[derive(Debug, Clone)]
struct ObsTrace {
    ctx: TraceContext,
    captured_ms: i64,
}

/// One serialized upload parked for retry.
#[derive(Debug, Clone)]
struct PendingUpload {
    payload: Vec<u8>,
    observations: usize,
    attempts: u32,
    /// Trace contexts of the observations inside the payload.
    contexts: Vec<TraceContext>,
    /// When the upload entered the retry queue (retry-queue span start).
    parked_at_ms: i64,
}

/// What a send cycle did — the numbers the energy model charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendOutcome {
    /// Radio transfers performed (broker messages published).
    pub transfers: usize,
    /// Observations shipped across those transfers.
    pub observations: usize,
}

/// A mobile GoFlow client bound to one broker exchange.
///
/// # Examples
///
/// ```
/// use mps_broker::{Broker, ExchangeType};
/// use mps_mobile::GoFlowClient;
/// use mps_types::{AppVersion, DeviceModel, Observation, SimTime, SoundLevel};
///
/// let broker = Broker::new();
/// broker.declare_exchange("ex", ExchangeType::Topic)?;
/// broker.declare_queue("q")?;
/// broker.bind_queue("ex", "q", "#")?;
///
/// let mut client = GoFlowClient::new("ex", "c1.obs.noise.paris", AppVersion::V1_2_9);
/// let obs = Observation::builder()
///     .device(1.into()).user(1.into())
///     .model(DeviceModel::LgeNexus5)
///     .captured_at(SimTime::EPOCH)
///     .spl(SoundLevel::new(50.0))
///     .build();
/// client.record(obs);
/// let sent = client.on_cycle(&broker, true)?;
/// assert_eq!(sent.observations, 1);
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GoFlowClient {
    exchange: String,
    routing_key: String,
    version: AppVersion,
    buffer: Vec<Observation>,
    buffer_traces: Vec<ObsTrace>,
    total_sent: u64,
    total_transfers: u64,
    retry: RetryPolicy,
    retry_queue: VecDeque<PendingUpload>,
    next_retry_at: Option<SimTime>,
    retry_rng: SimRng,
    retried_total: u64,
    shed_total: u64,
}

impl GoFlowClient {
    /// Creates a client publishing to `exchange` with `routing_key`.
    pub fn new(
        exchange: impl Into<String>,
        routing_key: impl Into<String>,
        version: AppVersion,
    ) -> Self {
        Self {
            exchange: exchange.into(),
            routing_key: routing_key.into(),
            version,
            buffer: Vec::new(),
            buffer_traces: Vec::new(),
            total_sent: 0,
            total_transfers: 0,
            retry: RetryPolicy::default(),
            retry_queue: VecDeque::new(),
            next_retry_at: None,
            retry_rng: SimRng::new(0).split("mobile.retry", 0),
            retried_total: 0,
            shed_total: 0,
        }
    }

    /// Replaces the retry policy and reseeds the backoff-jitter stream
    /// (builder). Give each simulated client a distinct `jitter_seed` so
    /// their retries de-synchronise.
    pub fn with_retry_policy(mut self, policy: RetryPolicy, jitter_seed: u64) -> Self {
        self.retry = policy;
        self.retry_rng = SimRng::new(jitter_seed).split("mobile.retry", 0);
        self
    }

    /// The client's app version.
    pub fn version(&self) -> AppVersion {
        self.version
    }

    /// Upgrades the client to a newer app version (rollouts keep pending
    /// observations).
    pub fn upgrade(&mut self, version: AppVersion) {
        self.version = version;
    }

    /// Records a freshly captured observation into the send buffer.
    ///
    /// This is where an observation enters the pipeline, so this is where
    /// its trace is minted: a deterministic [`TraceId`] derived from the
    /// device and capture time, with a `sensed` root span in the global
    /// [`FlightRecorder`]. Every later hop extends this trace.
    pub fn record(&mut self, observation: Observation) {
        let trace = TraceId::for_observation(
            observation.device.raw(),
            observation.captured_at.as_millis(),
        );
        let captured_ms = observation.captured_at.as_millis();
        let sensed = FlightRecorder::global().record(
            SpanRecord::new(trace, Hop::Sensed, captured_ms)
                .attr("device", observation.device.to_string()),
        );
        self.buffer_traces.push(ObsTrace {
            ctx: TraceContext::new(trace).child_of(sensed),
            captured_ms,
        });
        self.buffer.push(observation);
    }

    /// Observations waiting to be sent.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Total observations successfully handed to the broker.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total radio transfers performed.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Observations successfully shipped from the retry queue.
    pub fn retried_total(&self) -> u64 {
        self.retried_total
    }

    /// Observations shed from the retry queue — exhausted attempts or
    /// queue overflow. Counted degradation, never silent loss.
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }

    /// Uploads parked in the retry queue.
    pub fn queued_retries(&self) -> usize {
        self.retry_queue.len()
    }

    /// Observations across the parked uploads.
    pub fn retry_backlog(&self) -> usize {
        self.retry_queue.iter().map(|u| u.observations).sum()
    }

    /// When the next retry is due, if the client is backing off.
    pub fn next_retry_at(&self) -> Option<SimTime> {
        self.next_retry_at
    }

    /// Whether the client would transmit on this cycle if connected.
    pub fn wants_to_send(&self) -> bool {
        !self.buffer.is_empty() && self.buffer.len() >= self.version.buffer_size()
    }

    /// Runs the emission step of a measurement cycle: transmits pending
    /// observations if connected and due. Disconnected clients keep
    /// everything for the next cycle.
    ///
    /// # Errors
    ///
    /// Propagates broker errors (unknown exchange); the buffer is kept so
    /// the observations are retried on the next cycle.
    pub fn on_cycle(
        &mut self,
        broker: &(impl BrokerTransport + ?Sized),
        connected: bool,
    ) -> Result<SendOutcome, BrokerError> {
        if !connected || !self.wants_to_send() {
            return Ok(SendOutcome::default());
        }
        self.flush(broker)
    }

    /// Unconditionally transmits everything pending (used at journey end
    /// and app shutdown). Call only while connected.
    ///
    /// # Errors
    ///
    /// Propagates broker errors; the buffer is kept on failure.
    pub fn flush(
        &mut self,
        broker: &(impl BrokerTransport + ?Sized),
    ) -> Result<SendOutcome, BrokerError> {
        if self.buffer.is_empty() {
            return Ok(SendOutcome::default());
        }
        let outcome = if self.version.is_buffering() {
            // One batch message carrying the whole buffer.
            // mps-lint: allow(L003) -- serde_json::to_vec of plain derived-Serialize structs cannot fail
            let payload = serde_json::to_vec(&self.buffer).expect("observations serialize");
            broker.publish(&self.exchange, &self.routing_key, &payload)?;
            SendOutcome {
                transfers: 1,
                observations: self.buffer.len(),
            }
        } else {
            // One message — one transfer — per observation.
            let mut sent = 0;
            for obs in &self.buffer {
                // mps-lint: allow(L003) -- serde_json::to_vec of plain derived-Serialize structs cannot fail
                let payload = serde_json::to_vec(obs).expect("observation serializes");
                broker.publish(&self.exchange, &self.routing_key, &payload)?;
                sent += 1;
            }
            SendOutcome {
                transfers: sent,
                observations: sent,
            }
        };
        self.total_sent += outcome.observations as u64;
        self.total_transfers += outcome.transfers as u64;
        self.buffer.clear();
        // The direct broker path is untraced; the minted traces simply
        // stay open (the traced path is `on_cycle_at` / `flush_at`).
        self.buffer_traces.clear();
        Ok(outcome)
    }

    // ----- resilient upload path over a Link ------------------------------

    /// Runs the emission step of a cycle over a [`Link`] transport with
    /// retry/backoff: the retry backlog goes out first (once its backoff
    /// delay has elapsed), then fresh observations if due. A visible link
    /// failure parks the upload in the bounded retry queue and schedules a
    /// jittered exponential backoff — this method never errors.
    ///
    /// While a backlog exists, fresh traffic is held back: it would arrive
    /// out of order and most likely fail against the same link.
    pub fn on_cycle_at(&mut self, link: &impl Link, connected: bool, now: SimTime) -> SendOutcome {
        let mut outcome = SendOutcome::default();
        if !connected {
            return outcome;
        }
        self.drain_retries(link, now, &mut outcome);
        if self.retry_queue.is_empty() && self.wants_to_send() {
            self.send_fresh(link, now, &mut outcome);
        }
        outcome
    }

    /// Unconditionally transmits the retry backlog and everything pending
    /// over `link`, ignoring backoff delays and batch thresholds (journey
    /// end, app shutdown). Failures park the remainder for later.
    pub fn flush_at(&mut self, link: &impl Link, now: SimTime) -> SendOutcome {
        let mut outcome = SendOutcome::default();
        self.next_retry_at = None;
        self.drain_retries(link, now, &mut outcome);
        if self.retry_queue.is_empty() && !self.buffer.is_empty() {
            self.send_fresh(link, now, &mut outcome);
        }
        outcome
    }

    fn drain_retries(&mut self, link: &impl Link, now: SimTime, outcome: &mut SendOutcome) {
        if self.retry_queue.is_empty() || self.next_retry_at.is_some_and(|due| now < due) {
            return;
        }
        while let Some(mut upload) = self.retry_queue.pop_front() {
            telemetry().retry_attempts.inc();
            let trace = SendTrace::new(now.as_millis(), &upload.contexts);
            match link.send_traced(&self.routing_key, &upload.payload, &trace) {
                Ok(_) => {
                    record_retry_spans(&upload, Outcome::Retried, "shipped", now.as_millis());
                    outcome.transfers += 1;
                    outcome.observations += upload.observations;
                    self.total_transfers += 1;
                    self.total_sent += upload.observations as u64;
                    self.retried_total += upload.observations as u64;
                    telemetry().retry_success.inc();
                }
                Err(_) => {
                    telemetry().upload_failures.inc();
                    upload.attempts += 1;
                    let attempts = upload.attempts;
                    if attempts >= self.retry.max_attempts {
                        record_retry_spans(&upload, Outcome::Shed, "exhausted", now.as_millis());
                        self.shed_total += upload.observations as u64;
                        telemetry().retry_shed.inc();
                    } else {
                        // Not exhausted: back at the head, preserving order.
                        self.retry_queue.push_front(upload);
                    }
                    self.schedule_backoff(attempts, now);
                    return;
                }
            }
        }
        self.next_retry_at = None;
    }

    fn send_fresh(&mut self, link: &impl Link, now: SimTime, outcome: &mut SendOutcome) {
        let uploads = self.assemble_uploads(now.as_millis());
        let mut link_down = false;
        for mut upload in uploads {
            if !link_down {
                let trace = SendTrace::new(now.as_millis(), &upload.contexts);
                match link.send_traced(&self.routing_key, &upload.payload, &trace) {
                    Ok(_) => {
                        outcome.transfers += 1;
                        outcome.observations += upload.observations;
                        self.total_transfers += 1;
                        self.total_sent += upload.observations as u64;
                        continue;
                    }
                    Err(_) => {
                        telemetry().upload_failures.inc();
                        link_down = true;
                        upload.attempts = 1;
                        self.schedule_backoff(1, now);
                    }
                }
            }
            self.park(upload, now.as_millis());
        }
    }

    /// Serialises the buffer into uploads, closing each observation's
    /// `client_buffer` span (capture → assembly) and re-parenting its
    /// context under it so downstream spans hang off the buffer span.
    fn assemble_uploads(&mut self, now_ms: i64) -> Vec<PendingUpload> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        let contexts: Vec<TraceContext> = self
            .buffer_traces
            .drain(..)
            .map(|obs_trace| {
                let span = FlightRecorder::global().record(
                    SpanRecord::new(obs_trace.ctx.trace, Hop::ClientBuffer, now_ms)
                        .started_at(obs_trace.captured_ms)
                        .parent(obs_trace.ctx.parent)
                        .duplicate(obs_trace.ctx.duplicate),
                );
                TraceContext::new(obs_trace.ctx.trace).child_of(span)
            })
            .collect();
        if self.version.is_buffering() {
            // mps-lint: allow(L003) -- serde_json::to_vec of plain derived-Serialize structs cannot fail
            let payload = serde_json::to_vec(&self.buffer).expect("observations serialize");
            let observations = self.buffer.len();
            self.buffer.clear();
            vec![PendingUpload {
                payload,
                observations,
                attempts: 0,
                contexts,
                parked_at_ms: now_ms,
            }]
        } else {
            self.buffer
                .drain(..)
                .zip(contexts)
                .map(|(obs, ctx)| PendingUpload {
                    // mps-lint: allow(L003) -- serde_json::to_vec of plain derived-Serialize structs cannot fail
                    payload: serde_json::to_vec(&obs).expect("observation serializes"),
                    observations: 1,
                    attempts: 0,
                    contexts: vec![ctx],
                    parked_at_ms: now_ms,
                })
                .collect()
        }
    }

    fn park(&mut self, mut upload: PendingUpload, now_ms: i64) {
        upload.parked_at_ms = now_ms;
        if self.retry_queue.len() >= self.retry.max_pending {
            if let Some(shed) = self.retry_queue.pop_front() {
                record_retry_spans(&shed, Outcome::Shed, "overflow", now_ms);
                self.shed_total += shed.observations as u64;
                telemetry().retry_shed.inc();
            } else {
                // max_pending == 0: nothing may park, so the fresh
                // upload itself is the one shed.
                record_retry_spans(&upload, Outcome::Shed, "overflow", now_ms);
                self.shed_total += upload.observations as u64;
                telemetry().retry_shed.inc();
                return;
            }
        }
        self.retry_queue.push_back(upload);
    }

    fn schedule_backoff(&mut self, attempt: u32, now: SimTime) {
        self.next_retry_at = Some(now + self.retry.backoff_delay(attempt, &mut self.retry_rng));
    }
}

/// Records one `retry_queue` span per observation in `upload`, covering
/// its residence in the queue (`parked_at_ms` → `now_ms`). `Retried`
/// marks a successful re-ship (non-terminal); `Shed` is terminal loss.
fn record_retry_spans(upload: &PendingUpload, outcome: Outcome, reason: &str, now_ms: i64) {
    for ctx in &upload.contexts {
        FlightRecorder::global().record(
            SpanRecord::new(ctx.trace, Hop::RetryQueue, now_ms)
                .started_at(upload.parked_at_ms)
                .parent(ctx.parent)
                .duplicate(ctx.duplicate)
                .outcome(outcome)
                .attr("reason", reason.to_owned()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_broker::ExchangeType;
    use mps_types::{DeviceModel, SimDuration, SoundLevel};

    fn broker() -> Broker {
        let b = Broker::new();
        b.declare_exchange("ex", ExchangeType::Topic).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_queue("ex", "q", "#").unwrap();
        b
    }

    fn obs(i: i64) -> Observation {
        Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::SonyD5803)
            .captured_at(SimTime::from_millis(i * 300_000))
            .spl(SoundLevel::new(45.0))
            .build()
    }

    fn client(version: AppVersion) -> GoFlowClient {
        GoFlowClient::new("ex", "c1.obs.noise.FR75013", version)
    }

    #[test]
    fn unbuffered_sends_each_cycle() {
        let b = broker();
        let mut c = client(AppVersion::V1_2_9);
        for i in 0..3 {
            c.record(obs(i));
            let sent = c.on_cycle(&b, true).unwrap();
            assert_eq!(sent.transfers, 1);
            assert_eq!(sent.observations, 1);
        }
        assert_eq!(b.queue_depth("q").unwrap(), 3);
        assert_eq!(c.total_sent(), 3);
        assert_eq!(c.total_transfers(), 3);
    }

    #[test]
    fn buffered_waits_for_ten() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..9 {
            c.record(obs(i));
            let sent = c.on_cycle(&b, true).unwrap();
            assert_eq!(sent.transfers, 0, "cycle {i} must hold");
        }
        assert_eq!(c.pending(), 9);
        c.record(obs(9));
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 1);
        assert_eq!(sent.observations, 10);
        assert_eq!(c.pending(), 0);
        // One broker message carrying ten observations.
        assert_eq!(b.queue_depth("q").unwrap(), 1);
        let d = b.consume("q", 1).unwrap().remove(0);
        let batch: Vec<Observation> = serde_json::from_slice(d.payload()).unwrap();
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn disconnection_defers_to_next_cycle() {
        let b = broker();
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        let sent = c.on_cycle(&b, false).unwrap();
        assert_eq!(sent.transfers, 0);
        assert_eq!(c.pending(), 1);
        c.record(obs(1));
        // Reconnected: both go out, as two messages (unbuffered).
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 2);
        assert_eq!(sent.observations, 2);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn buffered_reconnect_ships_one_batch() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..25 {
            c.record(obs(i));
            c.on_cycle(&b, false).unwrap();
        }
        let sent = c.on_cycle(&b, true).unwrap();
        assert_eq!(sent.transfers, 1, "all pending in one transfer");
        assert_eq!(sent.observations, 25);
    }

    #[test]
    fn flush_sends_partial_buffer() {
        let b = broker();
        let mut c = client(AppVersion::V1_3);
        for i in 0..4 {
            c.record(obs(i));
        }
        assert!(!c.wants_to_send());
        let sent = c.flush(&b).unwrap();
        assert_eq!(sent.observations, 4);
        assert_eq!(sent.transfers, 1);
        // Flushing an empty buffer is a no-op.
        assert_eq!(c.flush(&b).unwrap(), SendOutcome::default());
    }

    #[test]
    fn upgrade_keeps_pending() {
        let b = broker();
        let mut c = client(AppVersion::V1_1);
        c.record(obs(0));
        c.on_cycle(&b, false).unwrap();
        c.upgrade(AppVersion::V1_3);
        assert_eq!(c.version(), AppVersion::V1_3);
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn failed_publish_keeps_buffer() {
        let b = Broker::new(); // exchange missing
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        assert!(c.on_cycle(&b, true).is_err());
        assert_eq!(c.pending(), 1);
        assert_eq!(c.total_sent(), 0);
    }

    /// A `Link` that records payloads and can be told to fail sends.
    #[derive(Default)]
    struct FlakyLink {
        sent: std::cell::RefCell<Vec<Vec<u8>>>,
        failing: std::cell::Cell<bool>,
        attempts: std::cell::Cell<usize>,
    }

    impl Link for FlakyLink {
        fn send(&self, _route: &str, payload: &[u8]) -> Result<usize, LinkError> {
            self.attempts.set(self.attempts.get() + 1);
            if self.failing.get() {
                return Err(LinkError::Unavailable("flaky".into()));
            }
            self.sent.borrow_mut().push(payload.to_vec());
            Ok(1)
        }
    }

    #[test]
    fn on_cycle_at_ships_through_a_broker_link() {
        let b = broker();
        let link = BrokerLink::new(&b, "ex");
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        let sent = c.on_cycle_at(&link, true, SimTime::EPOCH);
        assert_eq!(sent.observations, 1);
        assert_eq!(b.queue_depth("q").unwrap(), 1);
        assert_eq!(c.total_sent(), 1);
        assert_eq!(c.queued_retries(), 0);
    }

    #[test]
    fn visible_failure_parks_and_backs_off() {
        let link = FlakyLink::default();
        link.failing.set(true);
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        let sent = c.on_cycle_at(&link, true, SimTime::EPOCH);
        assert_eq!(sent.observations, 0);
        assert_eq!(c.queued_retries(), 1);
        let due = c.next_retry_at().expect("backoff scheduled");
        assert!(due > SimTime::EPOCH);

        // Before the backoff elapses the link is not even attempted.
        link.failing.set(false);
        let before = link.attempts.get();
        c.on_cycle_at(&link, true, due - SimDuration::from_millis(1));
        assert_eq!(link.attempts.get(), before);
        assert_eq!(c.queued_retries(), 1);

        // Once due, the parked upload ships.
        let sent = c.on_cycle_at(&link, true, due);
        assert_eq!(sent.observations, 1);
        assert_eq!(c.queued_retries(), 0);
        assert_eq!(c.retried_total(), 1);
        assert_eq!(c.total_sent(), 1);
    }

    #[test]
    fn backoff_escalates_and_sheds_after_max_attempts() {
        let link = FlakyLink::default();
        link.failing.set(true);
        let policy = RetryPolicy {
            max_attempts: 3,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut c = client(AppVersion::V1_2_9).with_retry_policy(policy, 1);
        c.record(obs(0));
        let mut now = SimTime::EPOCH;
        c.on_cycle_at(&link, true, now); // fresh failure = attempt 1
        let mut delays = Vec::new();
        while c.queued_retries() > 0 {
            now = c.next_retry_at().expect("backing off");
            delays.push(now);
            c.on_cycle_at(&link, true, now);
        }
        // Attempts 2 and 3 happen from the queue; 3 hits the limit.
        assert_eq!(delays.len(), 2);
        assert_eq!(c.shed_total(), 1);
        assert_eq!(c.total_sent(), 0);
        // Without jitter the second gap is exactly twice the first.
        let gap1 = delays[0].since(SimTime::EPOCH);
        let gap2 = delays[1].since(delays[0]);
        assert_eq!(gap2.as_millis(), 2 * gap1.as_millis());
    }

    #[test]
    fn retry_queue_overflow_sheds_oldest_counted() {
        let link = FlakyLink::default();
        link.failing.set(true);
        let policy = RetryPolicy {
            max_pending: 2,
            ..RetryPolicy::default()
        };
        let mut c = client(AppVersion::V1_2_9).with_retry_policy(policy, 2);
        for i in 0..5 {
            c.record(obs(i));
        }
        c.on_cycle_at(&link, true, SimTime::EPOCH);
        assert_eq!(c.queued_retries(), 2, "bounded queue");
        assert_eq!(c.shed_total(), 3, "overflow is counted, not silent");
        assert_eq!(c.retry_backlog(), 2);
    }

    #[test]
    fn backlog_blocks_fresh_sends_until_cleared() {
        let link = FlakyLink::default();
        link.failing.set(true);
        let mut c = client(AppVersion::V1_2_9);
        c.record(obs(0));
        c.on_cycle_at(&link, true, SimTime::EPOCH);
        assert_eq!(c.queued_retries(), 1);

        // Link recovers, but a fresh observation arrives before the
        // backoff elapses: nothing ships yet, and the buffer holds.
        link.failing.set(false);
        c.record(obs(1));
        c.on_cycle_at(&link, true, SimTime::EPOCH);
        assert_eq!(c.pending(), 1);
        assert_eq!(link.sent.borrow().len(), 0);

        // At the due time the backlog ships first, then the fresh one.
        let due = c.next_retry_at().unwrap();
        let sent = c.on_cycle_at(&link, true, due);
        assert_eq!(sent.observations, 2);
        assert_eq!(c.queued_retries(), 0);
        assert_eq!(c.pending(), 0);
        // Order preserved: obs(0) before obs(1).
        let first: Observation = serde_json::from_slice(&link.sent.borrow()[0]).unwrap();
        assert_eq!(first.captured_at, SimTime::from_millis(0));
    }

    #[test]
    fn flush_at_ignores_backoff_and_thresholds() {
        let link = FlakyLink::default();
        link.failing.set(true);
        let mut c = client(AppVersion::V1_3);
        c.record(obs(0));
        c.flush_at(&link, SimTime::EPOCH);
        assert_eq!(c.queued_retries(), 1);

        link.failing.set(false);
        c.record(obs(1)); // far below the batch-of-10 threshold
        let sent = c.flush_at(&link, SimTime::EPOCH + SimDuration::from_millis(1));
        assert_eq!(sent.observations, 2);
        assert_eq!(c.queued_retries(), 0);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn traced_upload_attaches_context_headers() {
        use mps_telemetry::trace::parse_contexts;
        let device: u64 = 910_001;
        let b = broker();
        let link = BrokerLink::new(&b, "ex");
        let mut c = client(AppVersion::V1_2_9);
        let captured = SimTime::from_millis(300_000);
        c.record(
            Observation::builder()
                .device(device.into())
                .user(1.into())
                .model(DeviceModel::SonyD5803)
                .captured_at(captured)
                .spl(SoundLevel::new(45.0))
                .build(),
        );
        let now = SimTime::from_millis(360_000);
        let sent = c.on_cycle_at(&link, true, now);
        assert_eq!(sent.observations, 1);

        let d = b.consume("q", 1).unwrap().remove(0);
        let header = d.message.header(TRACE_HEADER).expect("trace header");
        let contexts = parse_contexts(header);
        assert_eq!(contexts.len(), 1);
        let trace = TraceId::for_observation(device, captured.as_millis());
        assert_eq!(contexts[0].trace, trace);
        assert!(contexts[0].parent.is_some(), "parented to client_buffer");
        assert!(!contexts[0].duplicate);
        assert_eq!(
            d.message.header(SENT_MS_HEADER),
            Some(now.as_millis().to_string().as_str())
        );

        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let sensed = spans.iter().find(|s| s.hop == Hop::Sensed).unwrap();
        let buffered = spans.iter().find(|s| s.hop == Hop::ClientBuffer).unwrap();
        assert_eq!(sensed.start_ms, captured.as_millis());
        assert_eq!(buffered.start_ms, captured.as_millis());
        assert_eq!(buffered.end_ms, now.as_millis());
        assert_eq!(buffered.parent, Some(sensed.span));
    }

    #[test]
    fn shed_uploads_record_terminal_spans() {
        let device: u64 = 910_002;
        let link = FlakyLink::default();
        link.failing.set(true);
        let policy = RetryPolicy {
            max_attempts: 2,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut c = client(AppVersion::V1_2_9).with_retry_policy(policy, 3);
        let captured = SimTime::EPOCH;
        c.record(
            Observation::builder()
                .device(device.into())
                .user(1.into())
                .model(DeviceModel::SonyD5803)
                .captured_at(captured)
                .spl(SoundLevel::new(45.0))
                .build(),
        );
        let mut now = SimTime::EPOCH;
        c.on_cycle_at(&link, true, now); // fresh failure = attempt 1
        while c.queued_retries() > 0 {
            now = c.next_retry_at().expect("backing off");
            c.on_cycle_at(&link, true, now);
        }
        assert_eq!(c.shed_total(), 1);

        let trace = TraceId::for_observation(device, captured.as_millis());
        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let shed: Vec<_> = spans
            .iter()
            .filter(|s| s.outcome == Outcome::Shed)
            .collect();
        assert_eq!(shed.len(), 1, "exactly one terminal shed span");
        assert_eq!(shed[0].hop, Hop::RetryQueue);
        assert!(shed[0]
            .attrs
            .iter()
            .any(|(k, v)| *k == "reason" && v == "exhausted"));
        assert_eq!(shed[0].end_ms, now.as_millis());
    }

    #[test]
    fn transfer_accounting_favors_buffering() {
        let b = broker();
        let mut unbuffered = client(AppVersion::V1_2_9);
        let mut buffered = client(AppVersion::V1_3);
        for i in 0..100 {
            unbuffered.record(obs(i));
            unbuffered.on_cycle(&b, true).unwrap();
            buffered.record(obs(i));
            buffered.on_cycle(&b, true).unwrap();
        }
        assert_eq!(unbuffered.total_transfers(), 100);
        assert_eq!(buffered.total_transfers(), 10);
        assert_eq!(unbuffered.total_sent(), buffered.total_sent());
    }
}
