//! Microphone and sound-environment models (Figures 14–15).
//!
//! The published per-model SPL distributions share one shape: a dominant
//! peak at low levels (the phone sitting in a quiet room, a pocket or a
//! bag) and a smaller bump at active-environment levels (streets,
//! transport, conversation), with the peak position shifted per model —
//! sensor heterogeneity that calibration can tame *at the model level*.
//!
//! [`SoundEnvironment`] generates the true ambient level as a two-regime
//! mixture whose active-regime weight follows the time of day;
//! [`Microphone`] applies the model bias, a small per-device jitter
//! (Figure 15: devices of one model behave much alike), measurement noise,
//! and the sensor's floor/saturation clamp.

use crate::catalog::ModelProfile;
use mps_simcore::SimRng;
use mps_types::{Activity, SimTime, SoundLevel};

/// Generator of true ambient sound levels around a simulated user.
#[derive(Debug, Clone)]
pub struct SoundEnvironment {
    quiet_center_db: f64,
    active_center_db: f64,
}

impl SoundEnvironment {
    /// Reference quiet-environment level (dB(A)) before model bias.
    pub const QUIET_DB: f64 = 32.0;
    /// Reference active-environment level (dB(A)) before model bias.
    pub const ACTIVE_DB: f64 = 65.0;

    /// Creates the reference environment (no model bias — biases belong to
    /// the microphone, but tests may build shifted environments).
    pub fn new() -> Self {
        Self {
            quiet_center_db: Self::QUIET_DB,
            active_center_db: Self::ACTIVE_DB,
        }
    }

    /// Probability that the user is in an active (noisy) environment at
    /// this hour: low overnight, elevated through the day and the evening.
    pub fn active_weight(at: SimTime, activity: Activity) -> f64 {
        let h = at.fractional_hour();
        // Smooth day curve: near 0.05 at 4 am, near 0.35 around 6 pm.
        let diurnal = 0.2 + 0.15 * ((h - 18.0) * std::f64::consts::PI / 12.0).cos();
        let base = diurnal.clamp(0.05, 0.4);
        // Moving users are far more likely to be in active environments.
        if activity.is_moving() {
            (base + 0.45).min(0.9)
        } else {
            base
        }
    }

    /// Samples the true ambient level at `at` for a user doing `activity`.
    pub fn sample(&self, at: SimTime, activity: Activity, rng: &mut SimRng) -> SoundLevel {
        if rng.chance(Self::active_weight(at, activity)) {
            SoundLevel::new(rng.normal(self.active_center_db, 8.0))
        } else {
            SoundLevel::new(rng.normal(self.quiet_center_db, 4.0))
        }
    }
}

impl Default for SoundEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

/// A phone microphone: model bias + per-device jitter + noise, clamped to
/// the sensor's floor and saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct Microphone {
    model_offset_db: f64,
    device_jitter_db: f64,
    noise_db: f64,
    floor_db: f64,
    saturation_db: f64,
}

impl Microphone {
    /// Standard deviation of the per-device jitter around the model bias
    /// (small: Figure 15 shows devices of one model closely aligned).
    pub const DEVICE_JITTER_STD_DB: f64 = 0.8;

    /// Creates the microphone of one physical device of `profile`'s model;
    /// the per-device jitter is drawn once from `rng` at construction.
    pub fn for_device(profile: &ModelProfile, rng: &mut SimRng) -> Self {
        Self {
            model_offset_db: profile.spl_offset_db,
            device_jitter_db: rng.normal(0.0, Self::DEVICE_JITTER_STD_DB),
            noise_db: 1.5,
            floor_db: 18.0 + profile.spl_offset_db,
            saturation_db: 100.0,
        }
    }

    /// The fixed bias of this physical device (model offset + unit
    /// jitter) — what per-model calibration estimates.
    pub fn bias_db(&self) -> f64 {
        self.model_offset_db + self.device_jitter_db
    }

    /// Measures a true ambient level: raw SPL as the app would report it.
    pub fn measure(&self, truth: SoundLevel, rng: &mut SimRng) -> SoundLevel {
        let raw = truth.db() + self.bias_db() + rng.normal(0.0, self.noise_db);
        SoundLevel::new(raw).clamp(self.floor_db, self.saturation_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::DeviceModel;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn active_weight_bounds() {
        for hour in 0..24 {
            let t = SimTime::from_hms(0, hour, 0, 0);
            let w = SoundEnvironment::active_weight(t, Activity::Still);
            assert!((0.0..=1.0).contains(&w), "hour {hour}: {w}");
        }
    }

    #[test]
    fn evening_is_noisier_than_night() {
        let night = SoundEnvironment::active_weight(SimTime::from_hms(0, 4, 0, 0), Activity::Still);
        let evening =
            SoundEnvironment::active_weight(SimTime::from_hms(0, 18, 0, 0), Activity::Still);
        assert!(evening > night + 0.15, "evening {evening} vs night {night}");
    }

    #[test]
    fn moving_users_hear_more_noise() {
        let t = SimTime::from_hms(0, 12, 0, 0);
        let still = SoundEnvironment::active_weight(t, Activity::Still);
        let vehicle = SoundEnvironment::active_weight(t, Activity::Vehicle);
        assert!(vehicle > still + 0.3);
    }

    #[test]
    fn environment_is_bimodal() {
        let env = SoundEnvironment::new();
        let mut rng = rng();
        let t = SimTime::from_hms(0, 15, 0, 0);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| env.sample(t, Activity::Still, &mut rng).db())
            .collect();
        let quiet = samples.iter().filter(|s| **s < 45.0).count() as f64 / samples.len() as f64;
        let active = samples.iter().filter(|s| **s > 55.0).count() as f64 / samples.len() as f64;
        assert!(quiet > 0.55, "quiet mass {quiet}");
        assert!(active > 0.1, "active mass {active}");
        // Few samples in the valley between the modes.
        let valley = samples
            .iter()
            .filter(|s| (45.0..=55.0).contains(*s))
            .count() as f64
            / samples.len() as f64;
        assert!(valley < 0.15, "valley mass {valley}");
    }

    #[test]
    fn microphone_bias_shifts_measurements() {
        let profile = ModelProfile::for_model(DeviceModel::SamsungGtI9505);
        let mut r = rng();
        let mic = Microphone::for_device(&profile, &mut r);
        let truth = SoundLevel::new(60.0);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| mic.measure(truth, &mut r).db()).sum::<f64>() / n as f64;
        assert!(
            (mean - 60.0 - mic.bias_db()).abs() < 0.2,
            "mean {mean}, bias {}",
            mic.bias_db()
        );
    }

    #[test]
    fn devices_of_one_model_are_similar() {
        let profile = ModelProfile::for_model(DeviceModel::SamsungSmG901f);
        let mut r = rng();
        let mics: Vec<Microphone> = (0..50)
            .map(|_| Microphone::for_device(&profile, &mut r))
            .collect();
        let biases: Vec<f64> = mics.iter().map(Microphone::bias_db).collect();
        let mean = biases.iter().sum::<f64>() / biases.len() as f64;
        let spread = biases
            .iter()
            .map(|b| (b - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(spread < 3.0, "per-device spread {spread} too wide");
        assert!((mean - profile.spl_offset_db).abs() < 0.5);
    }

    #[test]
    fn models_differ_more_than_devices() {
        let mut r = rng();
        let p1 = ModelProfile::all()
            .into_iter()
            .map(|p| p.spl_offset_db)
            .fold(f64::NEG_INFINITY, f64::max);
        let p2 = ModelProfile::all()
            .into_iter()
            .map(|p| p.spl_offset_db)
            .fold(f64::INFINITY, f64::min);
        let model_spread = p1 - p2;
        let profile = ModelProfile::for_model(DeviceModel::SonyD6603);
        let device_biases: Vec<f64> = (0..50)
            .map(|_| Microphone::for_device(&profile, &mut r).bias_db())
            .collect();
        let dmin = device_biases.iter().cloned().fold(f64::INFINITY, f64::min);
        let dmax = device_biases
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            model_spread > (dmax - dmin),
            "models must dominate heterogeneity"
        );
    }

    #[test]
    fn floor_and_saturation_clamp() {
        let profile = ModelProfile::for_model(DeviceModel::LgeNexus5);
        let mut r = rng();
        let mic = Microphone::for_device(&profile, &mut r);
        let silent = mic.measure(SoundLevel::new(0.0), &mut r);
        assert!(silent.db() >= 18.0 + profile.spl_offset_db - 1e-9);
        let blast = mic.measure(SoundLevel::new(140.0), &mut r);
        assert!(blast.db() <= 100.0);
    }
}
