//! Connectivity model (behind the transmission-delay CDF of Figure 17).
//!
//! The paper observes long disconnection periods: with the unbuffered
//! v1.2.9 client, ~30 % of measurements reach the server within 10 s but
//! ~35 % take more than 2 hours. The dominant real-world cause is
//! *Wi-Fi-only* devices (no mobile data): they sense all day and upload
//! when back on home Wi-Fi. The model therefore assigns each device a
//! connectivity class:
//!
//! * [`ConnectivityClass::Cellular`] — data plan; connected essentially
//!   always, with brief random outages;
//! * [`ConnectivityClass::WifiOnly`] — connected only during a per-user
//!   home window (evening to morning);
//! * [`ConnectivityClass::RarelyConnected`] — connected in occasional
//!   bursts only.
//!
//! Connectivity is a *deterministic* function of time for a given device
//! (hash-based), so replays are reproducible and a client retrying "at the
//! next cycle" observes a consistent network state.

use mps_simcore::SimRng;
use mps_types::{AppVersion, SimDuration, SimTime};

/// Population shares of the three classes, tuned to Figure 17's delay mix
/// (≈30 % of v1.2.9 deliveries within 10 s, ≈35 % beyond 2 h).
pub const CLASS_SHARES: [f64; 3] = [0.43, 0.50, 0.07];

/// A device's network situation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectivityClass {
    /// Mobile-data plan: almost always connected.
    Cellular,
    /// No data plan: connected only on home Wi-Fi (evening/night window).
    WifiOnly,
    /// Connected only in occasional short bursts.
    RarelyConnected,
}

impl ConnectivityClass {
    /// Samples a class with the population shares of [`CLASS_SHARES`].
    pub fn sample(rng: &mut SimRng) -> Self {
        match rng.weighted_index(&CLASS_SHARES) {
            0 => ConnectivityClass::Cellular,
            1 => ConnectivityClass::WifiOnly,
            _ => ConnectivityClass::RarelyConnected,
        }
    }
}

/// Deterministic per-device connectivity over time.
#[derive(Debug, Clone)]
pub struct ConnectivityModel {
    class: ConnectivityClass,
    seed: u64,
    /// Wi-Fi home window start hour (inclusive, fractional).
    home_start: f64,
    /// Wi-Fi home window end hour (exclusive, fractional; < start, the
    /// window wraps midnight).
    home_end: f64,
}

fn slot_hash(seed: u64, slot: i64) -> f64 {
    let mut x = seed ^ (slot as u64).wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    (x ^ (x >> 31)) as f64 / u64::MAX as f64
}

impl ConnectivityModel {
    /// Creates the connectivity process of one device; per-device
    /// parameters (home window, hash seed) are drawn once from `rng`.
    pub fn new(class: ConnectivityClass, rng: &mut SimRng) -> Self {
        use rand::RngCore;
        Self {
            class,
            seed: rng.next_u64(),
            home_start: rng.normal(18.5, 1.2).clamp(16.0, 22.0),
            home_end: rng.normal(8.5, 1.0).clamp(6.0, 11.0),
        }
    }

    /// The device's class.
    pub fn class(&self) -> ConnectivityClass {
        self.class
    }

    /// Whether the device has network connectivity at `at`.
    pub fn is_connected(&self, at: SimTime) -> bool {
        match self.class {
            ConnectivityClass::Cellular => {
                // Brief outages: ~4 % of 15-minute slots.
                let slot = at.as_millis().div_euclid(15 * 60 * 1000);
                slot_hash(self.seed, slot) >= 0.04
            }
            ConnectivityClass::WifiOnly => {
                let h = at.fractional_hour();
                h >= self.home_start || h < self.home_end
            }
            ConnectivityClass::RarelyConnected => {
                // Connected in ~18 % of 6-hour blocks.
                let block = at.as_millis().div_euclid(6 * 3600 * 1000);
                slot_hash(self.seed, block) < 0.18
            }
        }
    }

    /// First instant at or after `from` (searched on the client's 5-minute
    /// retry grid, up to `horizon`) at which the device is connected.
    pub fn next_connected(&self, from: SimTime, horizon: SimDuration) -> Option<SimTime> {
        let step = SimDuration::from_mins(5);
        let mut t = from;
        let end = from + horizon;
        while t <= end {
            if self.is_connected(t) {
                return Some(t);
            }
            t += step;
        }
        None
    }
}

/// Transport latency of one (connected) transfer for an app version.
///
/// v1.1 opened a fresh channel per send (slow); v1.2.9 optimised its
/// RabbitMQ usage (Section 5.3), bringing the median under 10 s; v1.3
/// shares v1.2.9's transport.
pub fn transmission_latency(version: AppVersion, rng: &mut SimRng) -> SimDuration {
    let (median_s, sigma): (f64, f64) = match version {
        AppVersion::V1_1 => (22.0, 0.8),
        AppVersion::V1_2_9 | AppVersion::V1_3 => (8.5, 0.9),
    };
    let secs = rng.log_normal(median_s.ln(), sigma).clamp(0.3, 600.0);
    SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(class: ConnectivityClass, seed: u64) -> ConnectivityModel {
        let mut rng = SimRng::new(seed);
        ConnectivityModel::new(class, &mut rng)
    }

    #[test]
    fn class_shares_sum_to_one() {
        assert!((CLASS_SHARES.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_classes_match_shares() {
        let mut rng = SimRng::new(1);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match ConnectivityClass::sample(&mut rng) {
                ConnectivityClass::Cellular => counts[0] += 1,
                ConnectivityClass::WifiOnly => counts[1] += 1,
                ConnectivityClass::RarelyConnected => counts[2] += 1,
            }
        }
        for (i, share) in CLASS_SHARES.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - share).abs() < 0.01, "class {i}: {freq}");
        }
    }

    #[test]
    fn connectivity_is_deterministic() {
        let m = model(ConnectivityClass::Cellular, 2);
        let t = SimTime::from_hms(3, 14, 7, 0);
        assert_eq!(m.is_connected(t), m.is_connected(t));
    }

    #[test]
    fn cellular_is_mostly_connected() {
        let m = model(ConnectivityClass::Cellular, 3);
        let connected = (0..10_000)
            .filter(|i| m.is_connected(SimTime::from_millis(i * 17 * 60 * 1000)))
            .count() as f64
            / 10_000.0;
        assert!(connected > 0.92, "cellular uptime {connected}");
        assert!(connected < 1.0, "outages must exist");
    }

    #[test]
    fn wifi_only_follows_home_window() {
        let m = model(ConnectivityClass::WifiOnly, 4);
        // Midday: out of the home window.
        assert!(!m.is_connected(SimTime::from_hms(1, 13, 0, 0)));
        // Deep night: inside the home window.
        assert!(m.is_connected(SimTime::from_hms(1, 2, 0, 0)));
        assert!(m.is_connected(SimTime::from_hms(1, 23, 0, 0)));
    }

    #[test]
    fn wifi_only_daytime_gap_is_hours_long() {
        let m = model(ConnectivityClass::WifiOnly, 5);
        let from = SimTime::from_hms(2, 10, 0, 0);
        let reconnect = m
            .next_connected(from, SimDuration::from_hours(24))
            .expect("reconnects within a day");
        let wait = reconnect.since(from);
        assert!(
            wait.as_hours_f64() > 5.0 && wait.as_hours_f64() < 13.0,
            "wait {wait}"
        );
    }

    #[test]
    fn rarely_connected_is_mostly_offline() {
        let m = model(ConnectivityClass::RarelyConnected, 6);
        let connected = (0..5_000)
            .filter(|i| m.is_connected(SimTime::from_millis(i * 3600 * 1000)))
            .count() as f64
            / 5_000.0;
        assert!(connected < 0.3, "rare uptime {connected}");
        assert!(connected > 0.05);
    }

    #[test]
    fn next_connected_immediate_when_online() {
        let m = model(ConnectivityClass::WifiOnly, 7);
        let at_home = SimTime::from_hms(0, 23, 30, 0);
        assert_eq!(
            m.next_connected(at_home, SimDuration::from_hours(1)),
            Some(at_home)
        );
    }

    #[test]
    fn next_connected_none_within_short_horizon() {
        let m = model(ConnectivityClass::WifiOnly, 8);
        let midday = SimTime::from_hms(0, 11, 0, 0);
        assert_eq!(m.next_connected(midday, SimDuration::from_mins(30)), None);
    }

    #[test]
    fn latency_improved_in_v1_2_9() {
        let mut rng = SimRng::new(9);
        let n = 20_000;
        let within_10s = |version, rng: &mut SimRng| {
            (0..n)
                .filter(|_| transmission_latency(version, rng).as_secs_f64() <= 10.0)
                .count() as f64
                / n as f64
        };
        let v11 = within_10s(AppVersion::V1_1, &mut rng);
        let v129 = within_10s(AppVersion::V1_2_9, &mut rng);
        assert!(v129 > v11 + 0.2, "v1.2.9 {v129} vs v1.1 {v11}");
        assert!((0.45..0.70).contains(&v129), "v1.2.9 ≤10 s share {v129}");
    }

    #[test]
    fn latency_is_bounded() {
        let mut rng = SimRng::new(10);
        for version in AppVersion::ALL {
            for _ in 0..2_000 {
                let l = transmission_latency(version, &mut rng).as_secs_f64();
                assert!((0.3..=600.0).contains(&l), "{version}: {l}");
            }
        }
    }
}
