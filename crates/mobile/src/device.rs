//! One simulated phone: sensors + behaviour + connectivity + battery.

use crate::activity::ActivityModel;
use crate::battery::{BatteryModel, BatteryParams};
use crate::behavior::UserBehavior;
use crate::catalog::ModelProfile;
use crate::connectivity::{ConnectivityClass, ConnectivityModel};
use crate::location::LocationSampler;
use crate::microphone::{Microphone, SoundEnvironment};
use mps_simcore::SimRng;
use mps_types::{
    AppVersion, DeviceId, DeviceModel, GeoBounds, GeoPoint, Observation, SensingMode, SimTime,
    UserId,
};

/// Static configuration of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Device identifier.
    pub device: DeviceId,
    /// Owning user (one device per user in the study's accounting).
    pub user: UserId,
    /// Phone model.
    pub model: DeviceModel,
    /// Home location; `None` samples one inside Paris at construction.
    pub home: Option<GeoPoint>,
    /// Daily contribution target; `None` uses the model's Figure 9 rate.
    pub measurements_per_day: Option<f64>,
}

impl DeviceConfig {
    /// Creates a config for device/user `id` with the given model and
    /// defaults for everything else.
    pub fn new(id: u64, model: DeviceModel) -> Self {
        Self {
            device: DeviceId::new(id),
            user: UserId::new(id),
            model,
            home: None,
            measurements_per_day: None,
        }
    }

    /// Pins the home location.
    pub fn with_home(mut self, home: GeoPoint) -> Self {
        self.home = Some(home);
        self
    }

    /// Pins the daily contribution target.
    pub fn with_rate(mut self, measurements_per_day: f64) -> Self {
        self.measurements_per_day = Some(measurements_per_day);
        self
    }
}

/// A simulated phone. Construction derives every stochastic component
/// from a per-device RNG stream split off the experiment root, so the
/// device's behaviour depends only on `(root seed, device id)`.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    profile: ModelProfile,
    microphone: Microphone,
    environment: SoundEnvironment,
    location: LocationSampler,
    activity: ActivityModel,
    behavior: UserBehavior,
    connectivity: ConnectivityModel,
    battery: BatteryModel,
    version: AppVersion,
    home: GeoPoint,
    wander_xy: (f64, f64),
    session_slots_left: u32,
    rng: SimRng,
}

impl Device {
    /// Maximum wander distance from home, metres.
    const MAX_WANDER_M: f64 = 4_000.0;

    /// Creates a device from its config, splitting a per-device stream
    /// off `root`.
    pub fn new(config: DeviceConfig, root: &SimRng) -> Self {
        let mut rng = root.split("device", config.device.raw());
        let profile = ModelProfile::interned(config.model).clone();
        let microphone = Microphone::for_device(&profile, &mut rng);
        let location = LocationSampler::for_profile(&profile);
        let activity = ActivityModel::new(&mut rng);
        let rate = config
            .measurements_per_day
            .unwrap_or(profile.measurements_per_device_day);
        let behavior = UserBehavior::new(rate, &mut rng);
        let class = ConnectivityClass::sample(&mut rng);
        let connectivity = ConnectivityModel::new(class, &mut rng);
        let battery = BatteryModel::new(BatteryParams::default(), 1.0);
        let home = config.home.unwrap_or_else(|| {
            let b = GeoBounds::paris();
            b.lerp(rng.uniform(), rng.uniform())
        });
        Self {
            config,
            profile,
            microphone,
            environment: SoundEnvironment::new(),
            location,
            activity,
            behavior,
            connectivity,
            battery,
            version: AppVersion::V1_1,
            home,
            wander_xy: (0.0, 0.0),
            session_slots_left: 0,
            rng,
        }
    }

    /// The device identifier.
    pub fn id(&self) -> DeviceId {
        self.config.device
    }

    /// The owning user.
    pub fn user(&self) -> UserId {
        self.config.user
    }

    /// The model profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The behaviour model.
    pub fn behavior(&self) -> &UserBehavior {
        &self.behavior
    }

    /// The connectivity model.
    pub fn connectivity(&self) -> &ConnectivityModel {
        &self.connectivity
    }

    /// Mutable battery access (the deployment charges idle/radio costs).
    pub fn battery_mut(&mut self) -> &mut BatteryModel {
        &mut self.battery
    }

    /// The battery state.
    pub fn battery(&self) -> &BatteryModel {
        &self.battery
    }

    /// The installed app version.
    pub fn version(&self) -> AppVersion {
        self.version
    }

    /// Installs an app update.
    pub fn set_version(&mut self, version: AppVersion) {
        self.version = version;
    }

    /// The device's home location.
    pub fn home(&self) -> GeoPoint {
        self.home
    }

    /// The device's current position (home + wander).
    pub fn position(&self) -> GeoPoint {
        GeoPoint::from_local_xy(self.home, self.wander_xy.0, self.wander_xy.1)
    }

    /// Whether the device is connected at `at`.
    pub fn is_connected(&self, at: SimTime) -> bool {
        self.connectivity.is_connected(at)
    }

    /// Runs one 5-minute measurement slot: advances activity and
    /// position, then captures an observation if an app-usage session is
    /// active (sessions start per the user's diurnal profile and sense
    /// every 5 minutes while they last — the app's opportunistic
    /// default).
    pub fn maybe_capture(&mut self, at: SimTime) -> Option<Observation> {
        let activity = self.activity.step(&mut self.rng);
        self.step_position(activity.is_moving());
        if self.session_slots_left == 0 {
            let start = self.behavior.session_start_probability(at.hour_of_day());
            if !self.rng.chance(start) {
                return None;
            }
            self.session_slots_left = self.behavior.sample_session_length(&mut self.rng);
        }
        self.session_slots_left -= 1;
        let mode = self.behavior.sample_mode(at.month(), &mut self.rng);
        Some(self.capture_with_activity(at, mode, activity))
    }

    /// Captures one observation right now in the given mode (used by the
    /// lab harnesses and the journey flow).
    pub fn capture(&mut self, at: SimTime, mode: SensingMode) -> Observation {
        let activity = self.activity.step(&mut self.rng);
        self.step_position(activity.is_moving());
        self.capture_with_activity(at, mode, activity)
    }

    /// Captures one observation at an externally-supplied true position —
    /// the journey flow moves the device along its path rather than via
    /// the wander model. The device's wander state is re-anchored so
    /// subsequent opportunistic captures continue from the journey's end.
    pub fn capture_at_position(
        &mut self,
        at: SimTime,
        mode: SensingMode,
        position: GeoPoint,
    ) -> Observation {
        // Exact placement (journeys may leave the usual wander radius);
        // subsequent wander steps clamp back toward home as usual.
        self.wander_xy = position.to_local_xy(self.home);
        let activity = self.activity.step(&mut self.rng);
        self.capture_with_activity(at, mode, activity)
    }

    fn step_position(&mut self, moving: bool) {
        let (x, y) = self.wander_xy;
        if moving {
            let nx =
                (x + self.rng.normal(0.0, 180.0)).clamp(-Self::MAX_WANDER_M, Self::MAX_WANDER_M);
            let ny =
                (y + self.rng.normal(0.0, 180.0)).clamp(-Self::MAX_WANDER_M, Self::MAX_WANDER_M);
            self.wander_xy = (nx, ny);
        } else {
            // Drift back toward home (people return).
            self.wander_xy = (x * 0.97, y * 0.97);
        }
    }

    fn capture_with_activity(
        &mut self,
        at: SimTime,
        mode: SensingMode,
        activity: mps_types::Activity,
    ) -> Observation {
        let truth = self.environment.sample(at, activity, &mut self.rng);
        let spl = self.microphone.measure(truth, &mut self.rng);
        let position = self.position();
        let fix = self.location.sample_fix(mode, position, &mut self.rng);
        let mut builder = Observation::builder()
            .device(self.config.device)
            .user(self.config.user)
            .model(self.config.model)
            .captured_at(at)
            .spl(spl)
            .activity(activity)
            .mode(mode)
            .app_version(self.version);
        if let Some(fix) = fix {
            builder = builder.location(fix);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(seed: u64, model: DeviceModel) -> Device {
        Device::new(DeviceConfig::new(seed, model), &SimRng::new(42))
    }

    #[test]
    fn capture_produces_well_formed_observation() {
        let mut d = device(1, DeviceModel::SamsungGtI9505);
        let at = SimTime::from_hms(2, 15, 0, 0);
        let obs = d.capture(at, SensingMode::Manual);
        assert_eq!(obs.device, DeviceId::new(1));
        assert_eq!(obs.model, DeviceModel::SamsungGtI9505);
        assert_eq!(obs.captured_at, at);
        assert_eq!(obs.mode, SensingMode::Manual);
        assert!(obs.spl.db() > 10.0 && obs.spl.db() <= 100.0);
    }

    #[test]
    fn devices_are_deterministic_given_seed_and_id() {
        let mut a = device(7, DeviceModel::LgeNexus5);
        let mut b = device(7, DeviceModel::LgeNexus5);
        let at = SimTime::from_hms(0, 12, 0, 0);
        assert_eq!(
            a.capture(at, SensingMode::Journey),
            b.capture(at, SensingMode::Journey)
        );
    }

    #[test]
    fn different_devices_differ() {
        let mut a = device(1, DeviceModel::LgeNexus5);
        let mut b = device(2, DeviceModel::LgeNexus5);
        let at = SimTime::from_hms(0, 12, 0, 0);
        assert_ne!(
            a.capture(at, SensingMode::Manual),
            b.capture(at, SensingMode::Manual)
        );
    }

    #[test]
    fn maybe_capture_rate_tracks_behavior() {
        let mut d = Device::new(
            DeviceConfig::new(3, DeviceModel::SonyD6603).with_rate(144.0),
            &SimRng::new(9),
        );
        // Simulate twenty days of 5-minute slots (sessions make single
        // days very bursty; average over many).
        let days = 20;
        let mut captured = 0;
        for slot in 0..(288 * days) {
            let at = SimTime::from_millis(slot * 300_000);
            if d.maybe_capture(at).is_some() {
                captured += 1;
            }
        }
        let per_day = captured as f64 / days as f64;
        // 144/day expectation; generous band for session burstiness.
        assert!((90.0..200.0).contains(&per_day), "captured {per_day}/day");
    }

    #[test]
    fn localized_fraction_tracks_profile() {
        let mut d = device(5, DeviceModel::SonyD5803); // 71 % localized
        let mut localized = 0;
        let n = 3_000;
        for i in 0..n {
            let at = SimTime::from_millis(i * 300_000);
            if d.capture(at, SensingMode::Opportunistic).is_localized() {
                localized += 1;
            }
        }
        let frac = f64::from(localized) / f64::from(n as u32);
        assert!((frac - 0.71).abs() < 0.05, "localized {frac}");
    }

    #[test]
    fn position_stays_within_wander_bounds() {
        let mut d = device(6, DeviceModel::OneplusA0001);
        for i in 0..2_000 {
            let _ = d.capture(SimTime::from_millis(i * 300_000), SensingMode::Journey);
            let dist = d.home().distance_m(d.position());
            assert!(dist <= 6_000.0, "wandered {dist} m");
        }
    }

    #[test]
    fn homes_are_inside_paris() {
        for id in 0..50 {
            let d = device(id, DeviceModel::LgeLgD855);
            assert!(GeoBounds::paris().contains(d.home()), "device {id}");
        }
    }

    #[test]
    fn version_upgrades_apply_to_new_captures() {
        let mut d = device(8, DeviceModel::SamsungGtP5210);
        assert_eq!(d.version(), AppVersion::V1_1);
        d.set_version(AppVersion::V1_3);
        let obs = d.capture(SimTime::from_hms(0, 10, 0, 0), SensingMode::Opportunistic);
        assert_eq!(obs.app_version, AppVersion::V1_3);
    }

    #[test]
    fn battery_is_accessible_and_full_initially() {
        let mut d = device(9, DeviceModel::HtcOneM8);
        assert!((d.battery().soc() - 1.0).abs() < 1e-12);
        d.battery_mut().drain_measurement(true);
        assert!(d.battery().soc() < 1.0);
    }

    #[test]
    fn connectivity_class_is_deterministic_per_device() {
        let a = device(10, DeviceModel::SonyD2303);
        let b = device(10, DeviceModel::SonyD2303);
        assert_eq!(a.connectivity().class(), b.connectivity().class());
    }
}
