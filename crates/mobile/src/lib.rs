//! # mps-mobile — device & crowd simulator and the GoFlow mobile client
//!
//! The paper's analyses consume observation streams from 2 091 real phones
//! of 20 models. This crate is the simulation substitute (see DESIGN.md):
//! statistically-faithful models of the phones, their sensors, their users
//! and their connectivity, plus a faithful implementation of the GoFlow
//! *mobile client* (the part of SoundCity that records, buffers and ships
//! observations).
//!
//! Components:
//!
//! * [`ModelProfile`] — per-model calibration targets derived from the
//!   paper's Figure 9 plus model-specific sensor characteristics.
//! * [`Microphone`] and [`SoundEnvironment`] — the two-regime SPL model
//!   behind Figures 14–15 (quiet-environment peak + active-environment
//!   bump, shifted per model).
//! * [`LocationSampler`] — availability, provider mix and per-provider
//!   accuracy distributions behind Figures 10–13 and 20.
//! * [`activity_chain`] — the activity Markov model behind Figure 21.
//! * [`UserBehavior`] — per-user diurnal participation profiles behind
//!   Figures 18–19.
//! * [`ConnectivityModel`] — connectivity classes (cellular-data,
//!   Wi-Fi-only, rarely-connected) behind the delay CDF of Figure 17.
//! * [`BatteryModel`] and [`RadioKind`] — the energy model behind the
//!   battery-depletion lab of Figure 16.
//! * [`GoFlowClient`] — the versioned client (v1.1 / v1.2.9 / v1.3) with
//!   send-every-cycle vs buffer-10 behaviour and retry-on-next-cycle, plus
//!   a resilient upload path ([`GoFlowClient::on_cycle_at`]) that retries
//!   visible failures with jittered exponential backoff ([`RetryPolicy`])
//!   through any [`mps_faults::Link`] transport ([`BrokerLink`] adapts a
//!   broker exchange).
//! * [`Device`] — one simulated phone tying the models together.
//! * [`Fleet`] — a lazily-derived crowd of up to millions of devices:
//!   members are pure functions of `(seed, index)` over the interned
//!   model catalog, with the population diurnal load shape and a
//!   round-robin shard partition for scale-out driving.
//!
//! # Examples
//!
//! ```
//! use mps_mobile::{Device, DeviceConfig};
//! use mps_simcore::SimRng;
//! use mps_types::{DeviceModel, SensingMode, SimTime};
//!
//! let rng = SimRng::new(7);
//! let mut device = Device::new(DeviceConfig::new(1, DeviceModel::LgeNexus5), &rng);
//! let obs = device.capture(SimTime::from_hms(0, 12, 0, 0), SensingMode::Opportunistic);
//! assert_eq!(obs.model, DeviceModel::LgeNexus5);
//! ```

mod activity;
mod battery;
mod behavior;
mod catalog;
mod client;
mod connectivity;
mod device;
mod fleet;
mod journey;
mod location;
mod microphone;
#[cfg(test)]
mod proptests;
mod retry;
mod telemetry;

pub use activity::{activity_chain, ActivityModel, TARGET_ACTIVITY_SHARES};
pub use battery::{BatteryModel, BatteryParams, RadioKind};
pub use behavior::UserBehavior;
pub use catalog::ModelProfile;
pub use client::{BrokerLink, GoFlowClient, SendOutcome};
pub use connectivity::{transmission_latency, ConnectivityClass, ConnectivityModel, CLASS_SHARES};
pub use device::{Device, DeviceConfig};
pub use fleet::Fleet;
pub use journey::{Journey, JourneyTrace, JourneyVisibility};
pub use location::LocationSampler;
pub use microphone::{Microphone, SoundEnvironment};
pub use retry::RetryPolicy;
