//! Per-user participation behaviour (Figures 18–19).
//!
//! Population-level, contributions peak between 10:00 and 21:00
//! (Figure 18), but individual users differ widely (Figure 19) — and the
//! paper concludes that this heterogeneity is an asset: together the crowd
//! covers all 24 hours. [`UserBehavior`] models one user's diurnal
//! participation curve (a population day-shape, phase-shifted and
//! amplitude-distorted per user), their expected contribution volume, and
//! their choice of sensing mode.

use mps_simcore::SimRng;
use mps_types::SensingMode;

/// Opportunistic sampling period: one measurement slot every 5 minutes
/// (the app default).
pub const SLOTS_PER_HOUR: f64 = 12.0;

/// Deployment month in which the Journey mode shipped ("released only
/// recently", Section 6.2 — with app v1.3 near the end of the study).
pub const JOURNEY_RELEASE_MONTH: i64 = 9;

/// Population-average hourly participation weights (relative): quiet
/// overnight, high 10:00–21:00.
const POPULATION_DAY_SHAPE: [f64; 24] = [
    0.10, 0.07, 0.05, 0.05, 0.05, 0.08, // 00–05
    0.18, 0.35, 0.55, 0.75, 0.95, 1.00, // 06–11
    1.00, 0.95, 0.90, 0.90, 0.95, 1.00, // 12–17
    1.00, 1.00, 0.95, 0.85, 0.55, 0.25, // 18–23
];

/// One user's participation behaviour.
///
/// # Examples
///
/// ```
/// use mps_mobile::UserBehavior;
/// use mps_simcore::SimRng;
///
/// let mut rng = SimRng::new(3);
/// let user = UserBehavior::new(30.0, &mut rng);
/// let noon = user.slot_probability(12);
/// let night = user.slot_probability(3);
/// assert!(noon >= 0.0 && noon <= 1.0);
/// # let _ = night;
/// ```
#[derive(Debug, Clone)]
pub struct UserBehavior {
    /// Per-hour probability that a 5-minute slot produces a measurement.
    slot_prob: [f64; 24],
    /// Per-slot probability of a manual "sense now" measurement.
    manual_rate: f64,
    /// Per-slot probability of a journey measurement (after release).
    journey_rate: f64,
}

impl UserBehavior {
    /// Creates a user who contributes `measurements_per_day` on average,
    /// with an individual phase-shifted, amplitude-distorted day shape.
    pub fn new(measurements_per_day: f64, rng: &mut SimRng) -> Self {
        assert!(
            measurements_per_day >= 0.0 && measurements_per_day.is_finite(),
            "bad daily rate {measurements_per_day}"
        );
        // Individual diversity: a circular phase shift of the day shape
        // (night workers, late risers) plus multiplicative noise per hour.
        let phase = rng.normal(0.0, 2.2).round() as i64;
        let mut weights = [0.0f64; 24];
        for (h, w) in weights.iter_mut().enumerate() {
            let src = (h as i64 - phase).rem_euclid(24) as usize;
            let noise = rng.log_normal(0.0, 0.45);
            *w = POPULATION_DAY_SHAPE[src] * noise;
        }
        let total: f64 = weights.iter().sum();
        // Scale so that the expected daily count hits the target:
        // sum_h slot_prob[h] * 12 slots = measurements_per_day.
        let mut slot_prob = [0.0f64; 24];
        for (p, w) in slot_prob.iter_mut().zip(&weights) {
            *p = (measurements_per_day * w / total / SLOTS_PER_HOUR).clamp(0.0, 1.0);
        }
        Self {
            slot_prob,
            // Participatory events are rare relative to background
            // sensing: a couple of manual measurements a week, journeys
            // rarer still.
            manual_rate: (0.0003 + rng.exponential(0.0009)).min(0.02),
            journey_rate: (0.0001 + rng.exponential(0.0004)).min(0.01),
        }
    }

    /// Probability that a 5-minute slot in hour `hour` produces an
    /// opportunistic measurement.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn slot_probability(&self, hour: u32) -> f64 {
        self.slot_prob[hour as usize]
    }

    /// Expected measurements per day for this user.
    pub fn expected_daily(&self) -> f64 {
        self.slot_prob.iter().sum::<f64>() * SLOTS_PER_HOUR
    }

    /// The user's hourly contribution weights, normalised to sum to 1 —
    /// the per-user daily distribution of Figure 19.
    pub fn hourly_distribution(&self) -> [f64; 24] {
        let total: f64 = self.slot_prob.iter().sum();
        let mut out = [0.0f64; 24];
        if total > 0.0 {
            for (o, p) in out.iter_mut().zip(&self.slot_prob) {
                *o = p / total;
            }
        }
        out
    }

    /// Samples the sensing mode of a measurement slot (participatory
    /// events replace the background measurement when they fire). Journey
    /// mode only exists from its release month on.
    pub fn sample_mode(&self, month: i64, rng: &mut SimRng) -> SensingMode {
        if month >= JOURNEY_RELEASE_MONTH && rng.chance(self.journey_rate / self.slot_prob_mean()) {
            SensingMode::Journey
        } else if rng.chance(self.manual_rate / self.slot_prob_mean()) {
            SensingMode::Manual
        } else {
            SensingMode::Opportunistic
        }
    }

    fn slot_prob_mean(&self) -> f64 {
        (self.slot_prob.iter().sum::<f64>() / 24.0).max(1e-6)
    }

    /// The population-average day shape (relative weights per hour).
    pub fn population_day_shape() -> [f64; 24] {
        POPULATION_DAY_SHAPE
    }

    /// Mean length of an app-usage session, in 5-minute slots (≈ 1.5 h).
    ///
    /// Sensing is *sessioned*: while the app is active it measures every
    /// slot (the 5-minute default), and sessions start at a rate that
    /// keeps the marginal per-slot capture probability equal to
    /// [`UserBehavior::slot_probability`]. This matches the paper's
    /// buffering arithmetic — a v1.3 buffer of 10 fills in ~50 minutes of
    /// continuous sensing ("the 1-hour delay is due to the default
    /// buffering value").
    pub const MEAN_SESSION_SLOTS: f64 = 18.0;

    /// Probability that a new sensing session starts in a slot of `hour`,
    /// given no session is running. Chosen so the stationary in-session
    /// fraction equals `slot_probability(hour)`: with mean session length
    /// `L` and idle geometric mean `1/q`, the fraction is
    /// `L / (L + 1/q)`, so `q = p / (L (1 - p))`.
    pub fn session_start_probability(&self, hour: u32) -> f64 {
        let p = self.slot_probability(hour).min(0.99);
        (p / (Self::MEAN_SESSION_SLOTS * (1.0 - p))).min(1.0)
    }

    /// Samples a session length in slots (geometric, mean
    /// [`UserBehavior::MEAN_SESSION_SLOTS`], at least 1).
    pub fn sample_session_length(&self, rng: &mut SimRng) -> u32 {
        let u = 1.0 - rng.uniform(); // (0, 1]
        let p = 1.0 / Self::MEAN_SESSION_SLOTS;
        ((u.ln() / (1.0 - p).ln()).ceil() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_daily_hits_target() {
        let mut rng = SimRng::new(1);
        for target in [10.0, 30.0, 60.0] {
            let user = UserBehavior::new(target, &mut rng);
            assert!(
                (user.expected_daily() - target).abs() < 1e-6,
                "target {target}: {}",
                user.expected_daily()
            );
        }
    }

    #[test]
    fn slot_probabilities_are_probabilities() {
        let mut rng = SimRng::new(2);
        let user = UserBehavior::new(100.0, &mut rng);
        for hour in 0..24 {
            let p = user.slot_probability(hour);
            assert!((0.0..=1.0).contains(&p), "hour {hour}: {p}");
        }
    }

    #[test]
    fn population_peaks_in_daytime() {
        // Averaging many users must recover the population day shape:
        // 10:00–21:00 well above the overnight hours.
        let rng = SimRng::new(3);
        let mut sums = [0.0f64; 24];
        for i in 0..400 {
            let user = UserBehavior::new(30.0, &mut rng.split("user", i));
            let dist = user.hourly_distribution();
            for (s, d) in sums.iter_mut().zip(&dist) {
                *s += d;
            }
        }
        let day: f64 = (10..=21).map(|h| sums[h]).sum::<f64>();
        let night: f64 = (0..=5).map(|h| sums[h]).sum::<f64>();
        assert!(day > 4.0 * night, "day {day} vs night {night}");
        // But heterogeneity keeps every hour covered (Section 6.1).
        assert!(sums.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn users_are_diverse() {
        // Phase shifts must move individual peak hours around.
        let rng = SimRng::new(4);
        let mut peak_hours = std::collections::BTreeSet::new();
        for i in 0..60 {
            let user = UserBehavior::new(30.0, &mut rng.split("user", i));
            let dist = user.hourly_distribution();
            let peak = dist
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(h, _)| h)
                .unwrap();
            peak_hours.insert(peak);
        }
        assert!(
            peak_hours.len() >= 5,
            "only {} distinct peak hours",
            peak_hours.len()
        );
    }

    #[test]
    fn hourly_distribution_sums_to_one() {
        let mut rng = SimRng::new(5);
        let user = UserBehavior::new(25.0, &mut rng);
        let total: f64 = user.hourly_distribution().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_user_never_contributes() {
        let mut rng = SimRng::new(6);
        let user = UserBehavior::new(0.0, &mut rng);
        assert_eq!(user.expected_daily(), 0.0);
        assert!(user.hourly_distribution().iter().all(|p| *p == 0.0));
    }

    #[test]
    fn modes_are_mostly_opportunistic() {
        let mut rng = SimRng::new(7);
        let user = UserBehavior::new(30.0, &mut rng);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match user.sample_mode(9, &mut rng) {
                SensingMode::Opportunistic => counts[0] += 1,
                SensingMode::Manual => counts[1] += 1,
                SensingMode::Journey => counts[2] += 1,
            }
        }
        assert!(
            counts[0] as f64 / n as f64 > 0.9,
            "opportunistic {counts:?}"
        );
        assert!(counts[1] > 0 || counts[2] > 0, "some participatory events");
    }

    #[test]
    fn journey_mode_gated_by_release() {
        let mut rng = SimRng::new(8);
        let user = UserBehavior::new(30.0, &mut rng);
        for _ in 0..20_000 {
            assert_ne!(
                user.sample_mode(JOURNEY_RELEASE_MONTH - 1, &mut rng),
                SensingMode::Journey
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad daily rate")]
    fn rejects_negative_rate() {
        let mut rng = SimRng::new(9);
        let _ = UserBehavior::new(-1.0, &mut rng);
    }
}
