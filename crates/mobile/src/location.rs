//! Location availability, provider choice and accuracy (Figures 10–13, 20).
//!
//! Calibration targets from the paper:
//!
//! * ~40 % of observations are localized overall, with the per-model
//!   fractions of Figure 9;
//! * of localized opportunistic observations, ~86 % are network fixes,
//!   ~7 % GPS and ~7 % fused (Figures 11–13);
//! * participatory sensing raises the GPS share by more than 20 points in
//!   manual mode and by ~40 points in journey mode (Figure 20) — the
//!   screen is on and the user consciously senses, so Android serves GPS;
//! * GPS accuracy concentrates in 6–20 m, network in 20–50 m with a
//!   secondary bump just below 100 m (snapped Wi-Fi/cell accuracies), and
//!   fused fixes are "rather low" accuracy (broad, large radii).

use crate::catalog::ModelProfile;
use mps_simcore::SimRng;
use mps_types::{GeoPoint, LocationFix, LocationProvider, SensingMode};

/// GPS-share boost of manual participatory sensing (Figure 20, middle).
pub const MANUAL_GPS_BOOST: f64 = 0.22;
/// GPS-share boost of journey participatory sensing (Figure 20, right).
pub const JOURNEY_GPS_BOOST: f64 = 0.40;

/// Samples location fixes for one device model.
#[derive(Debug, Clone)]
pub struct LocationSampler {
    localized_fraction: f64,
    provider_mix: [f64; 3],
    fused_supported: bool,
}

impl LocationSampler {
    /// Creates the sampler for a model profile.
    pub fn for_profile(profile: &ModelProfile) -> Self {
        Self {
            localized_fraction: profile.localized_fraction,
            provider_mix: profile.provider_mix,
            fused_supported: profile.fused_supported,
        }
    }

    /// Probability that an observation in `mode` is localized at all.
    /// Participatory modes are much more often localized — the user is
    /// consciously sensing with the screen on.
    pub fn localized_probability(&self, mode: SensingMode) -> f64 {
        match mode {
            SensingMode::Opportunistic => self.localized_fraction,
            SensingMode::Manual => (self.localized_fraction * 1.4).min(0.95),
            SensingMode::Journey => (self.localized_fraction * 1.8).min(0.98),
        }
    }

    /// The provider mix effective in `mode`: participatory modes shift
    /// share from network to GPS (Figure 20).
    pub fn provider_mix(&self, mode: SensingMode) -> [f64; 3] {
        let [gps, network, fused] = self.provider_mix;
        let boost = match mode {
            SensingMode::Opportunistic => 0.0,
            SensingMode::Manual => MANUAL_GPS_BOOST,
            SensingMode::Journey => JOURNEY_GPS_BOOST,
        };
        let boost = boost.min(network); // cannot take more than network has
        [gps + boost, network - boost, fused]
    }

    /// Samples the accuracy estimate (metres) a provider would report.
    pub fn sample_accuracy(provider: LocationProvider, rng: &mut SimRng) -> f64 {
        match provider {
            // Median ≈ 11 m; the 6–20 m band holds the bulk of the mass.
            LocationProvider::Gps => rng.log_normal(11.0f64.ln(), 0.40).clamp(3.0, 150.0),
            // Main 20–50 m lobe plus a snapped bump just below 100 m.
            LocationProvider::Network => {
                if rng.chance(0.22) {
                    rng.normal(93.0, 5.0).clamp(60.0, 120.0)
                } else {
                    rng.log_normal(31.0f64.ln(), 0.32).clamp(8.0, 400.0)
                }
            }
            // Broad and rather inaccurate in the paper's data.
            LocationProvider::Fused => rng.log_normal(110.0f64.ln(), 0.75).clamp(15.0, 3000.0),
        }
    }

    /// Samples a fix for an observation in `mode` taken at the true
    /// position `truth`, or `None` when no location was available.
    ///
    /// The reported point is the truth displaced by a Gaussian error with
    /// standard deviation proportional to the reported accuracy, so the
    /// accuracy estimate is honest (≈68 % of fixes within the radius).
    pub fn sample_fix(
        &self,
        mode: SensingMode,
        truth: GeoPoint,
        rng: &mut SimRng,
    ) -> Option<LocationFix> {
        if !rng.chance(self.localized_probability(mode)) {
            return None;
        }
        let mix = self.provider_mix(mode);
        let provider = match rng.weighted_index(&mix) {
            0 => LocationProvider::Gps,
            1 => LocationProvider::Network,
            _ if self.fused_supported => LocationProvider::Fused,
            _ => LocationProvider::Network,
        };
        let accuracy = Self::sample_accuracy(provider, rng);
        // Displace: with sigma = accuracy / 1.515, ~68 % of 2-D errors
        // fall inside the accuracy radius.
        let sigma = accuracy / 1.515;
        let dx = rng.normal(0.0, sigma);
        let dy = rng.normal(0.0, sigma);
        let point = GeoPoint::from_local_xy(truth, dx, dy);
        Some(LocationFix::new(point, accuracy, provider))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::DeviceModel;

    fn sampler() -> LocationSampler {
        LocationSampler::for_profile(&ModelProfile::for_model(DeviceModel::SamsungGtI9505))
    }

    #[test]
    fn gps_accuracy_mostly_6_to_20_m() {
        let mut rng = SimRng::new(1);
        let n = 20_000;
        let inside = (0..n)
            .filter(|_| {
                let a = LocationSampler::sample_accuracy(LocationProvider::Gps, &mut rng);
                (6.0..=20.0).contains(&a)
            })
            .count() as f64
            / n as f64;
        assert!(inside > 0.6, "6–20 m share {inside}");
    }

    #[test]
    fn network_accuracy_mostly_20_to_50_with_100m_bump() {
        let mut rng = SimRng::new(2);
        let n = 30_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| LocationSampler::sample_accuracy(LocationProvider::Network, &mut rng))
            .collect();
        let core = samples
            .iter()
            .filter(|a| (20.0..=50.0).contains(*a))
            .count() as f64
            / n as f64;
        let bump = samples
            .iter()
            .filter(|a| (80.0..=110.0).contains(*a))
            .count() as f64
            / n as f64;
        assert!(core > 0.45, "20–50 m share {core}");
        assert!(bump > 0.12 && bump < 0.35, "~100 m bump share {bump}");
    }

    #[test]
    fn fused_accuracy_is_low() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| LocationSampler::sample_accuracy(LocationProvider::Fused, &mut rng))
            .collect();
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[n / 2]
        };
        assert!(median > 60.0, "fused median {median} should be coarse");
    }

    #[test]
    fn gps_is_most_accurate_provider() {
        let mut rng = SimRng::new(4);
        let mean = |p: LocationProvider, rng: &mut SimRng| {
            (0..5_000)
                .map(|_| LocationSampler::sample_accuracy(p, rng))
                .sum::<f64>()
                / 5_000.0
        };
        let gps = mean(LocationProvider::Gps, &mut rng);
        let network = mean(LocationProvider::Network, &mut rng);
        let fused = mean(LocationProvider::Fused, &mut rng);
        assert!(
            gps < network && network < fused,
            "{gps} < {network} < {fused}"
        );
    }

    #[test]
    fn opportunistic_mix_matches_profile() {
        let s = sampler();
        let mix = s.provider_mix(SensingMode::Opportunistic);
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mix[1] > 0.75, "network dominates opportunistic sensing");
    }

    #[test]
    fn participatory_modes_boost_gps() {
        let s = sampler();
        let opp = s.provider_mix(SensingMode::Opportunistic);
        let manual = s.provider_mix(SensingMode::Manual);
        let journey = s.provider_mix(SensingMode::Journey);
        assert!((manual[0] - opp[0] - MANUAL_GPS_BOOST).abs() < 1e-9);
        assert!((journey[0] - opp[0] - JOURNEY_GPS_BOOST).abs() < 1e-9);
        // Shares remain distributions.
        for mix in [manual, journey] {
            assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(mix.iter().all(|w| *w >= 0.0));
        }
    }

    #[test]
    fn localized_probability_ordering() {
        let s = sampler();
        let opp = s.localized_probability(SensingMode::Opportunistic);
        let manual = s.localized_probability(SensingMode::Manual);
        let journey = s.localized_probability(SensingMode::Journey);
        assert!(opp < manual && manual < journey);
        assert!(journey <= 0.98);
    }

    #[test]
    fn sample_fix_rate_matches_fraction() {
        let s = sampler();
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let localized = (0..n)
            .filter(|_| {
                s.sample_fix(SensingMode::Opportunistic, GeoPoint::PARIS, &mut rng)
                    .is_some()
            })
            .count() as f64
            / n as f64;
        let expected = ModelProfile::for_model(DeviceModel::SamsungGtI9505).localized_fraction;
        assert!(
            (localized - expected).abs() < 0.02,
            "{localized} vs {expected}"
        );
    }

    #[test]
    fn accuracy_estimate_is_honest() {
        // About 68 % of reported points should fall within the reported
        // accuracy radius of the truth.
        let s = sampler();
        let mut rng = SimRng::new(6);
        let truth = GeoPoint::PARIS;
        let mut within = 0;
        let mut total = 0;
        while total < 10_000 {
            if let Some(fix) = s.sample_fix(SensingMode::Journey, truth, &mut rng) {
                total += 1;
                if truth.distance_m(fix.point) <= fix.accuracy_m {
                    within += 1;
                }
            }
        }
        let rate = within as f64 / total as f64;
        assert!((rate - 0.68).abs() < 0.05, "coverage {rate}");
    }

    #[test]
    fn unsupported_fused_falls_back_to_network() {
        // Find a model without fused support.
        let profile = ModelProfile::all()
            .into_iter()
            .find(|p| !p.fused_supported)
            .expect("some model lacks fused");
        let s = LocationSampler::for_profile(&profile);
        let mut rng = SimRng::new(7);
        for _ in 0..5_000 {
            if let Some(fix) = s.sample_fix(SensingMode::Opportunistic, GeoPoint::PARIS, &mut rng) {
                assert_ne!(fix.provider, LocationProvider::Fused);
            }
        }
    }
}
