//! In-crate property tests over the simulation models' invariants.

use crate::{
    BatteryModel, BatteryParams, Device, DeviceConfig, LocationSampler, ModelProfile, RadioKind,
    UserBehavior,
};
use mps_simcore::SimRng;
use mps_types::{DeviceModel, SensingMode, SimDuration, SimTime};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = DeviceModel> {
    (0usize..20).prop_map(|i| DeviceModel::ALL[i])
}

proptest! {
    #[test]
    fn behavior_hits_any_target_rate(rate in 0.0f64..280.0, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let user = UserBehavior::new(rate, &mut rng);
        // Clamping can only lose mass for extreme rates; expected daily
        // stays at or below the target and within it for feasible rates.
        prop_assert!(user.expected_daily() <= rate + 1e-6);
        // With moderate rates no hour clamps, so the target is hit
        // exactly; high rates may clamp busy hours and land below it.
        if rate < 40.0 {
            prop_assert!((user.expected_daily() - rate).abs() < 1e-6);
        }
        let dist: f64 = user.hourly_distribution().iter().sum();
        prop_assert!(dist == 0.0 || (dist - 1.0).abs() < 1e-9);
    }

    #[test]
    fn session_start_probabilities_are_probabilities(rate in 0.0f64..280.0, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let user = UserBehavior::new(rate, &mut rng);
        for hour in 0..24 {
            let q = user.session_start_probability(hour);
            prop_assert!((0.0..=1.0).contains(&q), "hour {}: {}", hour, q);
        }
        for _ in 0..20 {
            prop_assert!(user.sample_session_length(&mut rng) >= 1);
        }
    }

    #[test]
    fn provider_mix_is_distribution_in_every_mode(model in any_model()) {
        let sampler = LocationSampler::for_profile(&ModelProfile::for_model(model));
        for mode in SensingMode::ALL {
            let mix = sampler.provider_mix(mode);
            let sum: f64 = mix.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{:?}: {}", mode, sum);
            prop_assert!(mix.iter().all(|w| (0.0..=1.0).contains(w)));
            let p = sampler.localized_probability(mode);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn captures_are_always_well_formed(model in any_model(), id in 1u64..500, hour in 0u32..24) {
        let mut device = Device::new(DeviceConfig::new(id, model), &SimRng::new(99));
        let at = SimTime::from_hms(3, hour, 0, 0);
        for mode in SensingMode::ALL {
            let obs = device.capture(at, mode);
            prop_assert_eq!(obs.model, model);
            prop_assert_eq!(obs.mode, mode);
            prop_assert!(obs.spl.db() > 5.0 && obs.spl.db() <= 100.0);
            if let Some(fix) = &obs.location {
                prop_assert!(fix.accuracy_m > 0.0 && fix.accuracy_m <= 5_000.0);
                prop_assert!(fix.point.is_valid());
            }
        }
    }

    #[test]
    fn battery_drain_is_monotone(ops in prop::collection::vec(0u8..4, 0..60)) {
        let mut battery = BatteryModel::new(BatteryParams::default(), 1.0);
        let mut last = battery.soc();
        for op in ops {
            match op {
                0 => battery.drain_idle(SimDuration::from_mins(5)),
                1 => battery.drain_measurement(true),
                2 => battery.drain_transfer(RadioKind::Wifi, 1),
                _ => battery.drain_transfer(RadioKind::ThreeG, 10),
            }
            let soc = battery.soc();
            prop_assert!(soc <= last + 1e-12);
            prop_assert!(soc >= 0.0);
            last = soc;
        }
    }

    #[test]
    fn devices_with_same_seed_and_id_agree(model in any_model(), id in 1u64..100, seed in any::<u64>()) {
        let root = SimRng::new(seed);
        let mut a = Device::new(DeviceConfig::new(id, model), &root);
        let mut b = Device::new(DeviceConfig::new(id, model), &root);
        let at = SimTime::from_hms(1, 12, 0, 0);
        prop_assert_eq!(a.maybe_capture(at), b.maybe_capture(at));
        prop_assert_eq!(a.is_connected(at), b.is_connected(at));
    }
}
