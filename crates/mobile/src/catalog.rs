//! Per-model calibration profiles.
//!
//! The simulated crowd must reproduce the per-model statistics of
//! Figure 9 (device counts, contribution volumes, localized fractions) and
//! the model-level sensor heterogeneity of Figures 10–14. Each
//! [`ModelProfile`] packages those targets for one of the top-20 models.

use mps_types::{DeviceModel, LocationProvider};

/// Days of deployment the Figure 9 volumes accumulate over (July 2015 to
/// May 2016 ≈ ten 30-day months).
pub(crate) const DEPLOYMENT_DAYS: f64 = 300.0;

/// Deterministic per-model scatter in `[-1, 1]` derived from the model's
/// table index (SplitMix64 finaliser) — used to spread sensor biases
/// across models without an external RNG.
fn scatter(index: usize, salt: u64) -> f64 {
    let mut x = (index as u64).wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Calibration profile of one device model.
///
/// # Examples
///
/// ```
/// use mps_mobile::ModelProfile;
/// use mps_types::DeviceModel;
///
/// let profile = ModelProfile::for_model(DeviceModel::SamsungGtI9505);
/// assert_eq!(profile.devices, 253);
/// assert!(profile.localized_fraction > 0.3 && profile.localized_fraction < 0.6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// The model this profile describes.
    pub model: DeviceModel,
    /// Devices of this model in the paper's study (Figure 9).
    pub devices: u64,
    /// Mean measurements contributed per device per day (from Figure 9
    /// volumes over the 10-month deployment).
    pub measurements_per_device_day: f64,
    /// Fraction of this model's observations that carry a location fix
    /// (Figure 9, localized / measurements).
    pub localized_fraction: f64,
    /// Microphone response bias of the model in dB — the per-model shift
    /// visible in Figure 14.
    pub spl_offset_db: f64,
    /// Centre of the quiet-environment SPL peak for this model, dB(A).
    pub quiet_center_db: f64,
    /// Centre of the active-environment SPL bump for this model, dB(A).
    pub active_center_db: f64,
    /// Probability that a localized opportunistic observation uses
    /// [GPS, network, fused] (sums to 1; Figures 11–13 shares).
    pub provider_mix: [f64; 3],
    /// Whether the model's Android build exposes the fused provider at
    /// all ("few models provide fused data", Section 5.1).
    pub fused_supported: bool,
}

impl ModelProfile {
    /// Builds the profile for a model from the paper's Figure 9 statistics
    /// plus deterministic model-specific sensor characteristics.
    pub fn for_model(model: DeviceModel) -> Self {
        let stats = model.paper_stats();
        let index = model.index();
        // Microphone bias: models spread over roughly ±6 dB (Figure 14
        // shows quiet-peak positions varying by about a dozen dB across
        // models).
        let spl_offset_db = 6.0 * scatter(index, 1);
        // Population provider mix: 7 % GPS / 86 % network / 7 % fused.
        // Only some models expose fused; their absent fused share folds
        // into network so that the *population* average stays on target.
        let fused_supported = index % 3 != 1;
        let provider_mix = if fused_supported {
            // Slight per-model variation around the population shares.
            let gps = (0.07 + 0.02 * scatter(index, 2)).max(0.01);
            let fused = (0.105 + 0.03 * scatter(index, 3)).max(0.02);
            [gps, 1.0 - gps - fused, fused]
        } else {
            let gps = (0.07 + 0.02 * scatter(index, 2)).max(0.01);
            [gps, 1.0 - gps, 0.0]
        };
        Self {
            model,
            devices: stats.devices,
            measurements_per_device_day: stats.measurements as f64
                / stats.devices as f64
                / DEPLOYMENT_DAYS,
            localized_fraction: stats.localized_fraction(),
            spl_offset_db,
            quiet_center_db: 32.0 + spl_offset_db,
            active_center_db: 65.0 + spl_offset_db,
            provider_mix,
            fused_supported,
        }
    }

    /// Profiles for all top-20 models, in the paper's row order.
    pub fn all() -> Vec<ModelProfile> {
        DeviceModel::ALL
            .iter()
            .map(|m| Self::for_model(*m))
            .collect()
    }

    /// The interned profile catalog, built once per process in the
    /// paper's row order. Fleet-scale code ([`crate::Fleet`]) resolves
    /// profiles by reference instead of recomputing them per device.
    pub fn catalog() -> &'static [ModelProfile] {
        static CATALOG: std::sync::OnceLock<Vec<ModelProfile>> = std::sync::OnceLock::new();
        CATALOG.get_or_init(Self::all)
    }

    /// The interned profile of `model` (same values as
    /// [`ModelProfile::for_model`], shared storage).
    pub fn interned(model: DeviceModel) -> &'static ModelProfile {
        &Self::catalog()[model.index()]
    }

    /// Samples a location provider from the profile's mix using a uniform
    /// draw in `[0, 1)`.
    pub fn provider_for(&self, u: f64) -> LocationProvider {
        let [gps, network, _fused] = self.provider_mix;
        if u < gps {
            LocationProvider::Gps
        } else if u < gps + network {
            LocationProvider::Network
        } else {
            LocationProvider::Fused
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_models() {
        let all = ModelProfile::all();
        assert_eq!(all.len(), 20);
        let total_devices: u64 = all.iter().map(|p| p.devices).sum();
        assert_eq!(total_devices, 2_091);
    }

    #[test]
    fn rates_reproduce_paper_volumes() {
        // Per-device-day rate times devices times deployment days must
        // recover the Figure 9 measurement volume.
        for profile in ModelProfile::all() {
            let reconstructed =
                profile.measurements_per_device_day * profile.devices as f64 * DEPLOYMENT_DAYS;
            let expected = profile.model.paper_stats().measurements as f64;
            assert!(
                (reconstructed - expected).abs() / expected < 1e-9,
                "{}: {reconstructed} vs {expected}",
                profile.model
            );
        }
    }

    #[test]
    fn rates_are_plausible_for_5_minute_sampling() {
        // Opportunistic sensing fires every 5 minutes; even the heaviest
        // contributors cannot exceed 288 measurements/day on average.
        for profile in ModelProfile::all() {
            assert!(
                profile.measurements_per_device_day > 5.0
                    && profile.measurements_per_device_day < 288.0,
                "{}: {}",
                profile.model,
                profile.measurements_per_device_day
            );
        }
    }

    #[test]
    fn localized_fractions_match_figure_9() {
        let profile = ModelProfile::for_model(DeviceModel::SonyD5803);
        // 778 732 / 1 097 018 ≈ 0.71.
        assert!((profile.localized_fraction - 0.7099).abs() < 0.001);
        let profile = ModelProfile::for_model(DeviceModel::HtcOneM8);
        // 177 342 / 854 593 ≈ 0.2075.
        assert!((profile.localized_fraction - 0.2075).abs() < 0.001);
    }

    #[test]
    fn spl_offsets_vary_across_models() {
        let offsets: Vec<f64> = ModelProfile::all()
            .iter()
            .map(|p| p.spl_offset_db)
            .collect();
        let min = offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = offsets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 5.0, "spread {min}..{max} too narrow");
        assert!(offsets.iter().all(|o| o.abs() <= 6.0));
    }

    #[test]
    fn quiet_and_active_centers_follow_offset() {
        for p in ModelProfile::all() {
            assert!((p.quiet_center_db - (32.0 + p.spl_offset_db)).abs() < 1e-12);
            assert!(p.active_center_db > p.quiet_center_db + 20.0);
        }
    }

    #[test]
    fn provider_mix_sums_to_one() {
        for p in ModelProfile::all() {
            let sum: f64 = p.provider_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", p.model);
            assert!(p.provider_mix.iter().all(|w| *w >= 0.0));
            if !p.fused_supported {
                assert_eq!(p.provider_mix[2], 0.0);
            }
        }
    }

    #[test]
    fn some_models_lack_fused() {
        let all = ModelProfile::all();
        let without: usize = all.iter().filter(|p| !p.fused_supported).count();
        assert!(
            without >= 4,
            "expected several models without fused, got {without}"
        );
        assert!(without <= 10);
    }

    #[test]
    fn population_provider_mix_near_paper_shares() {
        // Weight per model by localized volume; the population averages
        // must come out near 7 / 86 / 7.
        let all = ModelProfile::all();
        let mut weighted = [0.0f64; 3];
        let mut total = 0.0;
        for p in &all {
            let w = p.model.paper_stats().localized as f64;
            for (acc, share) in weighted.iter_mut().zip(&p.provider_mix) {
                *acc += w * share;
            }
            total += w;
        }
        for w in &mut weighted {
            *w /= total;
        }
        assert!((weighted[0] - 0.07).abs() < 0.02, "gps {}", weighted[0]);
        assert!((weighted[1] - 0.86).abs() < 0.04, "network {}", weighted[1]);
        assert!((weighted[2] - 0.07).abs() < 0.03, "fused {}", weighted[2]);
    }

    #[test]
    fn provider_for_maps_uniform_draws() {
        let p = ModelProfile::for_model(DeviceModel::SamsungGtI9505);
        assert_eq!(p.provider_for(0.0), LocationProvider::Gps);
        assert_eq!(p.provider_for(0.5), LocationProvider::Network);
        assert_eq!(
            p.provider_for(0.999),
            if p.fused_supported {
                LocationProvider::Fused
            } else {
                LocationProvider::Network
            }
        );
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = ModelProfile::for_model(DeviceModel::LgeNexus4);
        let b = ModelProfile::for_model(DeviceModel::LgeNexus4);
        assert_eq!(a, b);
    }
}
