//! A million-device crowd without a million structs.
//!
//! The paper's deployment had 2 091 phones; the scale-out question (what
//! does the pipeline sustain at metropolitan scale?) needs orders of
//! magnitude more. [`Fleet`] describes an arbitrarily large crowd by
//! *derivation*, not enumeration: it stores only the root seed, the
//! population size and a 20-row cumulative model-mix table over the
//! interned [`ModelProfile`] catalog. Any member device is materialised
//! on demand — [`Fleet::device`] is a pure function of
//! `(seed, index)` — so holding a 1 000 000-device fleet costs a few
//! hundred bytes, and driving a slice of it costs only the devices
//! actually built.
//!
//! The fleet also exposes the population's **diurnal load shape**
//! (Figure 18: contributions peak 10:00–21:00): per-hour expected
//! observation volumes that the throughput benches use to model peak
//! versus overnight ingest pressure, and a deterministic round-robin
//! partition ([`Fleet::shard_members`]) for driving shards of the fleet
//! from independent workers.

use crate::behavior::{UserBehavior, SLOTS_PER_HOUR};
use crate::catalog::ModelProfile;
use crate::device::{Device, DeviceConfig};
use mps_simcore::SimRng;
use mps_types::DeviceModel;

/// SplitMix64 finaliser — decorrelates consecutive member indices before
/// the model-mix draw so models interleave across the index space.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A lazily-derived crowd of simulated devices. See the [module
/// docs](self).
///
/// # Examples
///
/// ```
/// use mps_mobile::Fleet;
/// use mps_types::{SensingMode, SimTime};
///
/// let fleet = Fleet::new(7, 1_000_000);
/// let mut device = fleet.device(999_999);
/// let obs = device.capture(SimTime::from_hms(0, 12, 0, 0), SensingMode::Opportunistic);
/// assert_eq!(obs.model, fleet.model_of(999_999));
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    root: SimRng,
    seed: u64,
    size: u64,
    /// Cumulative paper device counts, one row per catalog model.
    cumulative: Vec<(u64, DeviceModel)>,
    total_weight: u64,
}

impl Fleet {
    /// Creates a fleet of `size` devices (clamped to at least 1) derived
    /// from `seed`, with the model mix of the paper's Figure 9 device
    /// counts.
    pub fn new(seed: u64, size: u64) -> Self {
        let mut cumulative = Vec::with_capacity(ModelProfile::catalog().len());
        let mut total_weight = 0u64;
        for profile in ModelProfile::catalog() {
            total_weight += profile.devices;
            cumulative.push((total_weight, profile.model));
        }
        Self {
            root: SimRng::new(seed),
            seed,
            size: size.max(1),
            cumulative,
            total_weight,
        }
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> u64 {
        self.size
    }

    /// Always `false` (a fleet has at least one device); present for
    /// clippy's `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The model of member `index`, drawn from the Figure 9 device-count
    /// mix — a pure function of `(seed, index)`.
    pub fn model_of(&self, index: u64) -> DeviceModel {
        let draw = mix(index.wrapping_add(self.seed.wrapping_mul(0x517C_C1B7_2722_0A95)))
            % self.total_weight;
        let row = self.cumulative.partition_point(|(cum, _)| *cum <= draw);
        self.cumulative[row].1
    }

    /// The interned calibration profile of member `index`.
    pub fn profile_of(&self, index: u64) -> &'static ModelProfile {
        ModelProfile::interned(self.model_of(index))
    }

    /// Materialises member `index` — deterministic in `(seed, index)`,
    /// independent of which other members were built before.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn device(&self, index: u64) -> Device {
        assert!(index < self.size, "device {index} of {}", self.size);
        Device::new(DeviceConfig::new(index, self.model_of(index)), &self.root)
    }

    /// Materialises the members of a contiguous index range, lazily.
    ///
    /// # Panics
    ///
    /// The iterator panics when it reaches an out-of-range index.
    pub fn devices(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Device> + '_ {
        range.map(move |i| self.device(i))
    }

    /// The member indices owned by worker `shard` of `shards`
    /// (round-robin: member `i` belongs to shard `i % shards`), so
    /// independent workers can drive disjoint slices of one fleet.
    pub fn shard_members(&self, shard: usize, shards: usize) -> impl Iterator<Item = u64> {
        let shards = shards.max(1) as u64;
        let size = self.size;
        ((shard as u64).min(size)..size).step_by(shards as usize)
    }

    /// Expected observations contributed by the whole fleet per day: the
    /// population size times the device-count-weighted mean of the
    /// catalog's per-device daily rates.
    pub fn expected_observations_per_day(&self) -> f64 {
        let weighted: f64 = ModelProfile::catalog()
            .iter()
            .map(|p| p.devices as f64 * p.measurements_per_device_day)
            .sum();
        self.size as f64 * weighted / self.total_weight as f64
    }

    /// Expected observations contributed by the whole fleet during hour
    /// `hour`, following the population diurnal shape of Figure 18 —
    /// the load model behind the sustained-throughput benches' peak-hour
    /// arrival rates.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn expected_observations_in_hour(&self, hour: u32) -> f64 {
        self.expected_observations_per_day() * Self::diurnal_share(hour)
    }

    /// The fraction of a day's observations that arrive during `hour`
    /// (the Figure 18 population day shape, normalised to sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn diurnal_share(hour: u32) -> f64 {
        let shape = UserBehavior::population_day_shape();
        shape[hour as usize] / shape.iter().sum::<f64>()
    }

    /// Expected observations per 5-minute slot at the daily peak hour —
    /// the arrival pressure a sustained-throughput target must absorb.
    pub fn peak_slot_arrivals(&self) -> f64 {
        let peak = (0..24)
            .map(|h| Self::diurnal_share(h))
            .fold(0.0f64, f64::max);
        self.expected_observations_per_day() * peak / SLOTS_PER_HOUR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{SensingMode, SimTime};

    #[test]
    fn a_million_devices_cost_nothing_until_built() {
        let fleet = Fleet::new(7, 1_000_000);
        assert_eq!(fleet.len(), 1_000_000);
        // Any member materialises directly, without touching the others.
        for index in [0, 1, 499_999, 999_999] {
            let mut device = fleet.device(index);
            let obs = device.capture(SimTime::from_hms(0, 12, 0, 0), SensingMode::Opportunistic);
            assert_eq!(obs.model, fleet.model_of(index));
            assert_eq!(obs.device.raw(), index);
        }
    }

    #[test]
    fn members_are_deterministic_and_order_independent() {
        let a = Fleet::new(42, 1_000_000);
        let b = Fleet::new(42, 1_000_000);
        // b builds other members first; member 123_456 must not care.
        let _ = b.device(5);
        let _ = b.device(999_999);
        let at = SimTime::from_hms(0, 9, 0, 0);
        assert_eq!(
            a.device(123_456).capture(at, SensingMode::Manual),
            b.device(123_456).capture(at, SensingMode::Manual)
        );
        // A different seed derives a different crowd.
        let c = Fleet::new(43, 1_000_000);
        assert_ne!(
            a.device(123_456).capture(at, SensingMode::Manual),
            c.device(123_456).capture(at, SensingMode::Manual)
        );
    }

    #[test]
    fn model_mix_tracks_figure_9_shares() {
        let fleet = Fleet::new(1, 40_000);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..fleet.len() {
            *counts.entry(fleet.model_of(i)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 20, "all models represented");
        for profile in ModelProfile::catalog() {
            let expected = profile.devices as f64 / 2_091.0;
            let got = counts[&profile.model] as f64 / fleet.len() as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "{}: {got} vs {expected}",
                profile.model
            );
        }
    }

    #[test]
    fn shard_members_partition_the_fleet() {
        let fleet = Fleet::new(3, 1_000);
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..4 {
            for index in fleet.shard_members(shard, 4) {
                assert_eq!(index % 4, shard as u64);
                assert!(seen.insert(index), "member {index} owned twice");
            }
        }
        assert_eq!(seen.len(), 1_000);
        // One shard is the whole fleet.
        assert_eq!(fleet.shard_members(0, 1).count(), 1_000);
    }

    #[test]
    fn diurnal_volume_peaks_in_daytime_and_sums_to_a_day() {
        let fleet = Fleet::new(9, 1_000_000);
        let daily = fleet.expected_observations_per_day();
        // ~2k observations per device per month in the paper ⇒ roughly
        // 20–60 per device-day across the mix.
        assert!(daily > 20e6 && daily < 60e6, "daily {daily}");
        let total: f64 = (0..24)
            .map(|h| fleet.expected_observations_in_hour(h))
            .sum();
        assert!((total - daily).abs() / daily < 1e-9);
        let noon = fleet.expected_observations_in_hour(12);
        let night = fleet.expected_observations_in_hour(3);
        assert!(noon > 4.0 * night, "noon {noon} vs night {night}");
        assert!(fleet.peak_slot_arrivals() > daily / 24.0 / SLOTS_PER_HOUR);
    }

    #[test]
    fn interned_profiles_are_shared_and_equal() {
        let by_value = ModelProfile::for_model(DeviceModel::LgeNexus5);
        let interned = ModelProfile::interned(DeviceModel::LgeNexus5);
        assert_eq!(*interned, by_value);
        // Same allocation on every lookup.
        assert!(std::ptr::eq(
            interned,
            ModelProfile::interned(DeviceModel::LgeNexus5)
        ));
    }

    #[test]
    #[should_panic(expected = "device 5 of 5")]
    fn out_of_range_member_panics() {
        let fleet = Fleet::new(1, 5);
        let _ = fleet.device(5);
    }
}
