//! User-activity model (Figure 21).
//!
//! The paper reports that the crowd is still ~70 % of the time, moving
//! (foot / bicycle / vehicle) for less than 10 %, and that ~20 % of
//! observations cannot be qualified (recognition confidence below 80 %).
//! A sticky Markov chain over the seven activity classes with that target
//! stationary distribution generates per-observation activity labels with
//! realistic temporal persistence.

use mps_simcore::{MarkovChain, SimRng};
use mps_types::Activity;

/// Target stationary shares for the seven activity classes, in
/// [`Activity::ALL`] order (undefined, unknown, tilting, still, foot,
/// bicycle, vehicle). Matches Figure 21: 20 % unqualified, 70 % still,
/// < 10 % moving.
pub const TARGET_ACTIVITY_SHARES: [f64; 7] = [0.08, 0.12, 0.03, 0.70, 0.04, 0.01, 0.02];

/// Stickiness of the chain: the probability mass kept on the current
/// state beyond its stationary share. Activities persist across adjacent
/// 5-minute samples.
const STICKINESS: f64 = 0.75;

/// Builds the activity Markov chain.
///
/// The transition matrix is the "lazy" mixture `P = s·I + (1-s)·1·πᵀ`,
/// whose stationary distribution is exactly `π` for any stickiness `s`.
///
/// # Examples
///
/// ```
/// use mps_mobile::activity_chain;
///
/// let chain = activity_chain();
/// let pi = chain.stationary(100);
/// assert!((pi[3] - 0.70).abs() < 1e-9); // still
/// ```
pub fn activity_chain() -> MarkovChain<Activity> {
    let n = Activity::ALL.len();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f64> = TARGET_ACTIVITY_SHARES
            .iter()
            .map(|p| (1.0 - STICKINESS) * p)
            .collect();
        row[i] += STICKINESS;
        rows.push(row);
    }
    // mps-lint: allow(L003) -- rows form a square stochastic matrix by construction, which MarkovChain::new accepts
    MarkovChain::new(Activity::ALL.to_vec(), rows).expect("valid by construction")
}

/// Stateful per-user activity process.
#[derive(Debug, Clone)]
pub struct ActivityModel {
    chain: MarkovChain<Activity>,
    state: usize,
}

impl ActivityModel {
    /// Creates a model starting from a stationary draw.
    pub fn new(rng: &mut SimRng) -> Self {
        let chain = activity_chain();
        let state = rng.weighted_index(&TARGET_ACTIVITY_SHARES);
        Self { chain, state }
    }

    /// The current activity.
    pub fn current(&self) -> Activity {
        *self.chain.state(self.state)
    }

    /// Advances one sampling step and returns the new activity.
    pub fn step(&mut self, rng: &mut SimRng) -> Activity {
        self.state = self.chain.step(self.state, rng);
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = TARGET_ACTIVITY_SHARES.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_matches_targets() {
        let pi = activity_chain().stationary(500);
        for (i, target) in TARGET_ACTIVITY_SHARES.iter().enumerate() {
            assert!(
                (pi[i] - target).abs() < 1e-9,
                "state {i}: {} vs {target}",
                pi[i]
            );
        }
    }

    #[test]
    fn figure_21_aggregates() {
        // Still ≈ 70 %, moving < 10 %, unqualified ≈ 20 %.
        let shares = TARGET_ACTIVITY_SHARES;
        let still = shares[3];
        let moving = shares[4] + shares[5] + shares[6];
        let unqualified = shares[0] + shares[1];
        assert!((still - 0.70).abs() < 1e-12);
        assert!(moving < 0.10);
        assert!((unqualified - 0.20).abs() < 1e-12);
    }

    #[test]
    fn empirical_distribution_converges() {
        let mut rng = SimRng::new(5);
        let mut model = ActivityModel::new(&mut rng);
        let n = 200_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let a = model.step(&mut rng);
            counts[Activity::ALL.iter().position(|x| *x == a).unwrap()] += 1;
        }
        for (i, target) in TARGET_ACTIVITY_SHARES.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - target).abs() < 0.015,
                "{:?}: {freq} vs {target}",
                Activity::ALL[i]
            );
        }
    }

    #[test]
    fn activities_persist() {
        // With stickiness 0.75 the chance of staying put exceeds 3/4 for
        // every state; check empirically on `still`.
        let mut rng = SimRng::new(9);
        let chain = activity_chain();
        let still_index = 3;
        let n = 50_000;
        let stays = (0..n)
            .filter(|_| chain.step(still_index, &mut rng) == still_index)
            .count() as f64
            / n as f64;
        // 0.75 + 0.25 * 0.70 = 0.925.
        assert!((stays - 0.925).abs() < 0.01, "stay prob {stays}");
    }

    #[test]
    fn model_starts_in_valid_state() {
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let model = ActivityModel::new(&mut rng);
            assert!(Activity::ALL.contains(&model.current()));
        }
    }
}
