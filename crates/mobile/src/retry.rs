//! Exponential backoff with jitter for the upload path.
//!
//! The paper's clients retried "at the next cycle" with no backoff, which
//! synchronises the whole fleet into reconnection stampedes after a server
//! outage. [`RetryPolicy`] is the corrective: delays grow geometrically per
//! consecutive failure, are capped, and are jittered per client so retries
//! spread out in time.

use mps_simcore::SimRng;
use mps_types::SimDuration;

/// Retry behaviour of the mobile upload path.
///
/// Used by [`GoFlowClient`](crate::GoFlowClient): a failed upload is parked
/// in a bounded retry queue and re-attempted once the backoff delay has
/// elapsed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied to the delay per consecutive failed attempt.
    pub factor: f64,
    /// Ceiling on the computed delay (before jitter).
    pub max_delay: SimDuration,
    /// Attempts after which an upload is shed from the retry queue
    /// (counted — shedding is graceful degradation, not silent loss).
    pub max_attempts: u32,
    /// Jitter spread in `[0, 1]`: each delay is multiplied by a factor
    /// uniform in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Maximum uploads parked in the retry queue; beyond it the oldest is
    /// shed (counted).
    pub max_pending: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: SimDuration::from_secs(30),
            factor: 2.0,
            max_delay: SimDuration::from_mins(30),
            max_attempts: 8,
            jitter: 0.2,
            max_pending: 256,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based): the
    /// capped geometric backoff `base * factor^(attempt - 1)`, scaled by a
    /// jitter factor drawn from `rng`. Never shorter than 1 ms.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let exponent = attempt.saturating_sub(1).min(63);
        let raw = self.base.as_millis() as f64 * self.factor.powi(exponent as i32);
        let capped = raw.min(self.max_delay.as_millis() as f64);
        let jittered = capped * rng.jitter(self.jitter);
        SimDuration::from_millis((jittered.round() as i64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_until_the_cap() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::new(1);
        let d1 = policy.backoff_delay(1, &mut rng);
        let d2 = policy.backoff_delay(2, &mut rng);
        let d3 = policy.backoff_delay(3, &mut rng);
        assert_eq!(d1, SimDuration::from_secs(30));
        assert_eq!(d2, SimDuration::from_secs(60));
        assert_eq!(d3, SimDuration::from_secs(120));
        // Far beyond the cap the delay stops growing.
        assert_eq!(policy.backoff_delay(20, &mut rng), policy.max_delay);
        assert_eq!(policy.backoff_delay(63, &mut rng), policy.max_delay);
    }

    #[test]
    fn jitter_spreads_but_stays_in_band() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::new(2);
        let base_ms = policy.base.as_millis() as f64;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let d = policy.backoff_delay(1, &mut rng).as_millis();
            assert!((d as f64) >= base_ms * (1.0 - policy.jitter) - 1.0);
            assert!((d as f64) <= base_ms * (1.0 + policy.jitter) + 1.0);
            distinct.insert(d);
        }
        assert!(distinct.len() > 10, "jitter must actually spread delays");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_delay(3, &mut SimRng::new(7));
        let b = policy.backoff_delay(3, &mut SimRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn delay_never_hits_zero() {
        let policy = RetryPolicy {
            base: SimDuration::ZERO,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::new(3);
        assert!(policy.backoff_delay(1, &mut rng) >= SimDuration::from_millis(1));
    }
}
