//! Battery / energy model (behind the depletion lab of Figure 16).
//!
//! Figure 16 compares day-long battery depletion for: no MPS app; the
//! unbuffered client on Wi-Fi; the unbuffered client on 3G; and the
//! buffered client. The published ordering is:
//!
//! * unbuffered on Wi-Fi consumes about **twice** the no-app baseline;
//! * switching to 3G increases depletion by **about 50 %** more (the 3G
//!   radio pays a ramp + tail energy per transfer);
//! * buffering brings the app under **+50 %** over the baseline.
//!
//! The model charges a base (idle) power, a per-measurement sensing cost
//! (microphone + CPU + location), and a per-transfer radio cost with a
//! fixed wake/tail component — the component buffering amortises.

use mps_types::SimDuration;

/// The radio used for transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioKind {
    /// Wi-Fi: cheap wake, no tail.
    Wifi,
    /// Cellular 3G: expensive ramp + tail per transfer.
    ThreeG,
}

/// Energy-model parameters. The defaults reproduce Figure 16's ratios for
/// a typical 2015 flagship (≈10 Wh battery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryParams {
    /// Full battery capacity in joules.
    pub capacity_j: f64,
    /// Baseline (idle, screen-off with periodic activations) power, watts.
    pub base_power_w: f64,
    /// Energy per microphone measurement (sampling + CPU), joules.
    pub sense_energy_j: f64,
    /// Energy per location fix attempt, joules.
    pub location_energy_j: f64,
    /// Fixed energy per Wi-Fi transfer (radio wake), joules.
    pub wifi_transfer_j: f64,
    /// Fixed energy per 3G transfer (ramp + tail), joules.
    pub threeg_transfer_j: f64,
    /// Marginal energy per message inside a transfer, joules.
    pub per_message_j: f64,
}

impl Default for BatteryParams {
    fn default() -> Self {
        Self {
            capacity_j: 36_000.0, // ≈ 2 700 mAh at 3.7 V
            base_power_w: 0.143,
            sense_energy_j: 2.0,
            location_energy_j: 1.5,
            wifi_transfer_j: 4.0,
            threeg_transfer_j: 12.0,
            per_message_j: 0.1,
        }
    }
}

impl BatteryParams {
    /// Fixed transfer cost of a radio.
    pub fn transfer_fixed_j(&self, radio: RadioKind) -> f64 {
        match radio {
            RadioKind::Wifi => self.wifi_transfer_j,
            RadioKind::ThreeG => self.threeg_transfer_j,
        }
    }
}

/// The battery state of one simulated device.
///
/// # Examples
///
/// ```
/// use mps_mobile::{BatteryModel, BatteryParams, RadioKind};
/// use mps_types::SimDuration;
///
/// let mut battery = BatteryModel::new(BatteryParams::default(), 0.8);
/// battery.drain_idle(SimDuration::from_hours(1));
/// battery.drain_measurement(true);
/// battery.drain_transfer(RadioKind::Wifi, 1);
/// assert!(battery.soc() < 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryModel {
    params: BatteryParams,
    charge_j: f64,
}

impl BatteryModel {
    /// Creates a battery at `initial_soc` (state of charge, `0..=1`).
    ///
    /// # Panics
    ///
    /// Panics if `initial_soc` is outside `[0, 1]`.
    pub fn new(params: BatteryParams, initial_soc: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "state of charge {initial_soc} outside [0, 1]"
        );
        Self {
            charge_j: params.capacity_j * initial_soc,
            params,
        }
    }

    /// Current state of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        (self.charge_j / self.params.capacity_j).max(0.0)
    }

    /// Whether the battery is empty.
    pub fn is_empty(&self) -> bool {
        self.charge_j <= 0.0
    }

    fn drain_j(&mut self, joules: f64) {
        self.charge_j = (self.charge_j - joules).max(0.0);
    }

    /// Drains baseline power over a duration.
    pub fn drain_idle(&mut self, duration: SimDuration) {
        let secs = duration.as_secs_f64().max(0.0);
        self.drain_j(self.params.base_power_w * secs);
    }

    /// Drains the cost of one measurement; `with_location` adds the
    /// location-fix cost.
    pub fn drain_measurement(&mut self, with_location: bool) {
        let mut e = self.params.sense_energy_j;
        if with_location {
            e += self.params.location_energy_j;
        }
        self.drain_j(e);
    }

    /// Drains the cost of one transfer of `messages` buffered messages.
    pub fn drain_transfer(&mut self, radio: RadioKind, messages: usize) {
        let e = self.params.transfer_fixed_j(radio) + self.params.per_message_j * messages as f64;
        self.drain_j(e);
    }

    /// The model parameters.
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the paper's lab protocol: `hours` of operation, one
    /// measurement per minute, transfers every `buffer` measurements.
    /// Returns the depletion in SOC percentage points. `radio = None`
    /// means "no MPS app" (baseline only).
    fn lab_run(radio: Option<RadioKind>, buffer: usize, hours: i64) -> f64 {
        let mut battery = BatteryModel::new(BatteryParams::default(), 0.8);
        let start = battery.soc();
        let minutes = hours * 60;
        for minute in 0..minutes {
            battery.drain_idle(SimDuration::from_mins(1));
            if let Some(radio) = radio {
                battery.drain_measurement(true);
                if (minute + 1) % buffer as i64 == 0 {
                    battery.drain_transfer(radio, buffer);
                }
            }
        }
        (start - battery.soc()) * 100.0
    }

    #[test]
    fn figure_16_orderings_hold() {
        let no_app = lab_run(None, 1, 7);
        let wifi_unbuffered = lab_run(Some(RadioKind::Wifi), 1, 7);
        let threeg_unbuffered = lab_run(Some(RadioKind::ThreeG), 1, 7);
        let wifi_buffered = lab_run(Some(RadioKind::Wifi), 10, 7);

        // Unbuffered Wi-Fi ≈ 2× the no-app baseline.
        let ratio = wifi_unbuffered / no_app;
        assert!((1.7..2.3).contains(&ratio), "wifi/no-app {ratio}");

        // 3G ≈ +50 % over unbuffered Wi-Fi.
        let ratio = threeg_unbuffered / wifi_unbuffered;
        assert!((1.35..1.65).contains(&ratio), "3g/wifi {ratio}");

        // Buffered stays under +50 % over the baseline.
        let ratio = wifi_buffered / no_app;
        assert!(ratio < 1.5, "buffered/no-app {ratio}");
        assert!(ratio > 1.1, "the app is not free");

        // Full ordering.
        assert!(no_app < wifi_buffered);
        assert!(wifi_buffered < wifi_unbuffered);
        assert!(wifi_unbuffered < threeg_unbuffered);
    }

    #[test]
    fn depletion_magnitudes_are_plausible() {
        // A 2015 phone idles through a 7-hour window on roughly 5–15 %.
        let no_app = lab_run(None, 1, 7);
        assert!(
            (5.0..15.0).contains(&no_app),
            "baseline depletion {no_app}%"
        );
        let worst = lab_run(Some(RadioKind::ThreeG), 1, 7);
        assert!(worst < 45.0, "3G depletion {worst}% too extreme");
    }

    #[test]
    fn buffering_amortises_fixed_cost_only() {
        // Total per-message energy is unchanged; only the fixed wake cost
        // divides by the buffer factor.
        let p = BatteryParams::default();
        let unbuffered_radio = 60.0 * (p.wifi_transfer_j + p.per_message_j);
        let buffered_radio = 6.0 * (p.wifi_transfer_j + 10.0 * p.per_message_j);
        assert!(buffered_radio < unbuffered_radio / 3.0);
    }

    #[test]
    fn soc_never_negative() {
        let mut battery = BatteryModel::new(BatteryParams::default(), 0.01);
        battery.drain_idle(SimDuration::from_hours(100));
        assert_eq!(battery.soc(), 0.0);
        assert!(battery.is_empty());
        battery.drain_measurement(true);
        assert_eq!(battery.soc(), 0.0);
    }

    #[test]
    fn new_battery_reports_initial_soc() {
        let battery = BatteryModel::new(BatteryParams::default(), 0.8);
        assert!((battery.soc() - 0.8).abs() < 1e-12);
        assert!(!battery.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_soc() {
        let _ = BatteryModel::new(BatteryParams::default(), 1.2);
    }

    #[test]
    fn negative_duration_drains_nothing() {
        let mut battery = BatteryModel::new(BatteryParams::default(), 0.5);
        battery.drain_idle(SimDuration::from_secs(-100));
        assert!((battery.soc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_cost_scales_with_messages() {
        let p = BatteryParams::default();
        let mut a = BatteryModel::new(p, 1.0);
        let mut b = BatteryModel::new(p, 1.0);
        a.drain_transfer(RadioKind::Wifi, 1);
        b.drain_transfer(RadioKind::Wifi, 100);
        assert!(b.soc() < a.soc());
    }
}
