//! Shared `mobile_client_*` series in the process-wide telemetry registry.

use mps_telemetry::{Counter, Registry};
use std::sync::OnceLock;

/// Shared mobile-client metric handles, under the workspace naming
/// convention `mobile_<subsystem>_<metric>`.
pub(crate) struct MobileTelemetry {
    /// Uploads that failed with a visible link error.
    pub(crate) upload_failures: Counter,
    /// Send attempts made from the retry queue.
    pub(crate) retry_attempts: Counter,
    /// Uploads that eventually succeeded from the retry queue.
    pub(crate) retry_success: Counter,
    /// Uploads shed from the retry queue (exhausted attempts or overflow).
    pub(crate) retry_shed: Counter,
}

/// The lazily-registered mobile-client metric set.
pub(crate) fn telemetry() -> &'static MobileTelemetry {
    static TELEMETRY: OnceLock<MobileTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        MobileTelemetry {
            upload_failures: registry.counter(
                "mobile_client_upload_failures_total",
                "Uploads that failed with a visible link error",
            ),
            retry_attempts: registry.counter(
                "mobile_client_retry_attempts_total",
                "Send attempts made from the retry queue",
            ),
            retry_success: registry.counter(
                "mobile_client_retry_success_total",
                "Uploads that eventually succeeded from the retry queue",
            ),
            retry_shed: registry.counter(
                "mobile_client_retry_shed_total",
                "Uploads shed from the retry queue (exhausted attempts or overflow)",
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_series_under_mobile_names() {
        let t = telemetry();
        t.retry_attempts.add(0);
        let names = Registry::global().names();
        for name in [
            "mobile_client_upload_failures_total",
            "mobile_client_retry_attempts_total",
            "mobile_client_retry_success_total",
            "mobile_client_retry_shed_total",
        ] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
    }
}
