//! # mps-analytics — the paper's empirical analyses
//!
//! One builder per exhibit of the paper's evaluation (Sections 5–6),
//! each consuming a slice of [`mps_types::Observation`]s and returning a
//! printable, testable summary:
//!
//! | Exhibit | Builder |
//! |---|---|
//! | Fig 8 (contributed observations) | [`GrowthReport`] |
//! | Fig 9 (top-20 models table) | [`ModelTable`] |
//! | Figs 10–13 (location accuracy) | [`AccuracyReport`] |
//! | Figs 14–15 (raw SPL distributions) | [`SplReport`] |
//! | Fig 17 (transmission delays) | [`DelayReport`] |
//! | Figs 18–19 (daily distributions) | [`DiurnalReport`] |
//! | Fig 20 (providers by sensing mode) | [`ProviderByModeReport`] |
//! | Fig 21 (user activities) | [`ActivityReport`] |
//!
//! plus the generic [`Histogram`] kit they are built on.

mod accuracy;
mod delays;
mod exposure;
mod hist;
mod modes;
mod participation;
mod sound;
mod volume;

pub use accuracy::{AccuracyReport, ProviderFilter, ACCURACY_EDGES_M};
pub use delays::{DelayReport, DELAY_EDGES_S};
pub use exposure::{ExposureReport, HealthBand};
pub use hist::Histogram;
pub use modes::{ActivityReport, ProviderByModeReport};
pub use participation::DiurnalReport;
pub use sound::SplReport;
pub use volume::{GrowthReport, ModelTable, ModelTableRow};
