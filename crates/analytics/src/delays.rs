//! Transmission-delay analysis (Figure 17).

use mps_simcore::stats::cdf_at;
use mps_types::{AppVersion, Observation};
use std::collections::BTreeMap;
use std::fmt;

/// The thresholds (seconds) at which the paper reads its delay CDF:
/// 10 s, 1 min, 10 min, 1 h, 2 h.
pub const DELAY_EDGES_S: [f64; 5] = [10.0, 60.0, 600.0, 3_600.0, 7_200.0];

/// Per-app-version empirical CDF of transmission delays (arrival −
/// capture), Figure 17.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayReport {
    /// Version → sorted delays in seconds.
    delays: BTreeMap<AppVersion, Vec<f64>>,
}

impl DelayReport {
    /// Builds the report from delivered observations (undelivered ones
    /// are skipped; they have no delay yet).
    pub fn build(observations: &[Observation]) -> Self {
        let mut delays: BTreeMap<AppVersion, Vec<f64>> = BTreeMap::new();
        for obs in observations {
            if let Some(delay) = obs.delay() {
                delays
                    .entry(obs.app_version)
                    .or_default()
                    .push(delay.as_secs_f64().max(0.0));
            }
        }
        for list in delays.values_mut() {
            list.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        }
        Self { delays }
    }

    /// Versions present in the data, oldest first.
    pub fn versions(&self) -> Vec<AppVersion> {
        self.delays.keys().copied().collect()
    }

    /// Number of delivered observations for a version.
    pub fn count(&self, version: AppVersion) -> usize {
        self.delays.get(&version).map_or(0, Vec::len)
    }

    /// CDF value at `threshold_s` seconds for a version (fraction of
    /// observations delivered within the threshold).
    pub fn cdf_at(&self, version: AppVersion, threshold_s: f64) -> f64 {
        self.delays
            .get(&version)
            .map_or(0.0, |sorted| cdf_at(sorted, threshold_s))
    }

    /// Fraction of a version's observations delayed beyond two hours —
    /// the paper's headline disconnection number (≈35 % for v1.2.9,
    /// ≈45 % for v1.3).
    pub fn beyond_two_hours(&self, version: AppVersion) -> f64 {
        1.0 - self.cdf_at(version, 7_200.0)
    }

    /// Median delay in seconds, `None` for an absent version.
    pub fn median_s(&self, version: AppVersion) -> Option<f64> {
        let sorted = self.delays.get(&version)?;
        if sorted.is_empty() {
            return None;
        }
        Some(sorted[sorted.len() / 2])
    }
}

impl fmt::Display for DelayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<8}", "version")?;
        for edge in DELAY_EDGES_S {
            let label = if edge < 60.0 {
                format!("≤{edge:.0}s")
            } else if edge < 3600.0 {
                format!("≤{:.0}min", edge / 60.0)
            } else {
                format!("≤{:.0}h", edge / 3600.0)
            };
            write!(f, " {label:>8}")?;
        }
        writeln!(f, " {:>8} {:>10}", ">2h", "n")?;
        for version in self.versions() {
            write!(f, "{:<8}", version.to_string())?;
            for edge in DELAY_EDGES_S {
                write!(f, " {:>7.1}%", self.cdf_at(version, edge) * 100.0)?;
            }
            writeln!(
                f,
                " {:>7.1}% {:>10}",
                self.beyond_two_hours(version) * 100.0,
                self.count(version)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{DeviceModel, SimDuration, SimTime, SoundLevel};

    fn obs(version: AppVersion, delay_s: Option<i64>) -> Observation {
        let captured = SimTime::from_hms(1, 12, 0, 0);
        let mut b = Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(captured)
            .spl(SoundLevel::new(50.0))
            .app_version(version);
        if let Some(s) = delay_s {
            b = b.arrived_at(captured + SimDuration::from_secs(s));
        }
        b.build()
    }

    #[test]
    fn cdf_reads_correctly() {
        let set = vec![
            obs(AppVersion::V1_2_9, Some(5)),
            obs(AppVersion::V1_2_9, Some(8)),
            obs(AppVersion::V1_2_9, Some(120)),
            obs(AppVersion::V1_2_9, Some(10_000)),
        ];
        let r = DelayReport::build(&set);
        assert_eq!(r.count(AppVersion::V1_2_9), 4);
        assert_eq!(r.cdf_at(AppVersion::V1_2_9, 10.0), 0.5);
        assert_eq!(r.cdf_at(AppVersion::V1_2_9, 600.0), 0.75);
        assert_eq!(r.beyond_two_hours(AppVersion::V1_2_9), 0.25);
        assert_eq!(r.median_s(AppVersion::V1_2_9), Some(120.0));
    }

    #[test]
    fn undelivered_observations_are_skipped() {
        let set = vec![obs(AppVersion::V1_1, None), obs(AppVersion::V1_1, Some(3))];
        let r = DelayReport::build(&set);
        assert_eq!(r.count(AppVersion::V1_1), 1);
    }

    #[test]
    fn versions_separated() {
        let set = vec![
            obs(AppVersion::V1_1, Some(30)),
            obs(AppVersion::V1_3, Some(1_800)),
        ];
        let r = DelayReport::build(&set);
        assert_eq!(r.versions(), vec![AppVersion::V1_1, AppVersion::V1_3]);
        assert_eq!(r.cdf_at(AppVersion::V1_1, 60.0), 1.0);
        assert_eq!(r.cdf_at(AppVersion::V1_3, 60.0), 0.0);
        assert_eq!(r.cdf_at(AppVersion::V1_3, 3_600.0), 1.0);
    }

    #[test]
    fn absent_version_is_zero() {
        let r = DelayReport::build(&[]);
        assert_eq!(r.cdf_at(AppVersion::V1_1, 10.0), 0.0);
        assert_eq!(r.count(AppVersion::V1_1), 0);
        assert_eq!(r.median_s(AppVersion::V1_1), None);
        assert!(r.versions().is_empty());
    }

    #[test]
    fn display_has_version_rows() {
        let set = vec![obs(AppVersion::V1_2_9, Some(5))];
        let s = DelayReport::build(&set).to_string();
        assert!(s.contains("v1.2.9"));
        assert!(s.contains(">2h"));
    }
}
