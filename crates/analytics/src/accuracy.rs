//! Location-accuracy analyses (Figures 10–13).

use crate::hist::Histogram;
use mps_types::{LocationProvider, Observation};
use std::fmt;

/// The paper's accuracy buckets (metres): the figures read off the
/// `[6, 20)`, `[20, 50)` and just-below-100 ranges.
pub const ACCURACY_EDGES_M: [f64; 9] = [0.0, 6.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0];

/// Which observations an accuracy report covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProviderFilter {
    /// All localized observations (Figure 10).
    #[default]
    All,
    /// Only fixes from one provider (Figures 11–13).
    Only(LocationProvider),
}

/// Distribution of location-accuracy estimates (one of Figures 10–13).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// The filter this report was built with.
    pub filter: ProviderFilter,
    /// Histogram over [`ACCURACY_EDGES_M`].
    pub histogram: Histogram,
    /// Localized observations matching the filter.
    pub matching: u64,
    /// All localized observations (the share denominator).
    pub localized_total: u64,
}

impl AccuracyReport {
    /// Builds the report over `observations`.
    pub fn build(observations: &[Observation], filter: ProviderFilter) -> Self {
        let mut histogram = Histogram::new(ACCURACY_EDGES_M.to_vec());
        let mut matching = 0;
        let mut localized_total = 0;
        for obs in observations {
            let Some(fix) = &obs.location else { continue };
            localized_total += 1;
            let keep = match filter {
                ProviderFilter::All => true,
                ProviderFilter::Only(p) => fix.provider == p,
            };
            if keep {
                matching += 1;
                histogram.push(fix.accuracy_m);
            }
        }
        Self {
            filter,
            histogram,
            matching,
            localized_total,
        }
    }

    /// This provider's share of all localized observations (1.0 for
    /// [`ProviderFilter::All`]).
    pub fn share_of_localized(&self) -> f64 {
        if self.localized_total == 0 {
            0.0
        } else {
            self.matching as f64 / self.localized_total as f64
        }
    }

    /// Fraction of matching fixes with accuracy in `[lo, hi)` metres.
    pub fn fraction_in(&self, lo: f64, hi: f64) -> f64 {
        if self.matching == 0 {
            return 0.0;
        }
        let counts = self.histogram.counts();
        let edges = self.histogram.edges();
        let mut n = 0u64;
        for i in 0..counts.len() {
            if edges[i] >= lo && edges[i + 1] <= hi {
                n += counts[i];
            }
        }
        n as f64 / self.matching as f64
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self.filter {
            ProviderFilter::All => "all providers".to_owned(),
            ProviderFilter::Only(p) => p.to_string(),
        };
        writeln!(
            f,
            "Location accuracy ({label}): {} fixes, {:.1}% of localized",
            self.matching,
            self.share_of_localized() * 100.0
        )?;
        write!(f, "{}", self.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{DeviceModel, GeoPoint, LocationFix, SimTime, SoundLevel};

    fn obs(provider: Option<(LocationProvider, f64)>) -> Observation {
        let mut b = Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(SimTime::EPOCH)
            .spl(SoundLevel::new(50.0));
        if let Some((p, acc)) = provider {
            b = b.location(LocationFix::new(GeoPoint::PARIS, acc, p));
        }
        b.build()
    }

    fn sample_set() -> Vec<Observation> {
        vec![
            obs(None),
            obs(Some((LocationProvider::Gps, 10.0))),
            obs(Some((LocationProvider::Network, 30.0))),
            obs(Some((LocationProvider::Network, 45.0))),
            obs(Some((LocationProvider::Network, 95.0))),
            obs(Some((LocationProvider::Fused, 300.0))),
        ]
    }

    #[test]
    fn all_report_counts_localized_only() {
        let r = AccuracyReport::build(&sample_set(), ProviderFilter::All);
        assert_eq!(r.matching, 5);
        assert_eq!(r.localized_total, 5);
        assert_eq!(r.share_of_localized(), 1.0);
        assert_eq!(r.histogram.total(), 5);
    }

    #[test]
    fn provider_shares() {
        let set = sample_set();
        let gps = AccuracyReport::build(&set, ProviderFilter::Only(LocationProvider::Gps));
        assert_eq!(gps.matching, 1);
        assert!((gps.share_of_localized() - 0.2).abs() < 1e-12);
        let net = AccuracyReport::build(&set, ProviderFilter::Only(LocationProvider::Network));
        assert!((net.share_of_localized() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fraction_in_ranges() {
        let set = sample_set();
        let net = AccuracyReport::build(&set, ProviderFilter::Only(LocationProvider::Network));
        assert!((net.fraction_in(20.0, 50.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((net.fraction_in(50.0, 100.0) - 1.0 / 3.0).abs() < 1e-12);
        let gps = AccuracyReport::build(&set, ProviderFilter::Only(LocationProvider::Gps));
        assert_eq!(gps.fraction_in(6.0, 20.0), 1.0);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let r = AccuracyReport::build(&[], ProviderFilter::All);
        assert_eq!(r.matching, 0);
        assert_eq!(r.share_of_localized(), 0.0);
        assert_eq!(r.fraction_in(0.0, 5000.0), 0.0);
    }

    #[test]
    fn display_mentions_provider_and_share() {
        let set = sample_set();
        let r = AccuracyReport::build(&set, ProviderFilter::Only(LocationProvider::Gps));
        let s = r.to_string();
        assert!(s.contains("gps"));
        assert!(s.contains("20.0%"));
    }
}
