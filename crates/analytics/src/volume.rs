//! Contribution volumes: cumulative growth (Figure 8) and the top-20
//! model table (Figure 9).

use mps_types::{DeviceModel, Observation};
use std::collections::BTreeSet;
use std::fmt;

/// One row of the reproduced Figure 9 table, with the paper's values for
/// side-by-side comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTableRow {
    /// The model.
    pub model: DeviceModel,
    /// Distinct devices observed in the dataset.
    pub devices: u64,
    /// Measurements in the dataset.
    pub measurements: u64,
    /// Localized measurements in the dataset.
    pub localized: u64,
}

impl ModelTableRow {
    /// Localized fraction of this row.
    pub fn localized_fraction(&self) -> f64 {
        if self.measurements == 0 {
            0.0
        } else {
            self.localized as f64 / self.measurements as f64
        }
    }
}

/// The reproduced Figure 9 table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTable {
    /// Rows in the paper's order ([`DeviceModel::ALL`]).
    pub rows: Vec<ModelTableRow>,
}

impl ModelTable {
    /// Builds the table from a dataset.
    pub fn build(observations: &[Observation]) -> Self {
        let rows = DeviceModel::ALL
            .iter()
            .map(|model| {
                let mut devices = BTreeSet::new();
                let mut measurements = 0;
                let mut localized = 0;
                for obs in observations.iter().filter(|o| o.model == *model) {
                    devices.insert(obs.device);
                    measurements += 1;
                    if obs.is_localized() {
                        localized += 1;
                    }
                }
                ModelTableRow {
                    model: *model,
                    devices: devices.len() as u64,
                    measurements,
                    localized,
                }
            })
            .collect();
        Self { rows }
    }

    /// Totals over all rows: `(devices, measurements, localized)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.rows.iter().fold((0, 0, 0), |acc, r| {
            (
                acc.0 + r.devices,
                acc.1 + r.measurements,
                acc.2 + r.localized,
            )
        })
    }

    /// Overall localized fraction (the paper's "about 40 %").
    pub fn localized_fraction(&self) -> f64 {
        let (_, measurements, localized) = self.totals();
        if measurements == 0 {
            0.0
        } else {
            localized as f64 / measurements as f64
        }
    }
}

impl fmt::Display for ModelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>8} {:>13} {:>13} {:>7}",
            "Device model", "Devices", "Measurements", "Localized", "Loc%"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<18} {:>8} {:>13} {:>13} {:>6.1}%",
                row.model.label(),
                row.devices,
                row.measurements,
                row.localized,
                row.localized_fraction() * 100.0
            )?;
        }
        let (devices, measurements, localized) = self.totals();
        writeln!(
            f,
            "{:<18} {:>8} {:>13} {:>13} {:>6.1}%",
            "Total",
            devices,
            measurements,
            localized,
            self.localized_fraction() * 100.0
        )
    }
}

/// Cumulative contribution growth over deployment months (Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthReport {
    /// `(month, cumulative measurements, cumulative localized)` rows.
    pub monthly: Vec<(i64, u64, u64)>,
}

impl GrowthReport {
    /// Builds the report from a dataset (months bucketed from capture
    /// times; empty months between active ones carry forward).
    pub fn build(observations: &[Observation]) -> Self {
        if observations.is_empty() {
            return Self { monthly: vec![] };
        }
        let max_month = observations
            .iter()
            .map(|o| o.captured_at.month())
            .max()
            .expect("non-empty");
        let mut per_month = vec![(0u64, 0u64); (max_month + 1) as usize];
        for obs in observations {
            let m = obs.captured_at.month() as usize;
            per_month[m].0 += 1;
            if obs.is_localized() {
                per_month[m].1 += 1;
            }
        }
        let mut monthly = Vec::with_capacity(per_month.len());
        let mut total = 0;
        let mut localized = 0;
        for (month, (t, l)) in per_month.into_iter().enumerate() {
            total += t;
            localized += l;
            monthly.push((month as i64, total, localized));
        }
        Self { monthly }
    }

    /// Final cumulative totals `(measurements, localized)`.
    pub fn final_totals(&self) -> (u64, u64) {
        self.monthly.last().map_or((0, 0), |(_, t, l)| (*t, *l))
    }

    /// Whether cumulative growth is monotone non-decreasing (sanity).
    pub fn is_monotone(&self) -> bool {
        self.monthly
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 && w[1].2 >= w[0].2)
    }

    /// Whether contributions accelerated over the deployment: the second
    /// half added more than the first half (the Figure 8 curve bends up
    /// as the user base grows).
    pub fn accelerated(&self) -> bool {
        let Some((_, final_total, _)) = self.monthly.last() else {
            return false;
        };
        let mid = self.monthly.len() / 2;
        if mid == 0 {
            return false;
        }
        let first_half = self.monthly[mid - 1].1;
        final_total - first_half > first_half
    }
}

impl fmt::Display for GrowthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>13} {:>13} {:>7}",
            "month", "cumulative", "localized", "loc%"
        )?;
        for (month, total, localized) in &self.monthly {
            let frac = if *total > 0 {
                *localized as f64 / *total as f64 * 100.0
            } else {
                0.0
            };
            writeln!(f, "{month:<6} {total:>13} {localized:>13} {frac:>6.1}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{GeoPoint, LocationFix, LocationProvider, SimTime, SoundLevel};

    fn obs(device: u64, model: DeviceModel, day: i64, localized: bool) -> Observation {
        let mut b = Observation::builder()
            .device(device.into())
            .user(device.into())
            .model(model)
            .captured_at(SimTime::from_hms(day, 12, 0, 0))
            .spl(SoundLevel::new(40.0));
        if localized {
            b = b.location(LocationFix::new(
                GeoPoint::PARIS,
                30.0,
                LocationProvider::Network,
            ));
        }
        b.build()
    }

    #[test]
    fn table_counts_devices_and_volumes() {
        let set = vec![
            obs(1, DeviceModel::LgeNexus5, 0, true),
            obs(1, DeviceModel::LgeNexus5, 1, false),
            obs(2, DeviceModel::LgeNexus5, 0, true),
            obs(3, DeviceModel::SonyD5803, 0, false),
        ];
        let table = ModelTable::build(&set);
        let nexus = table
            .rows
            .iter()
            .find(|r| r.model == DeviceModel::LgeNexus5)
            .unwrap();
        assert_eq!(nexus.devices, 2);
        assert_eq!(nexus.measurements, 3);
        assert_eq!(nexus.localized, 2);
        assert!((nexus.localized_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(table.totals(), (3, 4, 2));
        assert_eq!(table.localized_fraction(), 0.5);
    }

    #[test]
    fn table_has_all_twenty_rows() {
        let table = ModelTable::build(&[]);
        assert_eq!(table.rows.len(), 20);
        assert_eq!(table.totals(), (0, 0, 0));
        assert_eq!(table.localized_fraction(), 0.0);
    }

    #[test]
    fn growth_accumulates_by_month() {
        let mut set = vec![
            obs(1, DeviceModel::LgeNexus5, 5, true),   // month 0
            obs(1, DeviceModel::LgeNexus5, 35, false), // month 1
            obs(1, DeviceModel::LgeNexus5, 65, true),  // month 2
        ];
        set.push(obs(1, DeviceModel::LgeNexus5, 66, true)); // month 2
        let growth = GrowthReport::build(&set);
        assert_eq!(growth.monthly.len(), 3);
        assert_eq!(growth.monthly[0], (0, 1, 1));
        assert_eq!(growth.monthly[1], (1, 2, 1));
        assert_eq!(growth.monthly[2], (2, 4, 3));
        assert!(growth.is_monotone());
        assert!(growth.accelerated());
        assert_eq!(growth.final_totals(), (4, 3));
    }

    #[test]
    fn growth_of_empty_dataset() {
        let growth = GrowthReport::build(&[]);
        assert!(growth.monthly.is_empty());
        assert_eq!(growth.final_totals(), (0, 0));
        assert!(!growth.accelerated());
        assert!(growth.is_monotone());
    }

    #[test]
    fn growth_fills_gap_months() {
        let set = vec![
            obs(1, DeviceModel::LgeNexus5, 0, false),
            obs(1, DeviceModel::LgeNexus5, 95, false), // month 3
        ];
        let growth = GrowthReport::build(&set);
        assert_eq!(growth.monthly.len(), 4);
        assert_eq!(growth.monthly[1], (1, 1, 0)); // carries forward
        assert_eq!(growth.monthly[2], (2, 1, 0));
    }

    #[test]
    fn displays_are_tabular() {
        let set = vec![obs(1, DeviceModel::LgeNexus5, 0, true)];
        let t = ModelTable::build(&set).to_string();
        assert!(t.contains("LGE NEXUS 5"));
        assert!(t.contains("Total"));
        let g = GrowthReport::build(&set).to_string();
        assert!(g.contains("month"));
    }
}
