//! Daily contribution distributions (Figures 18–19).

use mps_types::{DeviceModel, Observation, UserId};
use std::collections::BTreeMap;
use std::fmt;

/// Hourly distributions of contributions per group: per model
/// (Figure 18) or per user of one model (Figure 19).
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalReport {
    /// Group label → per-hour counts (24 buckets).
    pub groups: BTreeMap<String, [u64; 24]>,
}

impl DiurnalReport {
    /// Figure 18: per-model hourly distributions.
    pub fn by_model(observations: &[Observation]) -> Self {
        let mut groups: BTreeMap<String, [u64; 24]> = BTreeMap::new();
        for obs in observations {
            let hour = obs.captured_at.hour_of_day() as usize;
            groups
                .entry(obs.model.label().to_owned())
                .or_insert([0; 24])[hour] += 1;
        }
        Self { groups }
    }

    /// Figure 19: hourly distributions of the top `top_n` users (by
    /// volume) owning `model`.
    pub fn by_user_of_model(
        observations: &[Observation],
        model: DeviceModel,
        top_n: usize,
    ) -> Self {
        let mut per_user: BTreeMap<UserId, [u64; 24]> = BTreeMap::new();
        for obs in observations.iter().filter(|o| o.model == model) {
            let hour = obs.captured_at.hour_of_day() as usize;
            per_user.entry(obs.user).or_insert([0; 24])[hour] += 1;
        }
        let mut ranked: Vec<(UserId, [u64; 24])> = per_user.into_iter().collect();
        ranked.sort_by(|a, b| {
            let ta: u64 = a.1.iter().sum();
            let tb: u64 = b.1.iter().sum();
            tb.cmp(&ta).then(a.0.cmp(&b.0))
        });
        ranked.truncate(top_n);
        Self {
            groups: ranked
                .into_iter()
                .map(|(user, counts)| (user.to_string(), counts))
                .collect(),
        }
    }

    /// The pooled hourly distribution over all groups, as fractions
    /// summing to 1 (or all zero when empty).
    pub fn population_fractions(&self) -> [f64; 24] {
        let mut totals = [0u64; 24];
        for counts in self.groups.values() {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        let total: u64 = totals.iter().sum();
        let mut out = [0.0f64; 24];
        if total > 0 {
            for (o, t) in out.iter_mut().zip(&totals) {
                *o = *t as f64 / total as f64;
            }
        }
        out
    }

    /// Fraction of all contributions captured between `from` (inclusive)
    /// and `to` (exclusive) hours.
    pub fn fraction_between(&self, from: u32, to: u32) -> f64 {
        let fractions = self.population_fractions();
        (from..to).map(|h| fractions[h as usize]).sum()
    }

    /// Per-group peak hours — diversity across users shows here
    /// (Figure 19).
    pub fn peak_hours(&self) -> BTreeMap<String, u32> {
        self.groups
            .iter()
            .filter_map(|(label, counts)| {
                let total: u64 = counts.iter().sum();
                if total == 0 {
                    return None;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(h, _)| (label.clone(), h as u32))
            })
            .collect()
    }

    /// Whether every hour of the day has at least one contribution —
    /// the crowd-coverage claim of Section 6.1.
    pub fn covers_all_hours(&self) -> bool {
        let fractions = self.population_fractions();
        fractions.iter().all(|f| *f > 0.0)
    }
}

impl fmt::Display for DiurnalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fractions = self.population_fractions();
        writeln!(f, "hour  share")?;
        for (h, frac) in fractions.iter().enumerate() {
            writeln!(f, "{h:>4}  {:>6.2}%", frac * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{SimTime, SoundLevel};

    fn obs(user: u64, model: DeviceModel, hour: u32) -> Observation {
        Observation::builder()
            .device(user.into())
            .user(user.into())
            .model(model)
            .captured_at(SimTime::from_hms(3, hour, 0, 0))
            .spl(SoundLevel::new(40.0))
            .build()
    }

    #[test]
    fn by_model_buckets_hours() {
        let set = vec![
            obs(1, DeviceModel::LgeNexus5, 9),
            obs(1, DeviceModel::LgeNexus5, 9),
            obs(2, DeviceModel::SonyD5803, 22),
        ];
        let report = DiurnalReport::by_model(&set);
        assert_eq!(report.groups["LGE NEXUS 5"][9], 2);
        assert_eq!(report.groups["SONY D5803"][22], 1);
        let fractions = report.population_fractions();
        assert!((fractions[9] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_between_sums_range() {
        let set = vec![
            obs(1, DeviceModel::LgeNexus5, 10),
            obs(1, DeviceModel::LgeNexus5, 15),
            obs(1, DeviceModel::LgeNexus5, 23),
            obs(1, DeviceModel::LgeNexus5, 2),
        ];
        let report = DiurnalReport::by_model(&set);
        assert!((report.fraction_between(10, 21) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn by_user_ranks_and_filters() {
        let mut set = Vec::new();
        for _ in 0..5 {
            set.push(obs(1, DeviceModel::OneplusA0001, 9));
        }
        set.push(obs(2, DeviceModel::OneplusA0001, 20));
        set.push(obs(3, DeviceModel::LgeNexus5, 12)); // other model
        let report = DiurnalReport::by_user_of_model(&set, DeviceModel::OneplusA0001, 10);
        assert_eq!(report.groups.len(), 2);
        let peaks = report.peak_hours();
        assert_eq!(peaks["user-1"], 9);
        assert_eq!(peaks["user-2"], 20);
    }

    #[test]
    fn covers_all_hours_detects_gaps() {
        let full: Vec<Observation> = (0..24).map(|h| obs(1, DeviceModel::LgeNexus5, h)).collect();
        assert!(DiurnalReport::by_model(&full).covers_all_hours());
        let partial = vec![obs(1, DeviceModel::LgeNexus5, 5)];
        assert!(!DiurnalReport::by_model(&partial).covers_all_hours());
    }

    #[test]
    fn empty_report_is_zero() {
        let report = DiurnalReport::by_model(&[]);
        assert_eq!(report.population_fractions(), [0.0; 24]);
        assert!(!report.covers_all_hours());
        assert!(report.peak_hours().is_empty());
    }

    #[test]
    fn display_has_24_rows() {
        let report = DiurnalReport::by_model(&[obs(1, DeviceModel::LgeNexus5, 0)]);
        assert_eq!(report.to_string().lines().count(), 25);
    }
}
