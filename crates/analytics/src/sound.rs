//! Raw SPL distributions (Figures 14–15).

use crate::hist::Histogram;
use mps_types::{DeviceModel, Observation, UserId};
use std::collections::BTreeMap;
use std::fmt;

/// Per-group distributions of raw SPL measurements in 1-dB bins, reported
/// in per-mille (‰) as in the paper.
///
/// Figure 14 groups by device model; Figure 15 fixes one model and groups
/// by user. Both come from the same builder.
#[derive(Debug, Clone)]
pub struct SplReport {
    /// Group label → SPL histogram (1-dB bins over 0–100 dB(A)).
    pub groups: BTreeMap<String, Histogram>,
}

impl SplReport {
    fn empty_histogram() -> Histogram {
        Histogram::uniform(0.0, 100.0, 100)
    }

    /// Figure 14: one SPL distribution per device model.
    pub fn by_model(observations: &[Observation]) -> Self {
        let mut groups: BTreeMap<String, Histogram> = BTreeMap::new();
        for obs in observations {
            groups
                .entry(obs.model.label().to_owned())
                .or_insert_with(Self::empty_histogram)
                .push(obs.spl.db());
        }
        Self { groups }
    }

    /// Figure 15: SPL distributions of the top `top_n` users (by volume)
    /// owning one given model.
    pub fn by_user_of_model(
        observations: &[Observation],
        model: DeviceModel,
        top_n: usize,
    ) -> Self {
        let mut per_user: BTreeMap<UserId, Histogram> = BTreeMap::new();
        for obs in observations.iter().filter(|o| o.model == model) {
            per_user
                .entry(obs.user)
                .or_insert_with(Self::empty_histogram)
                .push(obs.spl.db());
        }
        let mut ranked: Vec<(UserId, Histogram)> = per_user.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        ranked.truncate(top_n);
        Self {
            groups: ranked
                .into_iter()
                .map(|(user, h)| (user.to_string(), h))
                .collect(),
        }
    }

    /// Position (dB) of the main peak of each group's distribution.
    pub fn peak_positions(&self) -> BTreeMap<String, f64> {
        self.groups
            .iter()
            .filter_map(|(label, h)| h.peak_center().map(|p| (label.clone(), p)))
            .collect()
    }

    /// Spread (max − min, dB) of the main-peak positions across groups —
    /// large across models (Figure 14), small across same-model users
    /// (Figure 15).
    pub fn peak_spread_db(&self) -> f64 {
        let peaks: Vec<f64> = self.peak_positions().into_values().collect();
        if peaks.is_empty() {
            return 0.0;
        }
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = peaks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max - min
    }

    /// Whether a group's distribution is bimodal in the paper's sense: a
    /// dominant low-level peak plus a secondary active-environment bump
    /// at least `min_bump` of the mass above `split_db`.
    pub fn has_active_bump(&self, label: &str, split_db: f64, min_bump: f64) -> bool {
        let Some(h) = self.groups.get(label) else {
            return false;
        };
        if h.total() == 0 {
            return false;
        }
        let edges = h.edges();
        let above: u64 = h
            .counts()
            .iter()
            .enumerate()
            .filter(|(i, _)| edges[*i] >= split_db)
            .map(|(_, c)| *c)
            .sum();
        (above + h.overflow()) as f64 / h.total() as f64 >= min_bump
    }
}

impl fmt::Display for SplReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, h) in &self.groups {
            let peak = h.peak_center().unwrap_or(f64::NAN);
            writeln!(f, "{label}: n={}, peak at {peak:.1} dB(A)", h.total())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{SimTime, SoundLevel};

    fn obs(user: u64, model: DeviceModel, spl: f64) -> Observation {
        Observation::builder()
            .device(user.into())
            .user(user.into())
            .model(model)
            .captured_at(SimTime::EPOCH)
            .spl(SoundLevel::new(spl))
            .build()
    }

    #[test]
    fn by_model_groups_and_peaks() {
        let mut set = Vec::new();
        for _ in 0..10 {
            set.push(obs(1, DeviceModel::LgeNexus5, 30.5));
            set.push(obs(2, DeviceModel::SonyD5803, 38.5));
        }
        set.push(obs(1, DeviceModel::LgeNexus5, 65.0));
        let report = SplReport::by_model(&set);
        assert_eq!(report.groups.len(), 2);
        let peaks = report.peak_positions();
        assert_eq!(peaks["LGE NEXUS 5"], 30.5);
        assert_eq!(peaks["SONY D5803"], 38.5);
        assert_eq!(report.peak_spread_db(), 8.0);
    }

    #[test]
    fn by_user_filters_model_and_ranks() {
        let mut set = Vec::new();
        for i in 0..5 {
            // User 1 contributes the most, user 3 the least.
            for _ in 0..(10 - i) {
                set.push(obs(1, DeviceModel::SamsungSmG901f, 31.0));
            }
        }
        for _ in 0..8 {
            set.push(obs(2, DeviceModel::SamsungSmG901f, 32.0));
        }
        set.push(obs(3, DeviceModel::SamsungSmG901f, 33.0));
        set.push(obs(4, DeviceModel::LgeNexus4, 90.0)); // other model: excluded
        let report = SplReport::by_user_of_model(&set, DeviceModel::SamsungSmG901f, 2);
        assert_eq!(report.groups.len(), 2);
        assert!(report.groups.contains_key("user-1"));
        assert!(report.groups.contains_key("user-2"));
        assert!(!report.groups.contains_key("user-4"));
        // Same-model users peak close together.
        assert!(report.peak_spread_db() <= 2.0);
    }

    #[test]
    fn active_bump_detection() {
        let mut set = Vec::new();
        for _ in 0..80 {
            set.push(obs(1, DeviceModel::LgeNexus5, 30.0));
        }
        for _ in 0..20 {
            set.push(obs(1, DeviceModel::LgeNexus5, 66.0));
        }
        let report = SplReport::by_model(&set);
        assert!(report.has_active_bump("LGE NEXUS 5", 55.0, 0.1));
        assert!(!report.has_active_bump("LGE NEXUS 5", 55.0, 0.5));
        assert!(!report.has_active_bump("GHOST MODEL", 55.0, 0.0));
    }

    #[test]
    fn empty_report() {
        let report = SplReport::by_model(&[]);
        assert!(report.groups.is_empty());
        assert_eq!(report.peak_spread_db(), 0.0);
    }

    #[test]
    fn display_lists_groups() {
        let set = vec![obs(1, DeviceModel::LgeNexus5, 30.0)];
        let s = SplReport::by_model(&set).to_string();
        assert!(s.contains("LGE NEXUS 5"));
        assert!(s.contains("n=1"));
    }
}
