//! Provider shares by sensing mode (Figure 20) and activity shares
//! (Figure 21).

use mps_types::{Activity, LocationProvider, Observation, SensingMode};
use std::fmt;

/// Distribution of location providers for each sensing mode (Figure 20).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProviderByModeReport {
    /// `counts[mode][provider]`, indexed by [`SensingMode::ALL`] and
    /// [`LocationProvider::ALL`] order.
    pub counts: [[u64; 3]; 3],
}

impl ProviderByModeReport {
    /// Builds the report over localized observations.
    pub fn build(observations: &[Observation]) -> Self {
        let mut counts = [[0u64; 3]; 3];
        for obs in observations {
            let Some(fix) = &obs.location else { continue };
            let m = SensingMode::ALL
                .iter()
                .position(|x| *x == obs.mode)
                .expect("mode in ALL");
            let p = LocationProvider::ALL
                .iter()
                .position(|x| *x == fix.provider)
                .expect("provider in ALL");
            counts[m][p] += 1;
        }
        Self { counts }
    }

    /// Localized observations in a mode.
    pub fn total(&self, mode: SensingMode) -> u64 {
        let m = SensingMode::ALL
            .iter()
            .position(|x| *x == mode)
            .expect("mode");
        self.counts[m].iter().sum()
    }

    /// Share of a provider within a mode (0 for an empty mode).
    pub fn share(&self, mode: SensingMode, provider: LocationProvider) -> f64 {
        let m = SensingMode::ALL
            .iter()
            .position(|x| *x == mode)
            .expect("mode");
        let p = LocationProvider::ALL
            .iter()
            .position(|x| *x == provider)
            .expect("provider");
        let total: u64 = self.counts[m].iter().sum();
        if total == 0 {
            0.0
        } else {
            self.counts[m][p] as f64 / total as f64
        }
    }

    /// GPS-share gain of a participatory mode over opportunistic sensing,
    /// in percentage points — the paper reports > +20 pts (manual) and
    /// ≈ +40 pts (journey).
    pub fn gps_gain_pts(&self, mode: SensingMode) -> f64 {
        (self.share(mode, LocationProvider::Gps)
            - self.share(SensingMode::Opportunistic, LocationProvider::Gps))
            * 100.0
    }
}

impl fmt::Display for ProviderByModeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>8} {:>8} {:>10}",
            "mode", "gps", "network", "fused", "n"
        )?;
        for mode in SensingMode::ALL {
            writeln!(
                f,
                "{:<14} {:>7.1}% {:>7.1}% {:>7.1}% {:>10}",
                mode.name(),
                self.share(mode, LocationProvider::Gps) * 100.0,
                self.share(mode, LocationProvider::Network) * 100.0,
                self.share(mode, LocationProvider::Fused) * 100.0,
                self.total(mode),
            )?;
        }
        Ok(())
    }
}

/// Distribution of user activities (Figure 21).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivityReport {
    /// Counts indexed by [`Activity::ALL`] order.
    pub counts: [u64; 7],
}

impl ActivityReport {
    /// Builds the report over all observations.
    pub fn build(observations: &[Observation]) -> Self {
        let mut counts = [0u64; 7];
        for obs in observations {
            let i = Activity::ALL
                .iter()
                .position(|a| *a == obs.activity)
                .expect("activity in ALL");
            counts[i] += 1;
        }
        Self { counts }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of one activity class.
    pub fn share(&self, activity: Activity) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let i = Activity::ALL
            .iter()
            .position(|a| *a == activity)
            .expect("activity");
        self.counts[i] as f64 / total as f64
    }

    /// Share of observations with the user in motion (< 10 % in the
    /// paper).
    pub fn moving_share(&self) -> f64 {
        Activity::ALL
            .iter()
            .filter(|a| a.is_moving())
            .map(|a| self.share(*a))
            .sum()
    }

    /// Share of observations whose activity could not be qualified
    /// (≈ 20 % in the paper).
    pub fn unqualified_share(&self) -> f64 {
        Activity::ALL
            .iter()
            .filter(|a| a.is_unqualified())
            .map(|a| self.share(*a))
            .sum()
    }
}

impl fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for activity in Activity::ALL {
            writeln!(
                f,
                "{:<10} {:>6.1}%",
                activity.name(),
                self.share(activity) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{DeviceModel, GeoPoint, LocationFix, SimTime, SoundLevel};

    fn obs(
        mode: SensingMode,
        provider: Option<LocationProvider>,
        activity: Activity,
    ) -> Observation {
        let mut b = Observation::builder()
            .device(1.into())
            .user(1.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(SimTime::EPOCH)
            .spl(SoundLevel::new(40.0))
            .mode(mode)
            .activity(activity);
        if let Some(p) = provider {
            b = b.location(LocationFix::new(GeoPoint::PARIS, 30.0, p));
        }
        b.build()
    }

    #[test]
    fn provider_shares_per_mode() {
        let set = vec![
            obs(
                SensingMode::Opportunistic,
                Some(LocationProvider::Network),
                Activity::Still,
            ),
            obs(
                SensingMode::Opportunistic,
                Some(LocationProvider::Network),
                Activity::Still,
            ),
            obs(
                SensingMode::Opportunistic,
                Some(LocationProvider::Gps),
                Activity::Still,
            ),
            obs(SensingMode::Opportunistic, None, Activity::Still), // not localized
            obs(
                SensingMode::Journey,
                Some(LocationProvider::Gps),
                Activity::Foot,
            ),
            obs(
                SensingMode::Journey,
                Some(LocationProvider::Network),
                Activity::Foot,
            ),
        ];
        let r = ProviderByModeReport::build(&set);
        assert_eq!(r.total(SensingMode::Opportunistic), 3);
        assert_eq!(r.total(SensingMode::Journey), 2);
        assert_eq!(r.total(SensingMode::Manual), 0);
        assert!(
            (r.share(SensingMode::Opportunistic, LocationProvider::Gps) - 1.0 / 3.0).abs() < 1e-12
        );
        assert!((r.share(SensingMode::Journey, LocationProvider::Gps) - 0.5).abs() < 1e-12);
        let gain = r.gps_gain_pts(SensingMode::Journey);
        assert!((gain - (50.0 - 100.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_mode_shares_are_zero() {
        let r = ProviderByModeReport::build(&[]);
        assert_eq!(r.share(SensingMode::Manual, LocationProvider::Gps), 0.0);
        assert_eq!(r.gps_gain_pts(SensingMode::Manual), 0.0);
    }

    #[test]
    fn activity_shares() {
        let set = vec![
            obs(SensingMode::Opportunistic, None, Activity::Still),
            obs(SensingMode::Opportunistic, None, Activity::Still),
            obs(SensingMode::Opportunistic, None, Activity::Foot),
            obs(SensingMode::Opportunistic, None, Activity::Unknown),
        ];
        let r = ActivityReport::build(&set);
        assert_eq!(r.total(), 4);
        assert_eq!(r.share(Activity::Still), 0.5);
        assert_eq!(r.moving_share(), 0.25);
        assert_eq!(r.unqualified_share(), 0.25);
    }

    #[test]
    fn empty_activity_report() {
        let r = ActivityReport::build(&[]);
        assert_eq!(r.total(), 0);
        assert_eq!(r.share(Activity::Still), 0.0);
        assert_eq!(r.moving_share(), 0.0);
    }

    #[test]
    fn displays_are_tabular() {
        let set = vec![obs(
            SensingMode::Manual,
            Some(LocationProvider::Gps),
            Activity::Vehicle,
        )];
        let p = ProviderByModeReport::build(&set).to_string();
        assert!(p.contains("manual"));
        assert!(p.contains("100.0%"));
        let a = ActivityReport::build(&set).to_string();
        assert!(a.contains("vehicle"));
        assert_eq!(a.lines().count(), 7);
    }
}
