//! Quantified-self noise exposure (Section 4.2, experience 1).
//!
//! "SoundCity shows the individual's daily and monthly exposure to noise
//! in relation with its impact on health." Exposure is the
//! energy-equivalent continuous level (Leq) of a user's measurements over
//! a day or month, classified against the WHO community-noise guidance
//! the paper cites [WHO 1999]: serious annoyance outdoors starts around
//! 55 dB(A), and sustained exposure above ~70 dB(A) risks hearing and
//! cardiovascular effects.

use mps_types::{Observation, SoundLevel, UserId};
use std::collections::BTreeMap;
use std::fmt;

/// WHO-guidance health band of an exposure level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthBand {
    /// Below ~55 dB(A): little daytime annoyance.
    Moderate,
    /// 55–70 dB(A): serious annoyance, sleep and learning interference.
    Loud,
    /// Above ~70 dB(A): long-term health risk (hearing, cardiovascular).
    Harmful,
}

impl HealthBand {
    /// Classifies an exposure level.
    pub fn of(level: SoundLevel) -> HealthBand {
        let db = level.db();
        if db < 55.0 {
            HealthBand::Moderate
        } else if db < 70.0 {
            HealthBand::Loud
        } else {
            HealthBand::Harmful
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            HealthBand::Moderate => "moderate",
            HealthBand::Loud => "loud",
            HealthBand::Harmful => "harmful",
        }
    }
}

impl fmt::Display for HealthBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One user's daily/monthly noise-exposure summary — the app's
/// quantified-self screens.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureReport {
    /// The user this report describes.
    pub user: UserId,
    /// `(day, Leq, sample count)` rows, in day order.
    pub daily: Vec<(i64, SoundLevel, usize)>,
    /// `(month, Leq, sample count)` rows, in month order.
    pub monthly: Vec<(i64, SoundLevel, usize)>,
}

impl ExposureReport {
    /// Builds the report for `user` from a dataset (other users'
    /// observations are ignored).
    pub fn build(observations: &[Observation], user: UserId) -> Self {
        let mut per_day: BTreeMap<i64, Vec<SoundLevel>> = BTreeMap::new();
        let mut per_month: BTreeMap<i64, Vec<SoundLevel>> = BTreeMap::new();
        for obs in observations.iter().filter(|o| o.user == user) {
            per_day
                .entry(obs.captured_at.day())
                .or_default()
                .push(obs.spl);
            per_month
                .entry(obs.captured_at.month())
                .or_default()
                .push(obs.spl);
        }
        let daily = per_day
            .into_iter()
            .map(|(day, levels)| (day, SoundLevel::leq(&levels), levels.len()))
            .collect();
        let monthly = per_month
            .into_iter()
            .map(|(month, levels)| (month, SoundLevel::leq(&levels), levels.len()))
            .collect();
        Self {
            user,
            daily,
            monthly,
        }
    }

    /// The exposure Leq on one day, if the user contributed then.
    pub fn day_leq(&self, day: i64) -> Option<SoundLevel> {
        self.daily
            .iter()
            .find(|(d, _, _)| *d == day)
            .map(|(_, leq, _)| *leq)
    }

    /// Days on which the user's exposure fell in each band:
    /// `(moderate, loud, harmful)`.
    pub fn band_days(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for (_, leq, _) in &self.daily {
            match HealthBand::of(*leq) {
                HealthBand::Moderate => counts.0 += 1,
                HealthBand::Loud => counts.1 += 1,
                HealthBand::Harmful => counts.2 += 1,
            }
        }
        counts
    }

    /// Whether the user contributed anything.
    pub fn is_empty(&self) -> bool {
        self.daily.is_empty()
    }
}

impl fmt::Display for ExposureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "noise exposure of {}", self.user)?;
        writeln!(f, "{:<7} {:>10} {:>8} {:>10}", "day", "Leq", "n", "band")?;
        for (day, leq, n) in &self.daily {
            writeln!(
                f,
                "{day:<7} {:>10} {n:>8} {:>10}",
                leq.to_string(),
                HealthBand::of(*leq)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_types::{DeviceModel, SimTime};

    fn obs(user: u64, day: i64, spl: f64) -> Observation {
        Observation::builder()
            .device(user.into())
            .user(user.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(SimTime::from_hms(day, 12, 0, 0))
            .spl(SoundLevel::new(spl))
            .build()
    }

    #[test]
    fn bands_classify_who_thresholds() {
        assert_eq!(HealthBand::of(SoundLevel::new(40.0)), HealthBand::Moderate);
        assert_eq!(HealthBand::of(SoundLevel::new(54.9)), HealthBand::Moderate);
        assert_eq!(HealthBand::of(SoundLevel::new(55.0)), HealthBand::Loud);
        assert_eq!(HealthBand::of(SoundLevel::new(69.9)), HealthBand::Loud);
        assert_eq!(HealthBand::of(SoundLevel::new(70.0)), HealthBand::Harmful);
        assert!(HealthBand::Moderate < HealthBand::Harmful);
    }

    #[test]
    fn report_filters_user_and_buckets_days() {
        let set = vec![
            obs(1, 0, 50.0),
            obs(1, 0, 50.0),
            obs(1, 1, 80.0),
            obs(2, 0, 90.0), // other user
        ];
        let report = ExposureReport::build(&set, 1.into());
        assert_eq!(report.daily.len(), 2);
        assert_eq!(report.daily[0].2, 2);
        assert!((report.day_leq(0).unwrap().db() - 50.0).abs() < 1e-9);
        assert!((report.day_leq(1).unwrap().db() - 80.0).abs() < 1e-9);
        assert_eq!(report.day_leq(5), None);
    }

    #[test]
    fn leq_is_energy_weighted() {
        // One loud hour dominates a quiet day.
        let set = vec![obs(1, 0, 40.0), obs(1, 0, 40.0), obs(1, 0, 85.0)];
        let report = ExposureReport::build(&set, 1.into());
        let leq = report.day_leq(0).unwrap().db();
        assert!(leq > 75.0, "Leq {leq} must be pulled up by the loud sample");
    }

    #[test]
    fn band_days_counts() {
        let set = vec![
            obs(1, 0, 45.0), // moderate
            obs(1, 1, 60.0), // loud
            obs(1, 2, 75.0), // harmful
            obs(1, 3, 48.0), // moderate
        ];
        let report = ExposureReport::build(&set, 1.into());
        assert_eq!(report.band_days(), (2, 1, 1));
    }

    #[test]
    fn monthly_rollup() {
        let set = vec![obs(1, 5, 50.0), obs(1, 25, 50.0), obs(1, 35, 62.0)];
        let report = ExposureReport::build(&set, 1.into());
        assert_eq!(report.monthly.len(), 2);
        assert_eq!(report.monthly[0].0, 0);
        assert_eq!(report.monthly[0].2, 2);
        assert_eq!(report.monthly[1].0, 1);
    }

    #[test]
    fn empty_report() {
        let report = ExposureReport::build(&[], 9.into());
        assert!(report.is_empty());
        assert_eq!(report.band_days(), (0, 0, 0));
    }

    #[test]
    fn display_has_band_column() {
        let set = vec![obs(1, 0, 75.0)];
        let s = ExposureReport::build(&set, 1.into()).to_string();
        assert!(s.contains("harmful"));
        assert!(s.contains("user-1"));
    }
}
