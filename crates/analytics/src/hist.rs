//! Generic histogram kit.

use std::fmt;

/// A histogram over explicit bin edges.
///
/// `edges = [e0, e1, ..., en]` defines bins `[e0, e1), [e1, e2), ...,
/// [e_{n-1}, en)`; values outside `[e0, en)` fall into underflow/overflow
/// counters so no sample is silently dropped.
///
/// # Examples
///
/// ```
/// use mps_analytics::Histogram;
///
/// let mut h = Histogram::new(vec![0.0, 10.0, 20.0]);
/// for x in [5.0, 15.0, 15.5, 25.0] {
///     h.push(x);
/// }
/// assert_eq!(h.counts(), &[1, 2]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.fractions(), vec![0.25, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given (strictly increasing) edges.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or they are not strictly
    /// increasing.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let bins = edges.len() - 1;
        Self {
            edges,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Uniform bins: `n` bins of equal width over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && lo < hi, "bad uniform histogram spec");
        let edges = (0..=n)
            .map(|i| lo + (hi - lo) * i as f64 / n as f64)
            .collect();
        Self::new(edges)
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.total += 1;
        let lo = *self.edges.first().expect("validated");
        let hi = *self.edges.last().expect("validated");
        if value < lo {
            self.underflow += 1;
            return;
        }
        if value >= hi {
            self.overflow += 1;
            return;
        }
        // Binary search for the bin.
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&value).expect("finite edges"))
        {
            Ok(i) => i,      // exactly on edge i -> bin i
            Err(i) => i - 1, // between edges i-1 and i
        };
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// The bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin fractions of the total (zero for an empty histogram).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|c| *c as f64 / self.total as f64)
            .collect()
    }

    /// Per-bin per-mille (‰) of the total — the unit of the paper's SPL
    /// distributions (Figures 14–15).
    pub fn per_mille(&self) -> Vec<f64> {
        self.fractions().into_iter().map(|f| f * 1000.0).collect()
    }

    /// Index of the fullest bin, or `None` when empty.
    pub fn peak_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
    }

    /// Centre of the fullest bin, or `None` when empty.
    pub fn peak_center(&self) -> Option<f64> {
        self.peak_bin()
            .map(|i| (self.edges[i] + self.edges[i + 1]) / 2.0)
    }

    /// Merges another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram edges differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, count) in self.counts.iter().enumerate() {
            let frac = if self.total > 0 {
                *count as f64 / self.total as f64 * 100.0
            } else {
                0.0
            };
            writeln!(
                f,
                "[{:>8.1}, {:>8.1})  {:>10}  {:>6.2}%",
                self.edges[i],
                self.edges[i + 1],
                count,
                frac
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_values_correctly() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0, 4.0]);
        for v in [0.0, 0.5, 1.0, 1.9, 3.9] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn edge_values_go_to_right_bin() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0]);
        h.push(1.0); // on the inner edge -> second bin
        assert_eq!(h.counts(), &[0, 1]);
        h.push(0.0); // on the first edge -> first bin
        assert_eq!(h.counts(), &[1, 1]);
        h.push(2.0); // on the last edge -> overflow
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn under_overflow_counted() {
        let mut h = Histogram::new(vec![0.0, 10.0]);
        h.push(-1.0);
        h.push(100.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
        // Fractions use the full total.
        assert_eq!(h.fractions(), vec![1.0 / 3.0]);
    }

    #[test]
    fn uniform_constructor() {
        let h = Histogram::uniform(0.0, 100.0, 10);
        assert_eq!(h.edges().len(), 11);
        assert_eq!(h.edges()[3], 30.0);
    }

    #[test]
    fn per_mille_scales() {
        let mut h = Histogram::uniform(0.0, 10.0, 2);
        for _ in 0..3 {
            h.push(1.0);
        }
        h.push(7.0);
        assert_eq!(h.per_mille(), vec![750.0, 250.0]);
    }

    #[test]
    fn peak_detection() {
        let mut h = Histogram::uniform(0.0, 30.0, 3);
        h.push(15.0);
        h.push(16.0);
        h.push(5.0);
        assert_eq!(h.peak_bin(), Some(1));
        assert_eq!(h.peak_center(), Some(15.0));
        let empty = Histogram::uniform(0.0, 1.0, 1);
        assert_eq!(empty.peak_bin(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::uniform(0.0, 10.0, 2);
        let mut b = Histogram::uniform(0.0, 10.0, 2);
        a.push(1.0);
        b.push(6.0);
        b.push(100.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "edges differ")]
    fn merge_checks_edges() {
        let mut a = Histogram::uniform(0.0, 10.0, 2);
        let b = Histogram::uniform(0.0, 20.0, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_edges() {
        let _ = Histogram::new(vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn display_lists_bins() {
        let mut h = Histogram::uniform(0.0, 2.0, 2);
        h.push(0.5);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("100.00%"), "{s}");
        assert!(s.contains("0.00%"));
    }
}
