//! Pins `mps-telemetry`'s dependency-free header-key copies to the
//! canonical constants in `mps_types::headers`.
//!
//! Telemetry deliberately has no dependencies, so it cannot import the
//! shared constants; the L005 waivers on its copies cite this test as
//! the thing keeping both sides of the wire in agreement.

#[test]
fn telemetry_header_copies_match_canonical_constants() {
    assert_eq!(
        mps_telemetry::trace::TRACE_HEADER,
        mps_types::headers::TRACE_HEADER
    );
    assert_eq!(
        mps_telemetry::trace::SENT_MS_HEADER,
        mps_types::headers::SENT_MS_HEADER
    );
}
